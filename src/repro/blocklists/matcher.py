"""adblockparser-equivalent matching over a rule set.

The paper (§5.1) asks one static question — "does any EasyList/EasyPrivacy
rule apply to this script URL with resource type *script*?" — and §5.2 asks
the *practical* question ad blockers answer, which additionally honors
exception rules, first-party context and the ``$document`` modifier.  Both
go through :class:`RuleMatcher`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.blocklists.rules import FilterRule, parse_list

__all__ = ["RuleMatcher"]


class RuleMatcher:
    """Matches URLs against a parsed filter list."""

    def __init__(self, rules: Iterable[FilterRule], name: str = "") -> None:
        all_rules = [r for r in rules if not r.is_element_hiding]
        self.name = name
        self.block_rules: List[FilterRule] = [r for r in all_rules if not r.is_exception]
        self.exception_rules: List[FilterRule] = [r for r in all_rules if r.is_exception]

    @classmethod
    def from_text(cls, text: str, name: str = "") -> "RuleMatcher":
        return cls(parse_list(text), name=name)

    def __len__(self) -> int:
        return len(self.block_rules) + len(self.exception_rules)

    def first_match(
        self,
        url: str,
        resource_type: str = "script",
        third_party: Optional[bool] = None,
        page_domain: Optional[str] = None,
    ) -> Optional[FilterRule]:
        """First blocking rule that applies, honoring exception rules."""
        for rule in self.exception_rules:
            if rule.matches(url, resource_type, third_party, page_domain):
                return None
        for rule in self.block_rules:
            if rule.matches(url, resource_type, third_party, page_domain):
                return rule
        return None

    def should_block(
        self,
        url: str,
        resource_type: str = "script",
        third_party: Optional[bool] = None,
        page_domain: Optional[str] = None,
    ) -> bool:
        """adblockparser's ``should_block``: contextual match over the list."""
        return self.first_match(url, resource_type, third_party, page_domain) is not None

    def listed(self, url: str, resource_type: str = "script") -> bool:
        """The paper's §5.1 static check: any rule applies to this URL with
        the given resource type, ignoring dynamic context (third-party,
        domain restrictions on the page) and exception rules."""
        for rule in self.block_rules:
            if not rule.matches_url(url):
                continue
            if resource_type in rule.inverse_types:
                continue
            if rule.types and resource_type not in rule.types:
                continue
            return True
        return False
