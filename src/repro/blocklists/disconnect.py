"""Disconnect-style tracker protection list.

Domain-based, unlike EasyList's URL patterns: the paper checks "is the
domain of the script's URL included in the list" (§5.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.net.url import URL, registrable_domain

__all__ = ["DisconnectList"]


class DisconnectList:
    """A categorized domain list (categories mirror Disconnect's schema)."""

    CATEGORIES = ("Advertising", "Analytics", "FingerprintingInvasive", "Social", "Content")

    def __init__(self, name: str = "disconnect") -> None:
        self.name = name
        self._domains: Dict[str, str] = {}

    def add(self, domain: str, category: str = "FingerprintingInvasive") -> None:
        if category not in self.CATEGORIES:
            raise ValueError(f"unknown Disconnect category {category!r}")
        self._domains[domain.lower()] = category

    def add_all(self, domains: Iterable[str], category: str = "FingerprintingInvasive") -> None:
        for d in domains:
            self.add(d, category)

    def contains_domain(self, domain: str) -> bool:
        domain = domain.lower()
        if domain in self._domains:
            return True
        return registrable_domain(domain) in self._domains

    def contains_url(self, url: "URL | str") -> bool:
        host = url.host if isinstance(url, URL) else URL.parse(url).host
        return self.contains_domain(host)

    def category_of(self, domain: str) -> Optional[str]:
        domain = domain.lower()
        if domain in self._domains:
            return self._domains[domain]
        return self._domains.get(registrable_domain(domain))

    def domains(self) -> Set[str]:
        return set(self._domains)

    def __len__(self) -> int:
        return len(self._domains)

    # -- Disconnect's JSON interchange format ------------------------------------

    def to_json(self) -> dict:
        """Serialize in Disconnect's ``services.json``-style layout:
        category -> entity -> {homepage: [domains]}."""
        categories: Dict[str, Dict[str, Dict[str, list]]] = {}
        for domain, category in sorted(self._domains.items()):
            entity = domain.split(".")[0].title()
            categories.setdefault(category, {}).setdefault(entity, {}).setdefault(
                f"https://{domain}/", []
            ).append(domain)
        return {"license": "synthetic", "categories": categories}

    @classmethod
    def from_json(cls, data: dict, name: str = "disconnect") -> "DisconnectList":
        """Load a Disconnect-style JSON document."""
        out = cls(name)
        for category, entities in data.get("categories", {}).items():
            if category not in cls.CATEGORIES:
                continue
            for _entity, homepages in entities.items():
                for _homepage, domains in homepages.items():
                    for domain in domains:
                        out.add(domain, category)
        return out
