"""Blocklist substrate: ABP filter rules, a matcher, and synthetic lists.

Reimplements the matching semantics the paper relies on: the
``adblockparser`` library for EasyList/EasyPrivacy rules (§5.1) and simple
domain containment for the Disconnect list.
"""

from repro.blocklists.rules import FilterRule, ParseError, parse_rule, parse_list
from repro.blocklists.matcher import RuleMatcher
from repro.blocklists.disconnect import DisconnectList

__all__ = [
    "FilterRule",
    "ParseError",
    "parse_rule",
    "parse_list",
    "RuleMatcher",
    "DisconnectList",
]
