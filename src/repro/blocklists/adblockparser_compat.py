"""Drop-in compatibility shim for the ``adblockparser`` API.

The paper drives its §5.1 analysis through Mikhail Korobov's
``adblockparser`` package (``AdblockRules(raw_rules).should_block(url,
options)``).  This module exposes the same call shape over our rule engine,
so analysis code written against adblockparser runs unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.blocklists.matcher import RuleMatcher
from repro.blocklists.rules import FilterRule, parse_rule

__all__ = ["AdblockRule", "AdblockRules"]


class AdblockRule:
    """adblockparser's per-rule object: raw text + matching."""

    def __init__(self, rule_text: str) -> None:
        self.raw_rule_text = rule_text
        parsed = parse_rule(rule_text)
        if parsed is None:
            raise ValueError(f"not a filter rule: {rule_text!r}")
        self._rule: FilterRule = parsed

    @property
    def is_comment(self) -> bool:
        return False  # comments raise in the constructor, as in adblockparser

    @property
    def is_exception(self) -> bool:
        return self._rule.is_exception

    @property
    def options(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for t in self._rule.types:
            out[t] = True
        for t in self._rule.inverse_types:
            out[t] = False
        if self._rule.third_party is not None:
            out["third-party"] = self._rule.third_party
        if self._rule.domains_include or self._rule.domains_exclude:
            domains = {d: True for d in self._rule.domains_include}
            domains.update({d: False for d in self._rule.domains_exclude})
            out["domain"] = domains
        return out

    def match_url(self, url: str, options: Optional[Dict[str, object]] = None) -> bool:
        options = options or {}
        resource_type = _resource_type_of(options)
        return self._rule.matches(
            url,
            resource_type=resource_type or "other",
            third_party=options.get("third-party"),
            page_domain=options.get("domain"),
        )


def _resource_type_of(options: Dict[str, object]) -> Optional[str]:
    from repro.blocklists.rules import RESOURCE_TYPE_OPTIONS

    for key, value in options.items():
        if value is True and key in RESOURCE_TYPE_OPTIONS:
            return key
    return None


class AdblockRules:
    """adblockparser's rule-set object."""

    def __init__(self, rules: Iterable[str], skip_unsupported_rules: bool = True) -> None:
        parsed: List[FilterRule] = []
        self.rules: List[AdblockRule] = []
        for text in rules:
            try:
                rule = parse_rule(text)
            except ValueError:
                if skip_unsupported_rules:
                    continue
                raise
            if rule is None:
                continue
            parsed.append(rule)
            shim = AdblockRule.__new__(AdblockRule)
            shim.raw_rule_text = text
            shim._rule = rule
            self.rules.append(shim)
        self._matcher = RuleMatcher(parsed, name="adblockparser-compat")

    def should_block(self, url: str, options: Optional[Dict[str, object]] = None) -> bool:
        """adblockparser's entry point.

        ``options`` is the familiar dict, e.g. ``{"script": True,
        "third-party": True, "domain": "example.com"}``.
        """
        options = options or {}
        resource_type = _resource_type_of(options) or "other"
        return self._matcher.should_block(
            url,
            resource_type=resource_type,
            third_party=options.get("third-party"),
            page_domain=options.get("domain"),
        )
