"""Adblock Plus filter rule parsing.

Supports the network-filter syntax subset that matters for fingerprinting
scripts: ``||`` host anchors, ``|`` start/end anchors, ``*`` wildcards,
``^`` separators, exception rules (``@@``), and the ``$`` option list
(resource types, ``third-party``, ``domain=``, and the ``document`` modifier
whose misuse Appendix A.6 documents).  Element-hiding rules (``##``) are
recognized and marked non-network.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, List, Optional

__all__ = ["FilterRule", "ParseError", "parse_rule", "parse_list", "RESOURCE_TYPE_OPTIONS"]


class ParseError(ValueError):
    """Raised for malformed filter rules."""


RESOURCE_TYPE_OPTIONS = frozenset(
    {
        "script",
        "image",
        "stylesheet",
        "document",
        "subdocument",
        "xmlhttprequest",
        "object",
        "font",
        "media",
        "websocket",
        "other",
    }
)


@dataclass(frozen=True)
class FilterRule:
    """One parsed network filter rule."""

    raw: str
    is_exception: bool
    is_element_hiding: bool
    regex: "re.Pattern[str]"
    #: Resource types the rule is restricted to (empty = any type).
    types: FrozenSet[str] = frozenset()
    #: Resource types explicitly excluded (``~script``).
    inverse_types: FrozenSet[str] = frozenset()
    #: None = unrestricted, True = third-party only, False = first-party only.
    third_party: Optional[bool] = None
    domains_include: FrozenSet[str] = frozenset()
    domains_exclude: FrozenSet[str] = frozenset()

    def matches_url(self, url: str) -> bool:
        return self.regex.search(url) is not None

    def matches(
        self,
        url: str,
        resource_type: str = "other",
        third_party: Optional[bool] = None,
        page_domain: Optional[str] = None,
    ) -> bool:
        """Full contextual match: pattern plus every option constraint."""
        if self.is_element_hiding:
            return False
        if not self.matches_url(url):
            return False
        if resource_type in self.inverse_types:
            return False
        if self.types and resource_type not in self.types:
            return False
        if self.third_party is not None:
            if third_party is None or third_party != self.third_party:
                return False
        if self.domains_include and (page_domain is None or not _domain_in(page_domain, self.domains_include)):
            return False
        if self.domains_exclude and page_domain is not None and _domain_in(page_domain, self.domains_exclude):
            return False
        return True


def _domain_in(domain: str, candidates: FrozenSet[str]) -> bool:
    domain = domain.lower()
    for cand in candidates:
        if domain == cand or domain.endswith("." + cand):
            return True
    return False


def parse_rule(line: str) -> Optional[FilterRule]:
    """Parse one filter line; returns None for comments/blank lines."""
    text = line.strip()
    if not text or text.startswith("!") or text.startswith("["):
        return None

    if "##" in text or "#@#" in text or "#?#" in text:
        # Element hiding: kept so list statistics count them, never matches URLs.
        return FilterRule(
            raw=line,
            is_exception=False,
            is_element_hiding=True,
            regex=re.compile(r"(?!)"),
        )

    is_exception = text.startswith("@@")
    if is_exception:
        text = text[2:]

    options_text = ""
    dollar = _find_options_separator(text)
    if dollar is not None:
        text, options_text = text[:dollar], text[dollar + 1 :]

    if not text:
        raise ParseError(f"empty pattern in rule {line!r}")

    regex = _pattern_to_regex(text)
    types: set = set()
    inverse_types: set = set()
    third_party: Optional[bool] = None
    dom_inc: set = set()
    dom_exc: set = set()

    if options_text:
        for opt in options_text.split(","):
            opt = opt.strip()
            if not opt:
                continue
            lower = opt.lower()
            if lower == "third-party":
                third_party = True
            elif lower == "~third-party":
                third_party = False
            elif lower.startswith("domain="):
                for dom in lower[len("domain=") :].split("|"):
                    dom = dom.strip()
                    if dom.startswith("~"):
                        dom_exc.add(dom[1:])
                    elif dom:
                        dom_inc.add(dom)
            elif lower.startswith("~") and lower[1:] in RESOURCE_TYPE_OPTIONS:
                inverse_types.add(lower[1:])
            elif lower in RESOURCE_TYPE_OPTIONS:
                types.add(lower)
            elif lower in ("match-case", "popup", "generichide", "genericblock", "elemhide"):
                pass  # recognized, irrelevant to network matching here
            else:
                # Unknown option: conservative parsers drop the rule entirely;
                # adblockparser raises. We follow adblockparser.
                raise ParseError(f"unknown option {opt!r} in rule {line!r}")

    return FilterRule(
        raw=line,
        is_exception=is_exception,
        is_element_hiding=False,
        regex=regex,
        types=frozenset(types),
        inverse_types=frozenset(inverse_types),
        third_party=third_party,
        domains_include=frozenset(dom_inc),
        domains_exclude=frozenset(dom_exc),
    )


def _find_options_separator(text: str) -> Optional[int]:
    """Position of the option ``$``, ignoring ``$`` inside the pattern body.

    ABP defines the last ``$`` followed only by valid-looking option text as
    the separator; a simple right-most search is what adblockparser does.
    """
    idx = text.rfind("$")
    if idx <= 0 or idx == len(text) - 1:
        return None if idx != 0 else None
    tail = text[idx + 1 :]
    if re.fullmatch(r"[a-zA-Z~][a-zA-Z0-9\-_=.|~,]*", tail):
        return idx
    return None


def _pattern_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile an ABP URL pattern into a regex (adblockparser translation)."""
    # Regex-literal rules: /.../
    if len(pattern) > 2 and pattern.startswith("/") and pattern.endswith("/"):
        try:
            return re.compile(pattern[1:-1])
        except re.error as exc:
            raise ParseError(f"bad regex rule {pattern!r}: {exc}") from exc

    out: List[str] = []
    i = 0
    n = len(pattern)
    while i < n:
        ch = pattern[i]
        if ch == "*":
            out.append(".*")
        elif ch == "^":
            out.append(r"(?:[^\w\-.%]|$)")
        elif ch == "|":
            if i == 0 and pattern.startswith("||"):
                out.append(r"^[a-z][a-z0-9+.\-]*://(?:[^/?#]*\.)?")
                i += 1  # consume second bar
            elif i == 0:
                out.append("^")
            elif i == n - 1:
                out.append("$")
            else:
                out.append(re.escape("|"))
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("".join(out))


def parse_list(text: str) -> List[FilterRule]:
    """Parse a filter list document, skipping comments and bad rules."""
    rules: List[FilterRule] = []
    for line in text.splitlines():
        try:
            rule = parse_rule(line)
        except ParseError:
            continue
        if rule is not None:
            rules.append(rule)
    return rules
