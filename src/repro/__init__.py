"""Reproduction of "Canvassing the Fingerprinters: Characterizing Canvas
Fingerprinting Use Across the Web" (IMC 2025).

Quick start::

    from repro.config import StudyScale
    from repro.webgen import build_world
    from repro.analysis import study_report

    world = build_world(StudyScale(fraction=0.05))
    result = world.run_full_study()
    print(study_report(result))

Package map: ``repro.core`` is the paper's contribution (detection,
clustering, attribution, context/evasion analyses); everything else is the
substrate it runs on — ``canvas`` (software Canvas 2D), ``js`` (ECMAScript
subset engine), ``dom``, ``net``, ``browser``, ``crawler``, ``blocklists``,
and ``webgen`` (the calibrated synthetic web).  See DESIGN.md for the
inventory and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
