"""Tranco-like site ranking.

Generates a deterministic pseudo-Tranco list: domain names with a realistic
TLD mix (including the ``.ru`` share that gives mail.ru its §4.3.1 reach),
a :meth:`top` slice and the paper's :meth:`tail_sample` of ranks
20k+1 .. 1M.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.crawler.crawl import CrawlTarget

__all__ = ["TrancoRanking"]

_NAME_A = (
    "news", "shop", "tech", "cloud", "media", "game", "travel", "health",
    "auto", "food", "music", "sport", "home", "star", "blue", "fast",
    "smart", "global", "daily", "prime", "mega", "ultra", "open", "net",
    "web", "data", "live", "world", "city", "market",
)
_NAME_B = (
    "hub", "zone", "base", "port", "spot", "land", "works", "press",
    "point", "link", "line", "gate", "deck", "nest", "forge", "mart",
    "plex", "wave", "peak", "crest", "field", "grid", "path", "pulse",
)

#: (tld, weight) — .ru weight chosen so roughly 4.5% of sites are .ru,
#: giving mail.ru its one-third-of-.ru-domains reach at Table 1 counts.
_TLDS: Tuple[Tuple[str, float], ...] = (
    ("com", 0.52),
    ("net", 0.08),
    ("org", 0.07),
    ("ru", 0.045),
    ("de", 0.04),
    ("co.uk", 0.035),
    ("io", 0.03),
    ("fr", 0.025),
    ("jp", 0.025),
    ("br", 0.02),
    ("in", 0.02),
    ("it", 0.02),
    ("nl", 0.02),
    ("pl", 0.015),
    ("es", 0.015),
    ("info", 0.015),
    ("biz", 0.01),
    ("us", 0.01),
)


class TrancoRanking:
    """Deterministic ranked site list."""

    TAIL_MIN = 20_001
    TAIL_MAX = 1_000_000

    def __init__(self, seed: int = 20250501) -> None:
        self.seed = seed
        self._tld_cum = []
        total = sum(w for _, w in _TLDS)
        acc = 0.0
        for tld, w in _TLDS:
            acc += w / total
            self._tld_cum.append((acc, tld))

    def domain_at(self, rank: int) -> str:
        """The domain holding a given rank (1-based), deterministic."""
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        rng = random.Random(f"{self.seed}:rank:{rank}")
        u = rng.random()
        tld = next(t for cum, t in self._tld_cum if u <= cum)
        a = _NAME_A[rng.randrange(len(_NAME_A))]
        b = _NAME_B[rng.randrange(len(_NAME_B))]
        return f"{a}{b}{rank}.{tld}"

    def top(self, n: int) -> List[CrawlTarget]:
        """The top-``n`` sites (the paper's popular population)."""
        return [CrawlTarget(self.domain_at(r), r, "top") for r in range(1, n + 1)]

    def tail_sample(self, n: int, top_n: int = 20_000) -> List[CrawlTarget]:
        """A random ``n``-site sample of ranks ``top_n+1 .. 1M`` (§3)."""
        rng = random.Random(f"{self.seed}:tail-sample")
        lo = max(top_n + 1, self.TAIL_MIN)
        ranks = sorted(rng.sample(range(lo, self.TAIL_MAX + 1), n))
        return [CrawlTarget(self.domain_at(r), r, "tail") for r in ranks]
