"""World assembly: ranking + plans + servers + DNS + blocklists + demos.

``build_world`` is the single entry point: it samples every site's
composition, registers every origin server / CDN / vendor host / CNAME on
the synthetic network, installs vendor demo pages, and generates the three
blocklists — a complete, crawlable Internet calibrated to the paper.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.blocklists.disconnect import DisconnectList
from repro.config import BENCH_SCALE, PAPER, PaperTargets, StudyScale
from repro.crawler.crawl import CrawlTarget
from repro.net.server import Network
from repro.webgen import scripts as S
from repro.webgen.blocklist_gen import (
    generate_disconnect,
    generate_easylist,
    generate_easyprivacy,
    generate_ubo_extra,
)
from repro.webgen.boutique import BoutiqueCatalog, BoutiqueScript
from repro.webgen.calibration import CalibrationParams, derive_params
from repro.webgen.sites import Deployment, SitePlan, build_homepage_html, plan_site
from repro.webgen.tranco import TrancoRanking
from repro.webgen.vendors import FPJS_ADTECH_HOSTS, VENDOR_SPECS, VENDORS_BY_NAME, ServingMode

__all__ = ["World", "build_world"]


@dataclass
class World:
    """A fully materialized synthetic web."""

    scale: StudyScale
    params: CalibrationParams
    ranking: TrancoRanking
    catalog: BoutiqueCatalog
    network: Network
    top_targets: List[CrawlTarget] = field(default_factory=list)
    tail_targets: List[CrawlTarget] = field(default_factory=list)
    plans: Dict[str, SitePlan] = field(default_factory=dict)
    easylist_text: str = ""
    easyprivacy_text: str = ""
    ubo_extra_text: str = ""
    disconnect: Optional[DisconnectList] = None
    #: vendor name -> demo page URL (Table 3's "Demo" column).
    demo_pages: Dict[str, str] = field(default_factory=dict)
    #: vendor name -> a few advertised customer domains (Table 3's column 2).
    known_customers: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def all_targets(self) -> List[CrawlTarget]:
        return self.top_targets + self.tail_targets

    def vendor_knowledge(self):
        """The public vendor knowledge (A.3 inputs) for this world."""
        from repro.core.pipeline import VendorKnowledge

        out = []
        for spec in VENDOR_SPECS:
            out.append(
                VendorKnowledge(
                    name=spec.name,
                    security=spec.security,
                    demo_url=self.demo_pages.get(spec.name),
                    known_customers=tuple(self.known_customers.get(spec.name, ())),
                    script_pattern=spec.script_pattern,
                    uses_url_regex=spec.per_site,
                )
            )
        return out

    def run_full_study(
        self,
        include_adblock_crawls: bool = True,
        include_cross_machine: bool = False,
        jobs: int = 1,
        cache_dir=None,
        stages=None,
        obs_dir=None,
        supervisor=None,
    ):
        """Convenience: run the paper's whole pipeline over this world."""
        from repro.core.pipeline import run_study

        return run_study(
            self.network,
            self.all_targets,
            self.vendor_knowledge(),
            easylist_text=self.easylist_text,
            easyprivacy_text=self.easyprivacy_text,
            disconnect=self.disconnect,
            ubo_extra_text=self.ubo_extra_text,
            dns=self.network.dns,
            include_adblock_crawls=include_adblock_crawls,
            include_cross_machine=include_cross_machine,
            jobs=jobs,
            cache_dir=cache_dir,
            stages=stages,
            obs_dir=obs_dir,
            supervisor=supervisor,
        )

    def ground_truth_fp_sites(self, population: str) -> List[str]:
        """Domains that truly deploy a fingerprinter (for validation only —
        the measurement pipeline never reads this)."""
        return [
            p.domain
            for p in self.plans.values()
            if p.population == population and p.failure is None and p.fingerprints
        ]


def _imperva_token(domain: str) -> str:
    """Imperva-style per-customer script path: bare letters-and-dashes."""
    rng = random.Random(f"imperva:{domain}")
    parts = []
    for _ in range(3):
        parts.append("".join(rng.choice(string.ascii_letters) for _ in range(6)))
    return "-".join(parts)


def build_world(
    scale: StudyScale = BENCH_SCALE,
    paper: PaperTargets = PAPER,
    params: Optional[CalibrationParams] = None,
) -> World:
    """Build the whole synthetic web at the requested scale."""
    params = params or derive_params(paper)
    ranking = TrancoRanking(seed=scale.seed)
    catalog = BoutiqueCatalog(seed=scale.seed ^ 0xB0071)
    network = Network()

    world = World(
        scale=scale,
        params=params,
        ranking=ranking,
        catalog=catalog,
        network=network,
        top_targets=ranking.top(scale.top_sites),
        tail_targets=ranking.tail_sample(scale.tail_sites),
    )

    _register_vendor_hosts(world)
    _register_demo_pages(world)

    for target in world.all_targets:
        plan = plan_site(target, params, catalog, seed=scale.seed)
        world.plans[plan.domain] = plan
        _materialize_site(world, plan)

    _collect_known_customers(world)

    world.easylist_text = generate_easylist(catalog)
    world.easyprivacy_text = generate_easyprivacy(catalog)
    world.ubo_extra_text = generate_ubo_extra(catalog)
    world.disconnect = generate_disconnect(catalog)
    return world


# --- vendor-side infrastructure --------------------------------------------------------


def _vendor_source(name: str, flavor: Optional[str] = None, site_domain: str = "") -> str:
    spec = VENDORS_BY_NAME[name]
    if spec.per_site:
        return spec.source(site_domain)
    if name == "FingerprintJS":
        if flavor == "commercial":
            return spec.source(commercial=True)
        source = spec.source()
        if flavor and flavor not in ("oss", None):
            # Ad-tech self-hosted copy: same draw code (identical canvases),
            # distinct wrapper comment (distinct script bytes).
            return f"/* {flavor} audience integration (bundles fingerprintjs OSS) */\n" + source
        return source
    return spec.source()


def _register_vendor_hosts(world: World) -> None:
    """Vendor origin servers + ad-tech FPJS hosts + CDN copies."""
    net = world.network
    for spec in VENDOR_SPECS:
        if spec.per_site:
            continue
        server = net.server_for(spec.host)
        server.add_script(spec.script_path, _vendor_source(spec.name))
    # Commercial FPJS is a different build on the same CDN host.
    net.server_for("fpnpmcdn.net").add_script(
        "/v4/pro.min.js", _vendor_source("FingerprintJS", "commercial")
    )
    for host, name, _top, _tail in FPJS_ADTECH_HOSTS:
        net.server_for(host).add_script("/fp.min.js", _vendor_source("FingerprintJS", name))
    # Popular-CDN copies (§5.2: fingerprinters use shared CDNs).
    cdn = net.server_for("cdn.jsdelivr.net")
    cdn.add_script("/npm/@fingerprintjs/fingerprintjs@4/dist/fp.min.js", _vendor_source("FingerprintJS"))
    cdn.add_script("/npm/fingerprintjs2@2.1.0/dist/fingerprint2-2.1.0.js", _vendor_source("FingerprintJS (legacy)"))
    cloudflare = net.server_for("cdnjs.cloudflare.com")
    cloudflare.add_script(
        "/ajax/libs/fingerprintjs-pro/3.11.0/fp.min.js", _vendor_source("FingerprintJS", "commercial")
    )
    # Boutique vendor hosts.
    for script in world.catalog:
        net.server_for(script.host).add_script(script.path, script.source)
        cdn.add_script(f"/npm/fp-kit-{script.index:03d}@1/dist{script.path}", script.source)


def _register_demo_pages(world: World) -> None:
    """Public demo pages for Table 3's "Demo" vendors."""
    for spec in VENDOR_SPECS:
        if not spec.has_demo:
            continue
        demo_host = f"demo.{spec.host.split('.', 1)[-1]}"
        server = world.network.server_for(demo_host)
        if spec.name == "FingerprintJS":
            src = f"https://{spec.host}/v4/pro.min.js"
        else:
            src = f"https://{spec.host}{spec.script_path}"
        server.add_resource(
            "/",
            "<html><head><title>{} demo</title></head><body>"
            '<h1>Try our device intelligence</h1><script src="{}"></script>'
            "</body></html>".format(spec.name, src),
        )
        world.demo_pages[spec.name] = f"https://{demo_host}/"


# --- site-side materialization -----------------------------------------------------------


def _materialize_site(world: World, plan: SitePlan) -> None:
    net = world.network
    if plan.failure == "network-error":
        return  # no DNS entry at all

    server = net.server_for(plan.domain)
    if plan.failure == "bot-blocked":
        server.add_resource("/", "<html><body>Access denied (bot check)</body></html>", status=403)
        return
    if plan.failure == "http-error":
        server.add_resource("/", "<html><body>500</body></html>", status=500)
        return

    bundle_parts = [S.analytics_filler_script(plan.rank)]

    for deployment in plan.deployments:
        source = _deployment_source(world, plan, deployment)
        if deployment.serving == ServingMode.FIRST_PARTY_BUNDLE:
            bundle_parts.append(source)
            continue
        deployment.script_src = _install_script(world, plan, deployment, source)

    server.add_script("/assets/app.js", "\n".join(bundle_parts))

    for kind in plan.benign:
        server.add_script(f"/assets/{kind}-check.js", _benign_source(kind, plan.rank))

    server.add_resource("/", build_homepage_html(plan, bundle_has_vendor_code=len(bundle_parts) > 1))

    if plan.login_deployments:
        tags = []
        for deployment in plan.login_deployments:
            source = _deployment_source(world, plan, deployment)
            if deployment.serving == ServingMode.FIRST_PARTY_BUNDLE:
                # Login bundles get their own first-party asset.
                server.add_script("/assets/login.js", source)
                deployment.script_src = "/assets/login.js"
            else:
                deployment.script_src = _install_script(world, plan, deployment, source)
            tags.append(f'<script src="{deployment.script_src}"></script>')
        server.add_resource(
            "/login",
            "<html><head><title>Sign in — {}</title></head><body>"
            '<form id="login"><input name="user"><input name="pass"></form>'
            "{}</body></html>".format(plan.domain, "".join(tags)),
        )


def _deployment_source(world: World, plan: SitePlan, deployment: Deployment) -> str:
    if deployment.kind == "boutique":
        return world.catalog.get(deployment.boutique_index).source
    return _vendor_source(deployment.vendor, deployment.flavor, plan.domain)


def _cloak_alias(net: Network, domain: str, canonical_host: str) -> str:
    """A deterministic per-target CNAME-cloak subdomain on ``domain``."""
    import zlib

    suffix = zlib.crc32(canonical_host.encode()) % 97
    alias = f"metrics-{suffix}.{domain}"
    if not net.has_host(alias):
        net.alias(alias, canonical_host)
    return alias


def _install_script(world: World, plan: SitePlan, deployment: Deployment, source) -> str:
    """Register the script per serving mode; returns the tag's src URL."""
    net = world.network
    domain = plan.domain
    mode = deployment.serving

    if deployment.kind == "boutique":
        script: BoutiqueScript = world.catalog.get(deployment.boutique_index)
        if mode == ServingMode.THIRD_PARTY:
            return f"https://{script.host}{script.path}"
        if mode == ServingMode.CDN:
            return f"https://cdn.jsdelivr.net/npm/fp-kit-{script.index:03d}@1/dist{script.path}"
        if mode == ServingMode.CNAME_CLOAK:
            alias = _cloak_alias(net, domain, script.host)
            return f"https://{alias}{script.path}"
        if mode == ServingMode.SUBDOMAIN:
            sub = net.server_for(f"fp.{domain}")
            sub.add_script(script.path, script.source)
            return f"https://fp.{domain}{script.path}"
        # FIRST_PARTY_PATH
        net.server_for(domain).add_script(script.path, script.source)
        return script.path

    spec = VENDORS_BY_NAME[deployment.vendor]

    if spec.per_site:  # Imperva: first-party bare path, unique per customer
        token = _imperva_token(domain)
        net.server_for(domain).add_script(f"/{token}", source)
        return f"/{token}"

    path = spec.script_path
    if deployment.vendor == "FingerprintJS":
        if deployment.flavor == "commercial":
            path = "/v4/pro.min.js"
        elif deployment.flavor not in ("oss", None):
            host = next(h for h, n, _t, _l in FPJS_ADTECH_HOSTS if n == deployment.flavor)
            return f"https://{host}/fp.min.js"
        else:
            path = "/fp.min.js"

    if mode == ServingMode.THIRD_PARTY:
        if deployment.vendor == "FingerprintJS" and deployment.flavor == "oss":
            # Self-hosters serving off-site use generic static hosting, not
            # the commercial fpnpmcdn.net CDN.
            host = "static.openfp-host.net"
            net.server_for(host).add_script(path, source)
            return f"https://{host}{path}"
        return f"https://{spec.host}{path}"
    if mode == ServingMode.CDN:
        if deployment.vendor == "FingerprintJS" and deployment.flavor == "commercial":
            return "https://cdnjs.cloudflare.com/ajax/libs/fingerprintjs-pro/3.11.0/fp.min.js"
        if deployment.vendor == "FingerprintJS":
            return "https://cdn.jsdelivr.net/npm/@fingerprintjs/fingerprintjs@4/dist/fp.min.js"
        if deployment.vendor == "FingerprintJS (legacy)":
            return "https://cdn.jsdelivr.net/npm/fingerprintjs2@2.1.0/dist/fingerprint2-2.1.0.js"
        cdn_path = f"/npm/{spec.host.split('.')[0]}@1{spec.script_path}"
        net.server_for("cdn.jsdelivr.net").add_script(cdn_path, source)
        return f"https://cdn.jsdelivr.net{cdn_path}"
    if mode == ServingMode.CNAME_CLOAK:
        alias = _cloak_alias(net, domain, spec.host)
        net.server_for(spec.host).add_script(path, source)
        return f"https://{alias}{path}"
    if mode == ServingMode.SUBDOMAIN:
        sub = net.server_for(f"fp.{domain}")
        sub.add_script(path, source)
        return f"https://fp.{domain}{path}"
    # FIRST_PARTY_PATH (e.g. Akamai's /akam/... on the customer domain).
    net.server_for(domain).add_script(path, source)
    return path


def _benign_source(kind: str, seed: int) -> str:
    if kind == "webp":
        return S.webp_check_script()
    if kind == "emoji":
        return S.emoji_check_script()
    if kind == "small":
        # Figure 2's examples: a 12x12 and a 5x5 uniform canvas.
        return S.small_canvas_script(12, "#e6e6e6") + S.small_canvas_script(5, "#0b365f")
    if kind == "animation":
        return S.animation_tool_script(seed)
    if kind == "thumbnail":
        return S.thumbnail_generator_script(seed)
    raise ValueError(f"unknown benign script kind {kind!r}")


def _collect_known_customers(world: World) -> None:
    """Pick a few deployments per vendor as 'advertised customers'."""
    for spec in VENDOR_SPECS:
        if not (spec.has_known_customers or spec.per_site):
            continue
        customers = [
            p.domain
            for p in world.plans.values()
            if p.failure is None
            and any(d.vendor == spec.name for d in p.deployments)
        ][:5]
        if customers:
            world.known_customers[spec.name] = customers
