"""The long tail of boutique fingerprinters.

Beyond the Table 1 vendors, the paper finds ~500 distinct test canvases,
most shared by only a handful of sites (Figure 1's tail).  The catalog here
generates that landscape: each boutique script draws a parameterized test
canvas (distinct pangram / palette / font per script identity), with a
Zipf-like popularity so a few boutiques appear on dozens of sites while
most appear on exactly one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.webgen import scripts as S

__all__ = ["BoutiqueScript", "BoutiqueCatalog"]

_WORDS = (
    "zephyr", "quartz", "jackdaw", "sphinx", "vortex", "glyph", "fjord",
    "waltz", "nymph", "oxide", "kludge", "pixel", "vector", "raster",
    "shader", "kernel", "cipher", "beacon", "probe", "signal",
)

_PALETTES = (
    ("#f60", "#069"),
    ("#c33", "#114"),
    ("#2a7", "#401"),
    ("#e91", "#035"),
    ("#b2c", "#142"),
    ("#07a", "#520"),
    ("#d44", "#063"),
    ("#391", "#214"),
)

_FONTS = ("11pt Arial", "12px Verdana", "13px Georgia", "14px Courier", "11px Tahoma", "12pt Times")


@dataclass(frozen=True)
class BoutiqueScript:
    """One boutique fingerprinting script identity."""

    index: int
    source: str
    path: str
    host: str
    double_render: bool
    extractions: int
    #: Blocklist exposure.
    in_easylist: bool
    in_easyprivacy: bool
    in_disconnect: bool
    #: Whether a working (blockable) EasyList rule exists for it.
    easylist_blockable: bool


class BoutiqueCatalog:
    """Deterministic catalog of boutique fingerprinters.

    ``tail_only_start`` marks a band of catalog indices reserved for
    tail-population sites, reproducing the paper's small tail-only canvas
    groups (largest 15 sites, next 3).
    """

    def __init__(
        self,
        size: int = 900,
        seed: int = 0xB0071,
        double_render_rate: float = 0.17,
        easylist_rate: float = 0.09,
        easylist_blockable_rate: float = 0.75,
        easyprivacy_rate: float = 0.10,
        disconnect_rate: float = 0.05,
    ) -> None:
        self.size = size
        rng = random.Random(seed)
        self._scripts: List[BoutiqueScript] = []
        for i in range(size):
            self._scripts.append(self._make(i, rng, double_render_rate,
                                            easylist_rate, easylist_blockable_rate,
                                            easyprivacy_rate, disconnect_rate))

    def _make(
        self,
        i: int,
        rng: random.Random,
        double_rate: float,
        el_rate: float,
        el_block_rate: float,
        ep_rate: float,
        dc_rate: float,
    ) -> BoutiqueScript:
        if i < 60:
            # Popular boutique products: far more likely to be listed.
            el_rate = min(1.0, el_rate * 2.6)
            ep_rate = min(1.0, ep_rate * 2.2)
            dc_rate = min(1.0, dc_rate * 2.4)
        word_a = _WORDS[rng.randrange(len(_WORDS))]
        word_b = _WORDS[rng.randrange(len(_WORDS))]
        # Index leads the pangram so it is always on-canvas (narrow
        # canvases clip the tail of the string).
        pangram = f"bq{i:03d} {word_a} {word_b} device check qty 7Jx"
        color_a, color_b = _PALETTES[rng.randrange(len(_PALETTES))]
        font = _FONTS[rng.randrange(len(_FONTS))]
        double = rng.random() < double_rate

        # A sliver of boutiques are "font probers" rendering many canvases —
        # they produce the per-site canvas-count tail (max 60 in §4.1).
        if i % 97 == 13:
            count = rng.choice((20, 30, 45, 60))
            source = S.font_prober_script(count, seed=i)
            extractions = count
        else:
            source = S.text_fingerprint_script(
                pangram,
                color_a,
                color_b,
                font=font,
                width=200 + (i % 7) * 12,
                height=40 + (i % 5) * 6,
                double_render=double,
                vendor=None,
                result_var="__bq",
            )
            extractions = 2 if double else 1
            # Many boutiques probe a second, boutique-unique geometry canvas
            # (raises both canvases-per-site and distinct-canvas counts).
            if rng.random() < 0.35:
                # Hue has period 360 in i and size has period 11; together no
                # two catalog entries share a geometry canvas (360 % 11 != 0).
                # Sizes are odd (101..141), so no boutique geometry canvas
                # can collide with a vendor's (vendors use size 120).
                source += S.geometry_fingerprint_script(
                    (i * 7) % 360, size=101 + (i % 11) * 4, vendor=None, result_var="__bqGeom"
                )
                extractions += 1

        # Unique registrable domain per boutique: domain-based lists
        # (Disconnect) must not accidentally cover unrelated boutiques.
        host = f"cdn.{word_a}-fp{i:03d}.net"
        in_el = rng.random() < el_rate
        return BoutiqueScript(
            index=i,
            source=source,
            path=f"/collect/fp-{i:03d}.js",
            host=host,
            double_render=double,
            extractions=extractions,
            in_easylist=in_el,
            in_easyprivacy=rng.random() < ep_rate,
            in_disconnect=rng.random() < dc_rate,
            easylist_blockable=in_el and rng.random() < el_block_rate,
        )

    def get(self, index: int) -> BoutiqueScript:
        return self._scripts[index % self.size]

    def __iter__(self):
        return iter(self._scripts)

    def __len__(self) -> int:
        return self.size

    def sample_index(self, rng: random.Random, population: str, zipf_a: float = 1.25) -> int:
        """Draw a boutique index with the paper's popularity structure.

        * Top-population sites: a Zipf head (popular boutique products,
          Figure 1's mid ranks) mixed with a wide uniform component
          (bespoke in-house fingerprinting — the ~500-unique-canvas tail).
        * Tail-population sites: mostly the Zipf head (tail sites buy
          popular products, §4.2's 91.4% overlap), plus a small reserved
          tail-only band (the paper's 15-site / 3-site tail-only groups).
        """
        band_start = int(self.size * 0.7)
        if population == "tail" and rng.random() < 0.08:
            # Zipf within the tail-only band too: its head entry accumulates
            # the paper's 15-site tail-only group, the rest stay tiny.
            band = self.size - band_start
            u = rng.random()
            rank = int((band ** (1.0 - zipf_a) * u + (1 - u)) ** (1.0 / (1.0 - zipf_a)))
            return band_start + max(1, min(band, rank)) - 1
        if population == "top" and rng.random() < 0.45:
            return rng.randrange(band_start)
        # Inverse-CDF Zipf over the head band.
        u = rng.random()
        rank = int((band_start ** (1.0 - zipf_a) * u + (1 - u)) ** (1.0 / (1.0 - zipf_a)))
        return max(1, min(band_start, rank)) - 1
