"""JavaScript source templates for the synthetic web.

Every fingerprinting and benign script in the ecosystem is generated here as
a real program for :mod:`repro.js`.  Vendor scripts draw *distinct* test
canvases (different pangrams, colors, geometry) — the diversity the paper's
clustering exploits — and the realistic behaviors the analyses depend on:

* render-twice consistency checks (§5.3, Algorithm 1),
* per-customer-unique canvases (Imperva),
* webp/emoji compatibility checks and animation tools (the §3.2 exclusions).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "text_fingerprint_script",
    "geometry_fingerprint_script",
    "combined_fingerprint_script",
    "imperva_script",
    "font_prober_script",
    "webp_check_script",
    "emoji_check_script",
    "small_canvas_script",
    "animation_tool_script",
    "analytics_filler_script",
]


def _banner(vendor: Optional[str]) -> str:
    if not vendor:
        return ""
    return f"/*! {vendor} device intelligence SDK. Copyright (c) {vendor}. All rights reserved. */\n"


def text_fingerprint_script(
    pangram: str,
    color_a: str = "#f60",
    color_b: str = "#069",
    font: str = "11pt Arial",
    width: int = 240,
    height: int = 60,
    double_render: bool = False,
    emoji: str = "",
    vendor: Optional[str] = None,
    extra_rect: bool = True,
    result_var: str = "__fpText",
) -> str:
    """A text-based test canvas in the FingerprintJS style.

    ``double_render`` adds the canvas-randomization inconsistency check:
    the canvas is extracted twice and discarded when the two reads differ.
    """
    emoji_line = (
        f"  ctx.font = '20px Arial';\n  ctx.fillText('{emoji}', {width - 24}, 30);\n" if emoji else ""
    )
    rect_line = (
        f"  ctx.fillStyle = '{color_a}';\n  ctx.fillRect(125, 1, 62, 20);\n" if extra_rect else ""
    )
    body = f"""{_banner(vendor)}function __renderTextCanvas() {{
  var canvas = document.createElement('canvas');
  canvas.width = {width};
  canvas.height = {height};
  var ctx = canvas.getContext('2d');
  ctx.textBaseline = 'alphabetic';
{rect_line}  ctx.fillStyle = '{color_b}';
  ctx.font = '{font}';
  ctx.fillText('{pangram}', 2, 15);
  ctx.fillStyle = 'rgba(102, 204, 0, 0.7)';
  ctx.fillText('{pangram}', 4, 17);
{emoji_line}  return canvas.toDataURL();
}}
"""
    if double_render:
        body += f"""var __first = __renderTextCanvas();
var __second = __renderTextCanvas();
if (__first === __second) {{
  {result_var} = __first;
}} else {{
  {result_var} = 'unstable';
}}
"""
    else:
        body += f"{result_var} = __renderTextCanvas();\n"
    return body


def geometry_fingerprint_script(
    hue_offset: int = 0,
    size: int = 120,
    vendor: Optional[str] = None,
    result_var: str = "__fpGeom",
) -> str:
    """A winding/compositing canvas in the FingerprintJS "geometry" style."""
    h1 = hue_offset % 360
    h2 = (hue_offset + 120) % 360
    h3 = (hue_offset + 240) % 360
    quarter = size // 4
    half = size // 2
    return f"""{_banner(vendor)}(function() {{
  var canvas = document.createElement('canvas');
  canvas.width = {size};
  canvas.height = {size};
  var ctx = canvas.getContext('2d');
  ctx.globalCompositeOperation = 'multiply';
  var colors = ['hsl({h1}, 100%, 50%)', 'hsl({h2}, 100%, 50%)', 'hsl({h3}, 100%, 50%)'];
  var offsets = [[{quarter}, {quarter}], [{half}, {quarter}], [{quarter + half // 2}, {half}]];
  for (var i = 0; i < 3; i++) {{
    ctx.fillStyle = colors[i];
    ctx.beginPath();
    ctx.arc(offsets[i][0] + 20, offsets[i][1] + 20, {quarter}, 0, Math.PI * 2, true);
    ctx.closePath();
    ctx.fill();
  }}
  ctx.fillStyle = 'hsl({(hue_offset + 60) % 360}, 100%, 50%)';
  ctx.arc({half}, {half}, {half - 2}, 0, Math.PI * 2, true);
  ctx.arc({half}, {half}, {quarter - 2}, 0, Math.PI * 2, true);
  ctx.fill('evenodd');
  {result_var} = canvas.toDataURL();
}})();
"""


def combined_fingerprint_script(
    pangram: str,
    color_a: str,
    color_b: str,
    font: str = "11pt Arial",
    hue_offset: int = 0,
    double_render: bool = True,
    emoji: str = "\\ud83d\\ude03",
    vendor: Optional[str] = None,
    collect_var: str = "__fpComponents",
) -> str:
    """Full FingerprintJS-style collector: text canvas (render-twice checked)
    plus geometry canvas, combined into one components object."""
    text = text_fingerprint_script(
        pangram,
        color_a,
        color_b,
        font,
        double_render=double_render,
        emoji=emoji,
        vendor=vendor,
        result_var="__textComponent",
    )
    geometry = geometry_fingerprint_script(hue_offset, vendor=None, result_var="__geomComponent")
    return (
        text
        + geometry
        + f"""{collect_var} = {{ text: __textComponent, geometry: __geomComponent }};
"""
    )


def imperva_script(customer_domain: str) -> str:
    """Imperva-style bot detection: the test canvas embeds the customer
    domain, so every deployment renders a *unique* canvas (§4.3.2)."""
    return f"""(function() {{
  var c = document.createElement('canvas');
  c.width = 200;
  c.height = 40;
  var g = c.getContext('2d');
  g.textBaseline = 'top';
  g.font = '13px Arial';
  g.fillStyle = '#203040';
  g.fillRect(0, 0, 200, 40);
  g.fillStyle = '#e8e8e8';
  g.fillText('inca::' + '{customer_domain}', 3, 5);
  g.fillText('<@nv45. F1n63r,Pr1n71n6!', 3, 22);
  window.__incapsulaCanvas = c.toDataURL();
}})();
"""


def font_prober_script(count: int, seed: int) -> str:
    """A boutique "font prober" rendering many small test canvases — the
    source of the per-site canvas-count tail (max 60 in the paper)."""
    return f"""(function() {{
  var fonts = ['Arial', 'Courier', 'Georgia', 'Times', 'Verdana', 'Tahoma'];
  var results = [];
  for (var i = 0; i < {count}; i++) {{
    var c = document.createElement('canvas');
    c.width = 120;
    c.height = 24;
    var g = c.getContext('2d');
    g.font = '12px ' + fonts[i % fonts.length];
    g.fillStyle = '#1b2a3c';
    g.fillText('{seed}-' + (i % fonts.length) + ' fontprobe', 2, 16);
    results.push(c.toDataURL());
  }}
  window.__fontProbe = results.length;
}})();
"""


def webp_check_script() -> str:
    """WebP-support compatibility check (benign, excluded by heuristic 1)."""
    return """(function() {
  var c = document.createElement('canvas');
  c.width = 1;
  c.height = 1;
  var url = c.toDataURL('image/webp');
  window.__supportsWebp = url.indexOf('data:image/webp') === 0;
})();
"""


def emoji_check_script() -> str:
    """Emoji-rendering support check (benign, excluded by heuristic 2)."""
    return """(function() {
  var c = document.createElement('canvas');
  c.width = 10;
  c.height = 10;
  var g = c.getContext('2d');
  g.textBaseline = 'top';
  g.font = '8px Arial';
  g.fillText('\\ud83d\\ude03', 0, 0);
  window.__emojiProbe = c.toDataURL();
})();
"""


def small_canvas_script(size: int, color: str) -> str:
    """A small uniform-color canvas extraction (Appendix A.2, Figure 2)."""
    return f"""(function() {{
  var c = document.createElement('canvas');
  c.width = {size};
  c.height = {size};
  var g = c.getContext('2d');
  g.fillStyle = '{color}';
  g.fillRect(0, 0, {size}, {size});
  window.__tinyCanvas = c.toDataURL();
}})();
"""


def animation_tool_script(seed: int = 0) -> str:
    """An image-editor-style script: draws with save/restore (animation-
    associated methods), then exports — excluded by heuristic 3."""
    return f"""(function() {{
  var c = document.createElement('canvas');
  c.width = 320;
  c.height = 200;
  var g = c.getContext('2d');
  for (var frame = 0; frame < 3; frame++) {{
    g.save();
    g.translate(20 + frame * 10, 30);
    g.fillStyle = 'hsl(' + (({seed} * 37 + frame * 40) % 360) + ', 70%, 60%)';
    g.fillRect(0, 0, 80, 50);
    g.restore();
  }}
  g.fillStyle = '#333333';
  g.fillText('export preview {seed}', 10, 180);
  window.__editorExport = c.toDataURL();
}})();
"""


def thumbnail_generator_script(seed: int) -> str:
    """A benign thumbnail/preview generator: large canvas exported as JPEG.

    Excluded *solely* by the lossy-format heuristic — no animation methods,
    not small — so it isolates that filter's contribution in ablations.
    """
    return f"""(function() {{
  var c = document.createElement('canvas');
  c.width = 160;
  c.height = 120;
  var g = c.getContext('2d');
  g.fillStyle = 'hsl({(seed * 13) % 360}, 55%, 70%)';
  g.fillRect(0, 0, 160, 120);
  g.fillStyle = '#223344';
  g.fillRect(10, 90, 140, 20);
  g.fillStyle = '#ffffff';
  g.font = '11px Arial';
  g.fillText('preview #{seed}', 14, 104);
  window.__thumbnail = c.toDataURL('image/jpeg', 0.8);
}})();
"""


def analytics_filler_script(seed: int) -> str:
    """Non-canvas site JavaScript (analytics/page code) — makes first-party
    bundles realistic hosts for concatenated vendor payloads."""
    return f"""var __pageAnalytics = (function() {{
  var events = [];
  function track(name, value) {{
    events.push({{ name: name, value: value, t: performance.now() }});
    return events.length;
  }}
  track('pageview', {seed});
  track('viewport', screen.width + 'x' + screen.height);
  return {{ track: track, count: function() {{ return events.length; }} }};
}})();
"""
