"""Derives generator probabilities from the paper's published numbers.

The synthetic web is sampled per-site; this module turns the absolute counts
in :mod:`repro.config` into the per-site probabilities the sampler needs,
with the derivations spelled out so every magic number traces to a paper
statistic.  All rates are conditional on crawl success (the paper's
denominators are successfully crawled sites).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.config import PAPER, PaperTargets

__all__ = ["PopulationRates", "CalibrationParams", "derive_params"]

#: The four vendors whose canvases dominate Figure 1's head.
BIG_VENDORS = ("Akamai", "FingerprintJS", "mail.ru", "FingerprintJS (legacy)")
#: Vendors assigned as independent add-ons (mostly security products that
#: co-exist with the big trackers on the same sites).
SMALL_VENDORS = (
    "Imperva",
    "AWS Firewall",
    "InsurAds",
    "Signifyd",
    "PerimeterX",
    "Sift Science",
    "Adscore",
    "GeeTest",
)


@dataclass(frozen=True)
class PopulationRates:
    """Per-site sampling rates for one population ("top" or "tail")."""

    population: str
    #: P(crawl succeeds) — the paper crawled 16,276/20,000 top sites.
    success_rate: float
    #: Failure mix among failures (bot-blocked / network / HTTP error).
    failure_mix: Tuple[Tuple[str, float], ...]
    #: P(site fingerprints | success) — 12.7% top, 9.9% tail.
    fp_rate: float
    #: P(mail.ru | .ru site, success) — one third of top .ru domains (§4.3.1).
    mailru_given_ru: float
    #: P(some non-mail.ru fingerprinter | success), solved so the overall
    #: FP rate matches fp_rate given mail.ru's contribution.
    other_fp_rate: float
    #: Primary-fingerprinter weights among "other" FP sites.
    primary_weights: Tuple[Tuple[str, float], ...]
    #: P(small vendor v | FP site), independent per vendor.
    small_vendor_rates: Tuple[Tuple[str, float], ...]
    #: P(an attributed site additionally runs a boutique script).
    boutique_secondary_rate: float = 0.15
    #: Benign canvas uses, conditional on FP status (§3.2 / A.2 numbers
    #: force benign extraction to correlate with fingerprinting sites).
    webp_given_fp: float = 0.125
    webp_given_clean: float = 0.0034
    small_given_fp: float = 0.085
    small_given_clean: float = 0.0028
    emoji_given_fp: float = 0.05
    emoji_given_clean: float = 0.002
    animation_given_fp: float = 0.18
    animation_given_clean: float = 0.005
    thumbnail_given_fp: float = 0.05
    thumbnail_given_clean: float = 0.004
    #: Script gating (exercised by autoconsent / behavior simulation).
    consent_gate_rate: float = 0.20
    scroll_gate_rate: float = 0.10

    def weights_dict(self) -> Dict[str, float]:
        return dict(self.primary_weights)


@dataclass(frozen=True)
class CalibrationParams:
    """Full generator calibration (both populations)."""

    top: PopulationRates
    tail: PopulationRates
    #: FingerprintJS deployment flavors: share of FPJS sites.
    fpjs_commercial_share: Dict[str, float] = field(
        default_factory=lambda: {"top": 0.05, "tail": 0.034}
    )
    #: fraction of .ru sites in the ranking (must match tranco's TLD mix).
    ru_share: float = 0.045

    def rates(self, population: str) -> PopulationRates:
        if population == "top":
            return self.top
        if population == "tail":
            return self.tail
        raise KeyError(population)


def _derive_population(paper: PaperTargets, population: str, ru_share: float) -> PopulationRates:
    if population == "top":
        crawled, success = paper.top_sites_crawled, paper.top_sites_success
        fp_sites = paper.top_fp_sites
        counts = {v.name: v.top for v in paper.vendors}
        # Top sites run more anti-bot tech: most failures are bot blocks.
        failure_mix = (("bot-blocked", 0.60), ("network-error", 0.25), ("http-error", 0.15))
    else:
        crawled, success = paper.tail_sites_crawled, paper.tail_sites_success
        fp_sites = paper.tail_fp_sites
        counts = {v.name: v.tail for v in paper.vendors}
        failure_mix = (("bot-blocked", 0.30), ("network-error", 0.45), ("http-error", 0.25))

    success_rate = success / crawled
    fp_rate = fp_sites / success

    # mail.ru: 1/3 of top .ru sites carry its canvas; for the tail, solve
    # P(mail.ru | .ru) from the Table 1 count and the .ru share.
    ru_sites = success * ru_share
    mailru_given_ru = min(1.0, counts["mail.ru"] / ru_sites)
    mailru_overall = ru_share * mailru_given_ru

    # P(other fingerprinter): FP = mail.ru OR other (independent draws).
    other_fp_rate = (fp_rate - mailru_overall) / (1.0 - mailru_overall)

    # Primary weights among "other" FP sites: the big vendors (minus
    # mail.ru, handled above), Shopify, and the boutique long tail.
    other_sites = success * other_fp_rate
    weights = {}
    for name in ("Akamai", "FingerprintJS", "FingerprintJS (legacy)", "Shopify"):
        weights[name] = counts[name] / other_sites
    weights["boutique"] = max(0.05, 1.0 - sum(weights.values()))

    small_rates = tuple((name, counts[name] / fp_sites) for name in SMALL_VENDORS)

    return PopulationRates(
        population=population,
        success_rate=success_rate,
        failure_mix=failure_mix,
        fp_rate=fp_rate,
        mailru_given_ru=mailru_given_ru,
        other_fp_rate=other_fp_rate,
        primary_weights=tuple(weights.items()),
        small_vendor_rates=small_rates,
    )


def derive_params(paper: PaperTargets = PAPER, ru_share: float = 0.045) -> CalibrationParams:
    """Build the full calibration from the paper targets."""
    return CalibrationParams(
        top=_derive_population(paper, "top", ru_share),
        tail=_derive_population(paper, "tail", ru_share),
        ru_share=ru_share,
    )
