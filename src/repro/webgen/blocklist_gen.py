"""Synthetic EasyList / EasyPrivacy / Disconnect generation.

Encodes the rule-design landscape §5.1-§5.2 and A.6 document:

* *working* rules (``$script,third-party``) that deployed blockers enforce,
* *statically-listed-but-practically-dead* rules — ``$domain=``-restricted
  (breakage precautions) or ``$document``-modified (A.6's mgid example) —
  which the paper's static check counts but blockers never fire on scripts,
* the Disconnect list, which is domain-based.
"""

from __future__ import annotations

from typing import List

from repro.blocklists.disconnect import DisconnectList
from repro.net.url import registrable_domain
from repro.webgen.boutique import BoutiqueCatalog

__all__ = ["generate_easylist", "generate_easyprivacy", "generate_ubo_extra", "generate_disconnect"]

#: $domain= restriction used to model breakage-avoidance scoping: the rule
#: statically applies to the URL, but never fires on real pages.
_DEAD_SCOPE = "$script,domain=legacy-portal.example|old-intranet.example"


def generate_easylist(catalog: BoutiqueCatalog) -> str:
    """EasyList: advertising-focused, the list deployed blockers enforce."""
    lines: List[str] = [
        "[Adblock Plus 2.0]",
        "! Title: Synthetic EasyList",
        "! Ad-serving noise rules",
        "||doubleclick-like.net^$third-party",
        "/banners/*$image",
        "||popunder-live.example^",
        # Akamai's fingerprinting script URL is matched... but Bot Manager is
        # always first-party, so the rule never fires in practice (§5.2 fn 5).
        "/akam/*$script",
        # mail.ru: listed with a breakage-scoped rule (static hit, no block).
        "||privacy-cs.mail.ru^" + _DEAD_SCOPE,
        # FingerprintJS commercial CDN, similarly scoped.
        "||fpnpmcdn.net^" + _DEAD_SCOPE,
        # A.6 verbatim failure mode: the $document modifier never applies to
        # script loads, so this rule neither lists nor blocks fp scripts.
        "||widgets.mgid.com^$document",
        # InsurAds / Adscore: scoped (listed, not blocked).
        "||cdn.insurads.com^" + _DEAD_SCOPE,
        "||js.adsco.re^" + _DEAD_SCOPE,
        # Ad-tech self-hosters of FingerprintJS with *working* rules — the
        # small population ad blockers actually remove (Table 2's ~5%).
        "||js.aldata-media.com^$script,third-party",
        "||cdn.adskeeper.com^$script,third-party",
        "||static.trafficjunky.net^$script,third-party",
        "||collect.acint.net^$script,third-party",
    ]
    for script in catalog:
        if not script.in_easylist:
            continue
        if script.easylist_blockable:
            lines.append(f"||{script.host}^$script,third-party")
        else:
            lines.append(f"||{script.host}^" + _DEAD_SCOPE)
    return "\n".join(lines) + "\n"


def generate_easyprivacy(catalog: BoutiqueCatalog) -> str:
    """EasyPrivacy: tracker-focused; used for the §5.1 static analysis only
    (the paper's ad-blocker crawls use EasyList rules)."""
    lines: List[str] = [
        "[Adblock Plus 2.0]",
        "! Title: Synthetic EasyPrivacy",
        "/akam/*$script",
        "||privacy-cs.mail.ru^$script",
        "||fpnpmcdn.net^$script",
        "/fingerprint2-*.js$script",
        "||cdn.sift.com^$script",
        "||client.px-cloud.net^$script",
        "||cdn-scripts.signifyd.com^$script",
        "||collect.acint.net^$script",
    ]
    for script in catalog:
        if script.in_easyprivacy:
            lines.append(f"||{script.host}^$script")
    return "\n".join(lines) + "\n"


def generate_ubo_extra(catalog: BoutiqueCatalog) -> str:
    """uBlock Origin's additional built-in filters: a thin extra layer of
    working rules, giving uBO its slightly larger Table 2 bite."""
    lines: List[str] = ["! Title: uBlock filters — privacy (synthetic)"]
    for script in catalog:
        if script.index % 23 == 5 and not script.easylist_blockable:
            lines.append(f"||{script.host}^$script,third-party")
    return "\n".join(lines) + "\n"


def generate_disconnect(catalog: BoutiqueCatalog) -> DisconnectList:
    """The Disconnect tracker-protection list (domain-based)."""
    dl = DisconnectList("disconnect")
    dl.add("mail.ru", "FingerprintingInvasive")
    dl.add("fpnpmcdn.net", "FingerprintingInvasive")
    dl.add("px-cloud.net", "FingerprintingInvasive")
    dl.add("sift.com", "FingerprintingInvasive")
    dl.add("adsco.re", "Advertising")
    dl.add("aldata-media.com", "Advertising")
    dl.add("mgid.com", "Advertising")
    dl.add("acint.net", "Analytics")
    for script in catalog:
        if script.in_disconnect:
            dl.add(registrable_domain(script.host), "FingerprintingInvasive")
    return dl
