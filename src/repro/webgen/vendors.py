"""The thirteen fingerprinting vendors of Table 1 / Table 3.

Each :class:`VendorSpec` bundles what the synthetic web needs to deploy the
vendor (script source, canonical host, serving-mode mix) and what the
attribution methodology needs to identify it (demo page, known customers,
script URL pattern) plus its blocklist exposure (§5.1 / Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.webgen import scripts as S

__all__ = ["VendorSpec", "VENDOR_SPECS", "ServingMode", "prewarm_sources"]


class ServingMode:
    """How a vendor deployment serves its script on a customer site."""

    THIRD_PARTY = "third-party"          # from the vendor's own domain
    FIRST_PARTY_BUNDLE = "bundle"        # concatenated into the site's app.js
    FIRST_PARTY_PATH = "first-party"     # from the customer domain (vendor path)
    SUBDOMAIN = "subdomain"              # from a delegated customer subdomain
    CNAME_CLOAK = "cname"                # customer subdomain CNAMEd to vendor
    CDN = "cdn"                          # from a popular shared CDN

    ALL = (THIRD_PARTY, FIRST_PARTY_BUNDLE, FIRST_PARTY_PATH, SUBDOMAIN, CNAME_CLOAK, CDN)


@dataclass(frozen=True)
class VendorSpec:
    """Ground-truth definition of one fingerprinting vendor."""

    name: str
    security: bool
    #: The vendor's own serving host (third-party deployments + demo).
    host: str
    #: Path of the fingerprinting script on serving hosts.
    script_path: str
    #: Script source; ``per_site=True`` sources take the customer domain.
    source: Callable[..., str] = None
    per_site: bool = False
    #: Number of toDataURL extractions one execution performs.
    extractions: int = 1
    #: Does the script run the render-twice inconsistency check (§5.3)?
    double_render: bool = False
    #: Attribution ground truth (Table 3).
    has_demo: bool = False
    has_known_customers: bool = False
    script_pattern: Optional[str] = None
    #: serving mode -> probability, per population ("top"/"tail").
    serving_mix: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Blocklist exposure: which lists carry rules/entries for this vendor,
    #: and whether the EasyList rule actually works on script requests.
    in_easylist: bool = False
    easylist_rule_broken: bool = False    # $document / $domain= misdesign (A.6)
    in_easyprivacy: bool = False
    easyprivacy_rule_broken: bool = False
    in_disconnect: bool = False


def _mix(top: Dict[str, float], tail: Optional[Dict[str, float]] = None) -> Dict[str, Dict[str, float]]:
    return {"top": top, "tail": tail if tail is not None else dict(top)}


_FPJS_PANGRAM = "Cwm fjordbank glyphs vext quiz"
_FPJS_LEGACY_PANGRAM = "Cwm fjordbank gly"


def _fpjs_source(commercial: bool = False) -> str:
    src = S.combined_fingerprint_script(
        _FPJS_PANGRAM,
        "#f60",
        "#069",
        font="11pt Arial",
        hue_offset=0,
        double_render=True,
        vendor="FingerprintJS" if not commercial else "Fingerprint Pro",
    )
    if commercial:
        # The commercial build probes additional surfaces (mathML, WebGL
        # identity) — how the paper distinguishes it from the OSS build.
        src += (
            "var __mathmlProbe = Math.tan(-1e300) + '' + Math.pow(Math.PI, -100);\n"
            "var __glProbe = (function() {\n"
            "  var gl = document.createElement('canvas').getContext('webgl');\n"
            "  if (!gl) { return 'no-webgl'; }\n"
            "  var info = gl.getExtension('WEBGL_debug_renderer_info');\n"
            "  return gl.getParameter(info.UNMASKED_VENDOR_WEBGL) + '~' +\n"
            "         gl.getParameter(info.UNMASKED_RENDERER_WEBGL);\n"
            "})();\n"
            "var __proVersion = 'fp-pro-3.11';\n"
        )
    return src


VENDOR_SPECS: Tuple[VendorSpec, ...] = (
    VendorSpec(
        name="Akamai",
        security=True,
        host="akam-sensor.akamai.com",
        script_path="/akam/13/7a6b9f2e",
        source=lambda: S.text_fingerprint_script(
            "Soft glyphs vex bank DMZ quartz jock 1.7",
            "#281",
            "#705",
            font="14px Arial",
            width=280,
            height=50,
            vendor="Akamai Bot Manager",
        ),
        extractions=1,
        has_known_customers=True,
        script_pattern="/akam/",
        # Bot Manager is deployed on the customer's own domain: that is the
        # first-party exception that defeats EasyList's matching rule (§5.2).
        serving_mix=_mix({ServingMode.FIRST_PARTY_PATH: 1.0}),
        in_easylist=True,
        in_easyprivacy=True,
    ),
    VendorSpec(
        name="FingerprintJS",
        security=False,
        host="fpnpmcdn.net",
        script_path="/v4/fp.min.js",
        source=_fpjs_source,
        extractions=3,  # text twice (consistency check) + geometry
        double_render=True,
        has_demo=True,
        has_known_customers=True,
        script_pattern="fpnpmcdn.net",
        serving_mix=_mix(
            {
                ServingMode.FIRST_PARTY_BUNDLE: 0.38,
                ServingMode.THIRD_PARTY: 0.28,
                ServingMode.SUBDOMAIN: 0.22,
                ServingMode.CDN: 0.07,
                ServingMode.CNAME_CLOAK: 0.05,
            },
            {
                ServingMode.FIRST_PARTY_BUNDLE: 0.52,
                ServingMode.THIRD_PARTY: 0.33,
                ServingMode.SUBDOMAIN: 0.04,
                ServingMode.CDN: 0.08,
                ServingMode.CNAME_CLOAK: 0.03,
            },
        ),
        in_easylist=True,
        easylist_rule_broken=True,  # $domain=-scoped rule: listed, rarely blocks
        in_easyprivacy=True,
        in_disconnect=True,
    ),
    VendorSpec(
        name="mail.ru",
        security=False,
        host="privacy-cs.mail.ru",
        script_path="/counter/tmr.js",
        source=lambda: S.text_fingerprint_script(
            "\\u041c\\u0435\\u0442\\u0440\\u0438\\u043a\\u0430 glyphs 3.14",
            "#d33",
            "#226",
            font="12pt Arial",
            width=260,
            height=56,
            double_render=True,
            vendor="Mail.Ru Group",
        )
        + S.geometry_fingerprint_script(90, vendor=None, result_var="__tmrGeom"),
        extractions=3,  # text twice (consistency check) + geometry
        double_render=True,
        script_pattern="privacy-cs.mail.ru",
        serving_mix=_mix({ServingMode.THIRD_PARTY: 1.0}),
        # Listed everywhere, but the EasyList/EasyPrivacy rules carry
        # breakage-avoidance $domain= restrictions: statically listed (§5.1,
        # Table 4 "All"), practically unblocked (§5.2, Table 2).
        in_easylist=True,
        easylist_rule_broken=True,
        in_easyprivacy=True,
        easyprivacy_rule_broken=True,
        in_disconnect=True,
    ),
    VendorSpec(
        name="FingerprintJS (legacy)",
        security=False,
        host="cdn.fplegacy.net",
        script_path="/fingerprint2-2.1.0.js",
        source=lambda: S.text_fingerprint_script(
            _FPJS_LEGACY_PANGRAM,
            "#f60",
            "#069",
            font="11pt no-real-font-123",
            width=240,
            height=60,
            double_render=True,
            emoji="\\ud83d\\ude03",
            vendor="Valve fingerprintjs2",
        )
        + S.geometry_fingerprint_script(301, vendor=None, result_var="__f2Geom"),
        extractions=3,  # text twice (consistency check) + geometry
        double_render=True,
        has_known_customers=True,
        script_pattern="fingerprint2",
        serving_mix=_mix(
            {
                ServingMode.FIRST_PARTY_BUNDLE: 0.45,
                ServingMode.THIRD_PARTY: 0.30,
                ServingMode.SUBDOMAIN: 0.15,
                ServingMode.CDN: 0.10,
            },
            {
                ServingMode.FIRST_PARTY_BUNDLE: 0.55,
                ServingMode.THIRD_PARTY: 0.35,
                ServingMode.SUBDOMAIN: 0.02,
                ServingMode.CDN: 0.08,
            },
        ),
        in_easyprivacy=True,
    ),
    VendorSpec(
        name="Imperva",
        security=True,
        host="imperva-incapsula.net",
        script_path="",  # per-site bare path, see ecosystem
        source=S.imperva_script,
        per_site=True,
        extractions=1,
        script_pattern=None,  # identified via the Table 3 URL regex instead
        serving_mix=_mix({ServingMode.FIRST_PARTY_PATH: 1.0}),
    ),
    VendorSpec(
        name="AWS Firewall",
        security=True,
        host="token.awswaf.com",
        script_path="/challenge.js",
        source=lambda: S.text_fingerprint_script(
            "awswaf integrity 7Kq zephyr blow vex",
            "#f90",
            "#232f3e",
            font="13px Arial",
            width=250,
            height=48,
            vendor="AWS WAF",
        )
        + S.geometry_fingerprint_script(53, vendor=None, result_var="__wafGeom"),
        extractions=2,
        has_demo=False,
        script_pattern="awswaf.com",
        serving_mix=_mix({ServingMode.THIRD_PARTY: 0.85, ServingMode.SUBDOMAIN: 0.15}),
    ),
    VendorSpec(
        name="InsurAds",
        security=False,
        host="cdn.insurads.com",
        script_path="/attention.js",
        source=lambda: S.text_fingerprint_script(
            "InsurAds attention quality zephyr 42",
            "#0aa",
            "#333",
            font="12px Arial",
            width=230,
            height=44,
            vendor="InsurAds",
        )
        + S.geometry_fingerprint_script(71, vendor=None, result_var="__insGeom"),
        extractions=2,
        has_demo=True,
        script_pattern="insurads.com",
        serving_mix=_mix({ServingMode.THIRD_PARTY: 1.0}),
        in_easylist=True,
    ),
    VendorSpec(
        name="Signifyd",
        security=True,
        host="cdn-scripts.signifyd.com",
        script_path="/fraud-beacon.js",
        source=lambda: S.text_fingerprint_script(
            "Signifyd guaranteed fraud Qx vellum 9",
            "#43b02a",
            "#1d252c",
            font="12px Arial",
            width=244,
            height=46,
            vendor="Signifyd",
        )
        + S.geometry_fingerprint_script(101, vendor=None, result_var="__sigGeom"),
        extractions=2,
        has_known_customers=True,
        script_pattern="signifyd.com",
        serving_mix=_mix({ServingMode.THIRD_PARTY: 0.8, ServingMode.SUBDOMAIN: 0.2}),
        in_easyprivacy=True,
    ),
    VendorSpec(
        name="PerimeterX",
        security=True,
        host="client.px-cloud.net",
        script_path="/main.min.js",
        source=lambda: S.text_fingerprint_script(
            "PX bot defender jq glyph vexes 0x7f",
            "#e8443a",
            "#2b2b2b",
            font="13px Arial",
            width=252,
            height=50,
            vendor="PerimeterX",
        )
        + S.geometry_fingerprint_script(139, vendor=None, result_var="__pxGeom"),
        extractions=2,
        has_demo=True,
        script_pattern="px-cloud.net",
        serving_mix=_mix({ServingMode.THIRD_PARTY: 0.6, ServingMode.SUBDOMAIN: 0.4}),
        in_easyprivacy=True,
        in_disconnect=True,
    ),
    VendorSpec(
        name="Sift Science",
        security=True,
        host="cdn.sift.com",
        script_path="/s.js",
        source=lambda: S.text_fingerprint_script(
            "Sift digital trust jackdaws vex 88",
            "#2a5db0",
            "#11203a",
            font="12px Arial",
            width=236,
            height=46,
            vendor="Sift",
        )
        + S.geometry_fingerprint_script(167, vendor=None, result_var="__siftGeom"),
        extractions=2,
        has_demo=True,
        script_pattern="sift.com",
        serving_mix=_mix({ServingMode.THIRD_PARTY: 1.0}),
        in_easyprivacy=True,
        in_disconnect=True,
    ),
    VendorSpec(
        name="Shopify",
        security=False,
        host="cdn.shopifycloud.com",
        script_path="/perf-kit/shop.js",
        source=lambda: S.text_fingerprint_script(
            "Shopify storefront perf beacon zX2",
            "#95bf47",
            "#212b36",
            font="12px Arial",
            width=248,
            height=44,
            vendor="Shopify performance",
        )
        + S.geometry_fingerprint_script(211, vendor=None, result_var="__shopGeom"),
        extractions=2,
        has_known_customers=True,
        script_pattern="shopifycloud",
        serving_mix=_mix({ServingMode.THIRD_PARTY: 1.0}),
    ),
    VendorSpec(
        name="Adscore",
        security=True,
        host="js.adsco.re",
        script_path="/sdk.js",
        source=lambda: S.text_fingerprint_script(
            "Adscore invalid traffic quartz jib 5",
            "#ff5400",
            "#20262e",
            font="12px Arial",
            width=240,
            height=46,
            vendor="Adscore",
        )
        + S.geometry_fingerprint_script(197, vendor=None, result_var="__adsGeom"),
        extractions=2,
        has_demo=True,
        script_pattern="adsco.re",
        serving_mix=_mix({ServingMode.THIRD_PARTY: 1.0}),
        in_easylist=True,
        in_disconnect=True,
    ),
    VendorSpec(
        name="GeeTest",
        security=True,
        host="static.geetest.com",
        script_path="/static/js/gt.js",
        source=lambda: S.text_fingerprint_script(
            "GeeTest captcha vortex quiz jmp 3",
            "#3c6af0",
            "#222a3f",
            font="12px Arial",
            width=238,
            height=46,
            vendor="GeeTest",
        )
        + S.geometry_fingerprint_script(223, vendor=None, result_var="__gtGeom"),
        extractions=2,
        has_demo=True,
        script_pattern="geetest.com",
        serving_mix=_mix({ServingMode.THIRD_PARTY: 1.0}),
    ),
)

VENDORS_BY_NAME: Dict[str, VendorSpec] = {v.name: v for v in VENDOR_SPECS}


def prewarm_sources() -> List[str]:
    """Source text of every vendor script whose bytes don't vary per site.

    Used to pre-warm the compiled-script cache in crawl workers
    (:func:`repro.js.compiler.prewarm`) before their first page load.
    ``per_site`` vendors take the customer domain, so their bytes differ per
    deployment and cannot be compiled ahead of time; FingerprintJS
    contributes both the OSS and the commercial build.
    """
    out: List[str] = []
    for spec in VENDOR_SPECS:
        if spec.per_site:
            continue
        out.append(spec.source())
    out.append(VENDORS_BY_NAME["FingerprintJS"].source(commercial=True))
    return out

#: Ad-tech companies that self-host the open-source FingerprintJS build
#: (§4.3.1): host -> (name, top-site share of FPJS deployments, tail share).
FPJS_ADTECH_HOSTS: Tuple[Tuple[str, str, float, float], ...] = (
    ("js.aldata-media.com", "AIdata", 0.087, 0.034),
    ("cdn.adskeeper.com", "adskeeper", 0.022, 0.020),
    ("static.trafficjunky.net", "trafficjunky", 0.015, 0.003),
    ("widgets.mgid.com", "MGID", 0.050, 0.057),
    ("collect.acint.net", "acint.net", 0.039, 0.097),
)
