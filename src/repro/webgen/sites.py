"""Per-site composition sampling and homepage assembly.

``plan_site`` rolls one site's fate — crawl failure, fingerprinting vendors,
boutique scripts, serving modes, gating, benign canvas uses — from the
calibrated rates.  ``build_homepage_html`` turns a plan into the HTML the
synthetic server will serve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crawler.crawl import CrawlTarget
from repro.webgen.boutique import BoutiqueCatalog
from repro.webgen.calibration import CalibrationParams, PopulationRates
from repro.webgen.vendors import FPJS_ADTECH_HOSTS, VENDORS_BY_NAME, ServingMode, VendorSpec

__all__ = ["Deployment", "SitePlan", "plan_site", "build_homepage_html"]


@dataclass
class Deployment:
    """One fingerprinting script deployed on one site."""

    kind: str                      # "vendor" | "boutique"
    vendor: Optional[str] = None
    boutique_index: Optional[int] = None
    #: FPJS only: "commercial", "oss", or an ad-tech host name.
    flavor: Optional[str] = None
    serving: str = ServingMode.THIRD_PARTY
    gating: Optional[str] = None   # None | "consent" | "scroll"
    #: Filled during materialization: the script tag's src (None = bundled).
    script_src: Optional[str] = None


@dataclass
class SitePlan:
    """Everything decided about one synthetic site."""

    domain: str
    rank: int
    population: str
    failure: Optional[str] = None
    deployments: List[Deployment] = field(default_factory=list)
    benign: List[str] = field(default_factory=list)
    consent_banner: bool = False
    #: Deployments that only run on the /login inner page — fingerprinting a
    #: homepage-only crawl misses (the §3.2 "Limitations" lower bound).
    login_deployments: List[Deployment] = field(default_factory=list)

    @property
    def fingerprints(self) -> bool:
        return bool(self.deployments)

    @property
    def tld(self) -> str:
        return self.domain.rsplit(".", 1)[-1]


def _weighted_choice(rng: random.Random, weights: Dict[str, float]) -> str:
    total = sum(weights.values())
    u = rng.random() * total
    acc = 0.0
    for key, w in weights.items():
        acc += w
        if u <= acc:
            return key
    return next(reversed(weights))


def _pick_serving(rng: random.Random, spec: VendorSpec, population: str) -> str:
    mix = spec.serving_mix.get(population) or spec.serving_mix.get("top") or {}
    if not mix:
        return ServingMode.THIRD_PARTY
    return _weighted_choice(rng, mix)


def _pick_gating(rng: random.Random, rates: PopulationRates) -> Optional[str]:
    u = rng.random()
    if u < rates.consent_gate_rate:
        return "consent"
    if u < rates.consent_gate_rate + rates.scroll_gate_rate:
        return "scroll"
    return None


_FPJS_OSS_MIX = {
    "top": {
        ServingMode.FIRST_PARTY_BUNDLE: 0.34,
        ServingMode.SUBDOMAIN: 0.24,
        ServingMode.THIRD_PARTY: 0.24,
        ServingMode.CDN: 0.08,
        ServingMode.CNAME_CLOAK: 0.06,
        ServingMode.FIRST_PARTY_PATH: 0.04,
    },
    "tail": {
        ServingMode.FIRST_PARTY_BUNDLE: 0.56,
        ServingMode.SUBDOMAIN: 0.08,
        ServingMode.THIRD_PARTY: 0.17,
        ServingMode.CDN: 0.10,
        ServingMode.CNAME_CLOAK: 0.04,
        ServingMode.FIRST_PARTY_PATH: 0.05,
    },
}

_FPJS_COMMERCIAL_MIX = {
    "top": {ServingMode.SUBDOMAIN: 0.45, ServingMode.THIRD_PARTY: 0.30, ServingMode.CDN: 0.25},
    "tail": {ServingMode.SUBDOMAIN: 0.25, ServingMode.THIRD_PARTY: 0.45, ServingMode.CDN: 0.30},
}

_BOUTIQUE_MIX = {
    "top": {
        ServingMode.THIRD_PARTY: 0.77,
        ServingMode.FIRST_PARTY_BUNDLE: 0.12,
        ServingMode.FIRST_PARTY_PATH: 0.06,
        ServingMode.SUBDOMAIN: 0.02,
        ServingMode.CDN: 0.01,
        ServingMode.CNAME_CLOAK: 0.02,
    },
    "tail": {
        ServingMode.THIRD_PARTY: 0.235,
        ServingMode.FIRST_PARTY_BUNDLE: 0.55,
        ServingMode.FIRST_PARTY_PATH: 0.14,
        ServingMode.SUBDOMAIN: 0.03,
        ServingMode.CDN: 0.015,
        ServingMode.CNAME_CLOAK: 0.03,
    },
}


def _fpjs_deployment(rng: random.Random, population: str, params: CalibrationParams) -> Deployment:
    """Pick a FingerprintJS flavor and serving mode (§4.3.1's ecosystem)."""
    commercial_share = params.fpjs_commercial_share[population]
    u = rng.random()
    if u < commercial_share:
        return Deployment(
            kind="vendor",
            vendor="FingerprintJS",
            flavor="commercial",
            serving=_weighted_choice(rng, _FPJS_COMMERCIAL_MIX[population]),
        )
    acc = commercial_share
    for host, name, top_share, tail_share in FPJS_ADTECH_HOSTS:
        share = top_share if population == "top" else tail_share
        acc += share
        if u < acc:
            return Deployment(
                kind="vendor",
                vendor="FingerprintJS",
                flavor=name,
                serving=ServingMode.THIRD_PARTY,
            )
    return Deployment(
        kind="vendor",
        vendor="FingerprintJS",
        flavor="oss",
        serving=_weighted_choice(rng, _FPJS_OSS_MIX[population]),
    )


def plan_site(
    target: CrawlTarget,
    params: CalibrationParams,
    catalog: BoutiqueCatalog,
    seed: int,
) -> SitePlan:
    """Sample the full composition of one site, deterministically."""
    rng = random.Random(f"{seed}:site:{target.domain}")
    rates = params.rates(target.population)
    plan = SitePlan(domain=target.domain, rank=target.rank, population=target.population)

    # Crawl failure (§3: 16,276 / 17,260 of 20k succeeded).
    if rng.random() > rates.success_rate:
        plan.failure = _weighted_choice(rng, dict(rates.failure_mix))
        return plan

    # mail.ru rides on .ru sites (§4.3.1: one third of top .ru domains).
    if plan.tld == "ru" and rng.random() < rates.mailru_given_ru:
        spec = VENDORS_BY_NAME["mail.ru"]
        plan.deployments.append(
            Deployment(
                kind="vendor",
                vendor="mail.ru",
                serving=_pick_serving(rng, spec, target.population),
                gating=_pick_gating(rng, rates),
            )
        )

    # Other fingerprinters.
    if rng.random() < rates.other_fp_rate:
        primary = _weighted_choice(rng, rates.weights_dict())
        if primary == "boutique":
            idx = catalog.sample_index(rng, target.population)
            plan.deployments.append(
                Deployment(
                    kind="boutique",
                    boutique_index=idx,
                    serving=_weighted_choice(rng, _BOUTIQUE_MIX[target.population]),
                    gating=_pick_gating(rng, rates),
                )
            )
        elif primary == "FingerprintJS":
            deployment = _fpjs_deployment(rng, target.population, params)
            deployment.gating = _pick_gating(rng, rates)
            plan.deployments.append(deployment)
        else:
            spec = VENDORS_BY_NAME[primary]
            plan.deployments.append(
                Deployment(
                    kind="vendor",
                    vendor=primary,
                    serving=_pick_serving(rng, spec, target.population),
                    gating=_pick_gating(rng, rates),
                )
            )

    # Small (mostly security) vendors co-deploy on fingerprinting sites.
    if plan.deployments:
        for name, rate in rates.small_vendor_rates:
            if rng.random() < rate:
                spec = VENDORS_BY_NAME[name]
                plan.deployments.append(
                    Deployment(
                        kind="vendor",
                        vendor=name,
                        serving=_pick_serving(rng, spec, target.population),
                        gating=_pick_gating(rng, rates),
                    )
                )
        # And some attributed sites additionally run a boutique script.
        if any(d.kind == "vendor" for d in plan.deployments):
            if rng.random() < rates.boutique_secondary_rate:
                idx = catalog.sample_index(rng, target.population)
                plan.deployments.append(
                    Deployment(
                        kind="boutique",
                        boutique_index=idx,
                        serving=_weighted_choice(rng, _BOUTIQUE_MIX[target.population]),
                        gating=_pick_gating(rng, rates),
                    )
                )

    # Benign canvas uses (correlated with fingerprinting — §3.2 / A.2).
    is_fp = plan.fingerprints
    for kind, p_fp, p_clean in (
        ("webp", rates.webp_given_fp, rates.webp_given_clean),
        ("small", rates.small_given_fp, rates.small_given_clean),
        ("emoji", rates.emoji_given_fp, rates.emoji_given_clean),
        ("animation", rates.animation_given_fp, rates.animation_given_clean),
        ("thumbnail", rates.thumbnail_given_fp, rates.thumbnail_given_clean),
    ):
        if rng.random() < (p_fp if is_fp else p_clean):
            plan.benign.append(kind)

    plan.consent_banner = any(d.gating == "consent" for d in plan.deployments) or rng.random() < 0.25

    # Inner-page (login) fingerprinting: the paper's homepage-only crawl is
    # a stated lower bound (§3.2 Limitations); some sites fingerprint only
    # behind /login (security re-identification — cf. Senol et al. [39]).
    login_only_rate = 0.06 if not plan.fingerprints else 0.15
    if rng.random() < 0.3 and rng.random() < login_only_rate:
        security_vendors = ("PerimeterX", "Sift Science", "Signifyd", "AWS Firewall")
        vendor = security_vendors[rng.randrange(len(security_vendors))]
        plan.login_deployments.append(
            Deployment(
                kind="vendor",
                vendor=vendor,
                serving=_pick_serving(rng, VENDORS_BY_NAME[vendor], target.population),
            )
        )
    return plan


def build_homepage_html(plan: SitePlan, bundle_has_vendor_code: bool) -> str:
    """Assemble the homepage HTML for a planned site."""
    parts: List[str] = [
        "<html><head>",
        f"<title>{plan.domain.split('.')[0].title()} — rank {plan.rank}</title>",
        "</head><body>",
    ]
    if plan.consent_banner:
        parts.append(
            '<div class="consent-banner" data-consent-banner="1">'
            'We value your privacy <button class="consent-accept">Accept</button></div>'
        )
    parts.append(f"<h1>{plan.domain}</h1>")

    # Every site ships a first-party bundle (analytics/page code; vendor
    # payloads may be concatenated into it during materialization).
    parts.append('<script src="/assets/app.js"></script>')

    for deployment in plan.deployments:
        if deployment.serving == ServingMode.FIRST_PARTY_BUNDLE:
            continue  # inside /assets/app.js
        gate = ""
        if deployment.gating == "consent":
            gate = ' data-consent="required"'
        elif deployment.gating == "scroll":
            gate = ' data-trigger="scroll"'
        parts.append(f'<script src="{deployment.script_src}"{gate}></script>')

    for kind in plan.benign:
        parts.append(f'<script src="/assets/{kind}-check.js"></script>')

    parts.append("</body></html>")
    return "\n".join(parts)
