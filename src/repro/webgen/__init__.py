"""Synthetic web ecosystem: Tranco-like ranking, fingerprinting vendors,
boutique fingerprinters, benign canvas users, serving-mode evasions, and
the blocklists that try to keep up — all calibrated to the paper's
published numbers (see :mod:`repro.config`)."""

from repro.webgen.ecosystem import World, build_world
from repro.webgen.tranco import TrancoRanking
from repro.webgen.vendors import VENDOR_SPECS, VendorSpec

__all__ = ["World", "build_world", "TrancoRanking", "VENDOR_SPECS", "VendorSpec"]
