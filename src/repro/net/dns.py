"""DNS zone with A and CNAME records.

CNAME chains are first-class because CNAME cloaking (§5.2) is one of the
evasions the paper documents: a fingerprinting vendor asks its customer to
point ``metrics.customer.com`` at ``collector.vendor.com`` via CNAME, so a
URL-based blocklist sees a first-party host while the vendor's server
actually answers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["RecordType", "DNSRecord", "DNSZone", "DNSError"]


class DNSError(KeyError):
    """Raised when a name cannot be resolved."""


class RecordType(str, enum.Enum):
    A = "A"
    CNAME = "CNAME"


@dataclass(frozen=True)
class DNSRecord:
    name: str
    rtype: RecordType
    value: str  # IPv4 string for A, canonical name for CNAME


class DNSZone:
    """A flat authoritative zone for the whole synthetic Internet."""

    MAX_CHAIN = 8

    def __init__(self) -> None:
        self._records: Dict[str, DNSRecord] = {}

    def add_a(self, name: str, address: str) -> None:
        """Register an A record (one per name; last write wins)."""
        name = name.lower()
        self._records[name] = DNSRecord(name, RecordType.A, address)

    def add_cname(self, name: str, target: str) -> None:
        """Register a CNAME record pointing ``name`` at ``target``."""
        name = name.lower()
        target = target.lower()
        if name == target:
            raise ValueError(f"CNAME loop: {name} -> {target}")
        self._records[name] = DNSRecord(name, RecordType.CNAME, target)

    def lookup(self, name: str) -> Optional[DNSRecord]:
        return self._records.get(name.lower())

    def records(self) -> Tuple[DNSRecord, ...]:
        """Every record in the zone, sorted by name (stable for hashing)."""
        return tuple(sorted(self._records.values(), key=lambda r: r.name))

    def resolve(self, name: str) -> Tuple[str, List[str]]:
        """Resolve ``name`` following CNAMEs.

        Returns ``(canonical_name, chain)`` where ``chain`` lists every name
        visited (starting with ``name`` itself).  The canonical name is the
        final name holding an A record.  Raises :class:`DNSError` when the
        name is unknown or the chain is too long / cyclic.
        """
        name = name.lower()
        chain = [name]
        current = name
        for _ in range(self.MAX_CHAIN):
            record = self._records.get(current)
            if record is None:
                raise DNSError(f"NXDOMAIN: {current}")
            if record.rtype is RecordType.A:
                return current, chain
            current = record.value
            if current in chain:
                raise DNSError(f"CNAME loop at {current}")
            chain.append(current)
        raise DNSError(f"CNAME chain too long for {name}")

    def is_cloaked(self, name: str) -> bool:
        """True when ``name`` CNAMEs (possibly transitively) off its own site.

        This is the detection signal CNAME-uncloaking lists use: a first-party
        subdomain whose canonical name lives on a different registrable domain.
        """
        from repro.net.url import registrable_domain

        try:
            canonical, chain = self.resolve(name)
        except DNSError:
            return False
        return len(chain) > 1 and registrable_domain(canonical) != registrable_domain(name)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._records

    def __len__(self) -> int:
        return len(self._records)
