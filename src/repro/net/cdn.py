"""Popular-CDN domain list (paper Appendix A.5).

Fingerprinting services serve scripts from widely shared CDNs because ad
blockers cannot block such domains without breaking the Web.  The paper uses
the twelve domains below to lower-bound CDN-fronted fingerprinting.
"""

from __future__ import annotations


from repro.net.url import URL

__all__ = ["POPULAR_CDN_DOMAINS", "is_cdn_host", "is_cdn_url"]

#: Appendix A.5 of the paper, verbatim.
POPULAR_CDN_DOMAINS = (
    "cloudflare.com",
    "cloudfront.net",
    "fastly.net",
    "gstatic.com",
    "googleusercontent.com",
    "googleapis.com",
    "akamai.net",
    "azureedge.net",
    "b-cdn.net",
    "bootstrapcdn.com",
    "cdn.jsdelivr.net",
    "cdnjs.cloudflare.com",
)


def is_cdn_host(host: str) -> bool:
    """True when ``host`` is (a subdomain of) one of the popular CDN domains."""
    host = host.lower()
    for cdn in POPULAR_CDN_DOMAINS:
        if host == cdn or host.endswith("." + cdn):
            return True
    return False


def is_cdn_url(url: "URL | str") -> bool:
    """True when the URL's host is served by a popular CDN (A.5 list)."""
    host = url.host if isinstance(url, URL) else URL.parse(url).host
    return is_cdn_host(host)
