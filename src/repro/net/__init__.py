"""Synthetic network substrate: URLs, DNS (with CNAME cloaking), HTTP and servers."""

from repro.net.url import URL, origin_of, registrable_domain, same_site
from repro.net.http import Request, Response, ResourceType
from repro.net.dns import DNSZone, DNSRecord, RecordType
from repro.net.server import OriginServer, Network
from repro.net.cdn import POPULAR_CDN_DOMAINS, is_cdn_url
from repro.net.faults import FaultConfig, FaultInjector, FaultKind, FaultyNetwork

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultKind",
    "FaultyNetwork",
    "URL",
    "origin_of",
    "registrable_domain",
    "same_site",
    "Request",
    "Response",
    "ResourceType",
    "DNSZone",
    "DNSRecord",
    "RecordType",
    "OriginServer",
    "Network",
    "POPULAR_CDN_DOMAINS",
    "is_cdn_url",
]
