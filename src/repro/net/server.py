"""Origin servers and the synthetic network fabric.

:class:`OriginServer` maps paths to resources for one canonical host.
:class:`Network` owns the DNS zone and all servers, and answers
:class:`~repro.net.http.Request` objects the way the Internet would: resolve
the host (following CNAMEs), find the server authoritative for the canonical
name, and route the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import obs
from repro.net.dns import DNSError, DNSZone
from repro.net.http import Request, Response
from repro.net.url import URL

__all__ = ["Resource", "OriginServer", "Network"]


@dataclass
class Resource:
    """A static resource a server can serve."""

    body: str
    content_type: str = "text/html"
    status: int = 200


class OriginServer:
    """A web server authoritative for one canonical hostname."""

    def __init__(self, host: str) -> None:
        self.host = host.lower()
        self._routes: Dict[str, Resource] = {}

    def add_resource(
        self, path: str, body: str, content_type: str = "text/html", status: int = 200
    ) -> None:
        """Serve ``body`` at ``path`` with the given content type and status."""
        if not path.startswith("/"):
            raise ValueError(f"path must be absolute: {path!r}")
        self._routes[path] = Resource(body=body, content_type=content_type, status=status)

    def add_script(self, path: str, source: str) -> None:
        """Convenience: serve a JavaScript resource."""
        self.add_resource(path, source, content_type="application/javascript")

    def paths(self):
        return self._routes.keys()

    def resources(self):
        """(path, resource) pairs sorted by path (stable for hashing)."""
        return tuple(sorted(self._routes.items()))

    def handle(self, request: Request) -> Response:
        resource = self._routes.get(request.url.path)
        if resource is None:
            return Response.not_found(request.url)
        return Response(
            url=request.url,
            status=resource.status,
            content_type=resource.content_type,
            body=resource.body,
            served_by=self.host,
        )


class Network:
    """The synthetic Internet: one DNS zone plus all origin servers.

    Request counts are kept so experiments can assert on traffic (e.g. that
    an ad blocker actually cancelled a fetch rather than the fetch 404ing).
    """

    def __init__(self) -> None:
        self.dns = DNSZone()
        self._servers: Dict[str, OriginServer] = {}
        self.requests_served = 0
        self.requests_failed = 0

    # -- topology -------------------------------------------------------------

    def server_for(self, host: str) -> OriginServer:
        """Get or create the server for a canonical host, registering DNS."""
        host = host.lower()
        server = self._servers.get(host)
        if server is None:
            server = OriginServer(host)
            self._servers[host] = server
            if host not in self.dns:
                # Deterministic fake address derived from the host name.
                octet = sum(host.encode()) % 254 + 1
                self.dns.add_a(host, f"198.51.{octet % 256}.{len(host) % 254 + 1}")
        return server

    def alias(self, name: str, canonical: str) -> None:
        """Point ``name`` at ``canonical`` via CNAME (cloaking/subdomains)."""
        self.dns.add_cname(name, canonical)

    def has_host(self, host: str) -> bool:
        return host.lower() in self.dns

    def servers(self) -> Dict[str, OriginServer]:
        """All origin servers by canonical host (read-only snapshot)."""
        return dict(self._servers)

    # -- request handling --------------------------------------------------------

    def fetch(self, request: Request) -> Response:
        """Resolve, route and serve a request."""
        obs.inc("net.requests")
        try:
            canonical, _chain = self.dns.resolve(request.url.host)
        except DNSError:
            self.requests_failed += 1
            obs.inc("net.requests_failed")
            return Response(url=request.url, status=0, content_type="", body="", error="dns")
        server = self._servers.get(canonical)
        if server is None:
            self.requests_failed += 1
            obs.inc("net.requests_failed")
            return Response.not_found(request.url)
        response = server.handle(request)
        if response.ok:
            self.requests_served += 1
            obs.inc("net.bytes_fetched", len(response.body))
        else:
            self.requests_failed += 1
            obs.inc("net.requests_failed")
        return response

    def get(self, url: "URL | str", **kwargs) -> Response:
        """Convenience GET without blocking context."""
        if isinstance(url, str):
            url = URL.parse(url)
        return self.fetch(Request(url=url, **kwargs))
