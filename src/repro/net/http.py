"""HTTP request/response model for the synthetic network.

Only the parts a measurement crawler observes are modelled: method, URL,
resource type (the ad-blocker matching context), initiating document, status,
content type and body.  Bodies are ``str`` for text resources.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.net.url import URL, same_site

__all__ = ["ResourceType", "Request", "Response"]


class ResourceType(str, enum.Enum):
    """Resource types as seen by blocklist engines (subset of ABP types)."""

    DOCUMENT = "document"
    SCRIPT = "script"
    IMAGE = "image"
    STYLESHEET = "stylesheet"
    XHR = "xmlhttprequest"
    SUBDOCUMENT = "subdocument"
    OTHER = "other"


@dataclass(frozen=True)
class Request:
    """An outgoing request, carrying the context blockers match against."""

    url: URL
    resource_type: ResourceType = ResourceType.OTHER
    document_url: Optional[URL] = None
    method: str = "GET"

    @property
    def third_party(self) -> bool:
        """True when the request crosses a site boundary from its document."""
        if self.document_url is None:
            return False
        return not same_site(self.url, self.document_url)


@dataclass
class Response:
    """A served response."""

    url: URL
    status: int = 200
    content_type: str = "text/html"
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    #: Host that actually served the response after DNS/CNAME resolution —
    #: differs from ``url.host`` under CNAME cloaking.
    served_by: Optional[str] = None
    #: Virtual delivery latency.  The browser advances the page clock by this
    #: much, so slow responses trip the crawler's page watchdog instead of
    #: hanging — real wall-clock time never passes.
    latency_ms: float = 0.0
    #: Machine-readable cause for status-0 responses: ``"dns"`` for a
    #: nonexistent host (permanent — NXDOMAIN stays NXDOMAIN), ``"connection"``
    #: for a transient connection failure, ``"blocked"`` for a request an
    #: extension cancelled.  The crawler's transient/permanent failure
    #: classification keys off this.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @classmethod
    def not_found(cls, url: URL) -> "Response":
        return cls(url=url, status=404, content_type="text/plain", body="not found")

    @classmethod
    def blocked(cls, url: URL) -> "Response":
        """Pseudo-response for a request an extension cancelled."""
        return cls(url=url, status=0, content_type="", body="", error="blocked")
