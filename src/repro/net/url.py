"""URL parsing and site identity.

A small, strict URL model sufficient for Web-measurement work: scheme, host,
port, path, query and fragment, plus the two identity notions the paper's
analyses rely on:

* :func:`registrable_domain` — the eTLD+1 ("site") of a host, computed from a
  compact public-suffix subset.  First- vs third-party classification (§5.2)
  compares registrable domains, not full hosts, which is exactly what makes
  subdomain routing an evasion.
* :func:`same_site` — registrable-domain equality.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "URL",
    "URLError",
    "registrable_domain",
    "origin_of",
    "same_site",
    "PUBLIC_SUFFIXES",
]


class URLError(ValueError):
    """Raised when a string cannot be parsed as an absolute or relative URL."""


#: Compact public-suffix list subset.  Multi-label suffixes must be listed
#: explicitly; any unlisted final label is treated as a suffix of one label
#: (matching PSL's implicit ``*`` rule).
PUBLIC_SUFFIXES = frozenset(
    {
        "co.uk",
        "org.uk",
        "ac.uk",
        "gov.uk",
        "com.au",
        "net.au",
        "org.au",
        "com.br",
        "com.cn",
        "com.pa",
        "co.jp",
        "ne.jp",
        "or.jp",
        "co.kr",
        "co.in",
        "com.mx",
        "com.tr",
        "com.ua",
        "in.ua",
        # CDN / hosting platform suffixes: subdomains are independent sites.
        "cloudfront.net",
        "azureedge.net",
        "b-cdn.net",
        "github.io",
        "herokuapp.com",
    }
)

_SCHEME_RE = re.compile(r"^([a-zA-Z][a-zA-Z0-9+.-]*):")
_HOST_RE = re.compile(r"^[a-z0-9]([a-z0-9\-_]*[a-z0-9])?(\.[a-z0-9]([a-z0-9\-_]*[a-z0-9])?)*$")

_DEFAULT_PORTS = {"http": 80, "https": 443}


@dataclass(frozen=True)
class URL:
    """An absolute URL.

    Immutable; construct via :meth:`parse` or the constructor with explicit
    components.  ``port`` of ``None`` means the scheme default.
    """

    scheme: str
    host: str
    path: str = "/"
    query: str = ""
    fragment: str = ""
    port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scheme not in ("http", "https"):
            raise URLError(f"unsupported scheme: {self.scheme!r}")
        if not self.host or not _HOST_RE.match(self.host):
            raise URLError(f"invalid host: {self.host!r}")
        if not self.path.startswith("/"):
            raise URLError(f"path must be absolute: {self.path!r}")
        if self.port is not None and not 0 < self.port < 65536:
            raise URLError(f"invalid port: {self.port}")

    # -- construction ---------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "URL":
        """Parse an absolute http(s) URL string."""
        m = _SCHEME_RE.match(text)
        if not m:
            raise URLError(f"not an absolute URL: {text!r}")
        scheme = m.group(1).lower()
        rest = text[m.end():]
        if not rest.startswith("//"):
            raise URLError(f"missing authority: {text!r}")
        rest = rest[2:]

        fragment = ""
        if "#" in rest:
            rest, fragment = rest.split("#", 1)
        query = ""
        if "?" in rest:
            rest, query = rest.split("?", 1)

        if "/" in rest:
            authority, path = rest.split("/", 1)
            path = "/" + path
        else:
            authority, path = rest, "/"

        port: Optional[int] = None
        host = authority.lower()
        if ":" in host:
            host, port_s = host.rsplit(":", 1)
            try:
                port = int(port_s)
            except ValueError as exc:
                raise URLError(f"invalid port in {text!r}") from exc
        return cls(scheme=scheme, host=host, path=path, query=query, fragment=fragment, port=port)

    def join(self, ref: str) -> "URL":
        """Resolve ``ref`` (absolute, scheme-relative, or path-relative) against self."""
        if _SCHEME_RE.match(ref):
            return URL.parse(ref)
        if ref.startswith("//"):
            return URL.parse(f"{self.scheme}:{ref}")
        if ref.startswith("/"):
            return URL(self.scheme, self.host, *_split_pqf(ref), port=self.port)
        # Relative path: resolve against the directory of self.path.
        base_dir = self.path.rsplit("/", 1)[0]
        return URL(self.scheme, self.host, *_split_pqf(f"{base_dir}/{ref}"), port=self.port)

    # -- identity ---------------------------------------------------------------

    @property
    def effective_port(self) -> int:
        return self.port if self.port is not None else _DEFAULT_PORTS[self.scheme]

    @property
    def origin(self) -> str:
        """RFC 6454 origin serialization (scheme, host, port)."""
        if self.port is None or self.port == _DEFAULT_PORTS[self.scheme]:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    @property
    def site(self) -> str:
        """The registrable domain (eTLD+1) of the host."""
        return registrable_domain(self.host)

    def with_path(self, path: str) -> "URL":
        return URL(self.scheme, self.host, *_split_pqf(path), port=self.port)

    def __str__(self) -> str:
        s = self.origin + self.path
        if self.query:
            s += "?" + self.query
        if self.fragment:
            s += "#" + self.fragment
        return s


def _split_pqf(path: str) -> Tuple[str, str, str]:
    """Split a path-query-fragment string into its three components."""
    fragment = ""
    if "#" in path:
        path, fragment = path.split("#", 1)
    query = ""
    if "?" in path:
        path, query = path.split("?", 1)
    return path, query, fragment


def registrable_domain(host: str) -> str:
    """Return the eTLD+1 of ``host``.

    A host that *is* a public suffix (or a bare TLD) is returned unchanged —
    callers treating such hosts as sites get a conservative answer.
    """
    host = host.lower().rstrip(".")
    labels = host.split(".")
    if len(labels) < 2:
        return host
    # Longest public suffix match wins; default suffix is the final label.
    for take in (3, 2):
        if len(labels) > take and ".".join(labels[-take:]) in PUBLIC_SUFFIXES:
            return ".".join(labels[-(take + 1):])
    if ".".join(labels[-2:]) in PUBLIC_SUFFIXES:
        return host if len(labels) == 2 else ".".join(labels[-3:])
    return ".".join(labels[-2:])


def origin_of(url: "URL | str") -> str:
    """Origin string of a URL or URL text."""
    if isinstance(url, str):
        url = URL.parse(url)
    return url.origin


def same_site(a: "URL | str", b: "URL | str") -> bool:
    """True when the two URLs share a registrable domain (first-party)."""
    host_a = a.host if isinstance(a, URL) else URL.parse(a).host
    host_b = b.host if isinstance(b, URL) else URL.parse(b).host
    return registrable_domain(host_a) == registrable_domain(host_b)
