"""Deterministic transient-fault injection over the synthetic network.

The ecosystem's per-site failure *plans* (``SitePlan.failure``) model
permanent breakage: a dead domain stays dead for the whole crawl.  Real
crawls additionally lose sites to *transient* faults — connection resets,
5xx flaps, slow origins, truncated transfers — which is exactly the class a
retry layer can win back (the paper's crawl kept 16,276/17,260 of its
targets per population despite them).

:class:`FaultInjector` decides, purely as a function of ``(seed, url)``,
whether a URL is afflicted, with which fault kind, and for how many
consecutive fetch attempts.  Because the schedule is keyed by URL rather
than by draw order, the same seed yields the identical fault schedule no
matter how many retries interleave — which makes robustness *testable*:
a crawl with retries enabled must recover the exact success set of a
fault-free crawl.

:class:`FaultyNetwork` wraps any :class:`~repro.net.server.Network` and
applies the schedule at ``fetch`` time; everything else (DNS, servers,
aliases) passes straight through.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.net.http import Request, Response, ResourceType

__all__ = ["FaultKind", "FaultConfig", "FaultSchedule", "FaultInjector", "FaultyNetwork"]


class FaultKind:
    """The transient fault classes the injector can produce."""

    CONNECTION_ERROR = "connection-error"   # status 0, nothing served
    HTTP_FLAP = "http-flap"                 # 5xx that clears on a later attempt
    SLOW_RESPONSE = "slow-response"         # served, but with huge virtual latency
    TRUNCATED_SCRIPT = "truncated-script"   # script body cut short mid-transfer
    WORKER_CRASH = "worker-crash"           # the fetching *process* dies (OOM/segfault)
    WORKER_HANG = "worker-hang"             # the fetching process wedges (real sleep)

    ALL = (CONNECTION_ERROR, HTTP_FLAP, SLOW_RESPONSE, TRUNCATED_SCRIPT)
    #: Kinds applicable to non-script resources (a document cannot be a
    #: truncated *script*).
    DOCUMENT = (CONNECTION_ERROR, HTTP_FLAP, SLOW_RESPONSE)
    #: Process-level fault kinds.  These never enter the per-URL transient
    #: mix: they model *poison sites* that take down whichever crawl worker
    #: visits them, every time — the class only a shard supervisor
    #: (:mod:`repro.crawler.supervisor`) can recover from.
    PROCESS = (WORKER_CRASH, WORKER_HANG)


@dataclass(frozen=True)
class FaultConfig:
    """Knobs for the injected transient-failure mix."""

    #: Fraction of URLs afflicted by any fault at all.
    fault_rate: float = 0.0
    #: Relative weights of the fault kinds among afflicted URLs.
    connection_error_weight: float = 1.0
    http_flap_weight: float = 1.0
    slow_response_weight: float = 1.0
    truncated_script_weight: float = 1.0
    #: A fault afflicts at most this many consecutive attempts, then clears —
    #: the defining property of a *transient* fault.  Keep this below a
    #: retry policy's ``max_attempts`` and every afflicted site recovers.
    max_consecutive: int = 2
    #: Virtual latency injected by slow responses; pick it above the page
    #: watchdog budget so slowness surfaces as a ``timeout`` failure.  A slow
    #: response is *only* observable through a
    #: :class:`~repro.crawler.resilience.PageBudget` — without one the latency
    #: merely advances the virtual clock.  ``run_crawl`` therefore defaults a
    #: ``PageBudget`` whenever a ``FaultyNetwork`` or retry policy is in play.
    slow_ms: float = 120_000.0
    #: Status served while an HTTP flap lasts.
    flap_status: int = 503
    #: Poison sites whose *document* fetch kills the fetching process outright
    #: (``os._exit``), modelling an OOM-killed or segfaulted crawl worker.
    #: Deterministic and permanent: the same domain kills every process that
    #: visits it, which is what lets the supervisor's bisecting quarantine
    #: converge on the culprit.
    worker_crash_domains: Tuple[str, ...] = ()
    #: Poison sites whose document fetch wedges the fetching process in a
    #: real ``time.sleep`` — the heartbeat-starving hang a supervisor must
    #: detect by liveness deadline rather than process exit.
    worker_hang_domains: Tuple[str, ...] = ()
    #: Exit status a worker-crash poison site dies with (137 = 128+SIGKILL,
    #: the signature of the kernel OOM killer).
    worker_crash_exit_code: int = 137
    #: How long a worker-hang poison site sleeps per document fetch.  Pick it
    #: far above the supervisor's liveness deadline; an unsupervised crawl
    #: hitting a hang site simply stalls for this long.
    worker_hang_seconds: float = 300.0

    def weight_for(self, kind: str) -> float:
        return {
            FaultKind.CONNECTION_ERROR: self.connection_error_weight,
            FaultKind.HTTP_FLAP: self.http_flap_weight,
            FaultKind.SLOW_RESPONSE: self.slow_response_weight,
            FaultKind.TRUNCATED_SCRIPT: self.truncated_script_weight,
        }[kind]


@dataclass(frozen=True)
class FaultSchedule:
    """What happens to one URL: ``kind`` for its first ``fail_attempts`` fetches."""

    kind: str
    fail_attempts: int


class FaultInjector:
    """Seeded, order-independent fault scheduler."""

    def __init__(self, config: FaultConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        #: url -> fetch attempts seen so far (the per-URL fault clock).
        self._attempts: Dict[str, int] = {}
        #: kind -> number of faults actually injected.
        self.injected: Dict[str, int] = {}

    def schedule_for(self, url: str, resource_type: ResourceType) -> Optional[FaultSchedule]:
        """The (stable) fault schedule for a URL, or None if unafflicted."""
        rng = random.Random(f"faults:{self.seed}:{url}")
        if rng.random() >= self.config.fault_rate:
            return None
        kinds = (
            FaultKind.ALL if resource_type == ResourceType.SCRIPT else FaultKind.DOCUMENT
        )
        weights = [self.config.weight_for(k) for k in kinds]
        if sum(weights) <= 0:
            return None
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        return FaultSchedule(kind=kind, fail_attempts=rng.randint(1, self.config.max_consecutive))

    def next_fault(self, url: str, resource_type: ResourceType) -> Optional[str]:
        """Advance the URL's attempt counter; return the fault kind to apply now."""
        attempt = self._attempts.get(url, 0) + 1
        self._attempts[url] = attempt
        schedule = self.schedule_for(url, resource_type)
        if schedule is None or attempt > schedule.fail_attempts:
            return None
        self.injected[schedule.kind] = self.injected.get(schedule.kind, 0) + 1
        obs.inc(f"net.faults.{schedule.kind}")
        obs.event("net.fault", sample_key=url, url=url, kind=schedule.kind, attempt=attempt)
        return schedule.kind

    def total_injected(self) -> int:
        return sum(self.injected.values())

    def process_fault(self, host: str) -> Optional[str]:
        """The process-level fault (if any) visiting ``host`` triggers.

        Unlike the transient schedule this is pure config, not seeded draw:
        poison sites are deterministic by domain so a respawned worker that
        re-visits the site dies again — the property the supervisor's
        bisection relies on to isolate the culprit.
        """
        if host in self.config.worker_crash_domains:
            return FaultKind.WORKER_CRASH
        if host in self.config.worker_hang_domains:
            return FaultKind.WORKER_HANG
        return None


class FaultyNetwork:
    """A :class:`Network` wrapper that injects the configured transient faults.

    Only ``fetch`` is intercepted; all other attributes (``dns``,
    ``server_for``, ``alias``, counters, ...) delegate to the wrapped network,
    so a ``FaultyNetwork`` drops into any crawl or study unchanged.
    """

    def __init__(self, inner, config: FaultConfig, seed: int = 0) -> None:
        self.inner = inner
        self.injector = FaultInjector(config, seed=seed)

    def fetch(self, request: Request) -> Response:
        config = self.injector.config
        if request.resource_type == ResourceType.DOCUMENT:
            self._apply_process_fault(request)
        kind = self.injector.next_fault(str(request.url), request.resource_type)
        if kind is None:
            return self.inner.fetch(request)
        if kind == FaultKind.CONNECTION_ERROR:
            return Response(
                url=request.url, status=0, content_type="", body="", error="connection"
            )
        if kind == FaultKind.HTTP_FLAP:
            return Response(
                url=request.url,
                status=config.flap_status,
                content_type="text/plain",
                body="temporarily unavailable",
            )
        response = self.inner.fetch(request)
        if kind == FaultKind.SLOW_RESPONSE:
            response.latency_ms = config.slow_ms
            return response
        # TRUNCATED_SCRIPT: cut the body mid-transfer.  The declared
        # content-length survives, which is how the browser detects it.
        response.headers = dict(response.headers)
        response.headers.setdefault("content-length", str(len(response.body)))
        response.body = response.body[: len(response.body) // 2]
        return response

    def _apply_process_fault(self, request: Request) -> None:
        """Kill or wedge *this process* if the document's host is poisoned.

        ``worker-crash`` exits via ``os._exit`` — no cleanup, no exception
        propagation, exactly like an OOM kill: the checkpoint keeps whatever
        was flushed, the heartbeat file simply stops updating, and the parent
        observes a dead process.  ``worker-hang`` sleeps wall-clock time so
        only a liveness deadline (not an exit code) can surface it.
        """
        host = getattr(request.url, "host", "") or ""
        kind = self.injector.process_fault(host)
        if kind is None:
            return
        config = self.injector.config
        self.injector.injected[kind] = self.injector.injected.get(kind, 0) + 1
        obs.inc(f"net.faults.{kind}")
        obs.event("net.fault", sample_key=host, url=str(request.url), kind=kind)
        if kind == FaultKind.WORKER_CRASH:
            os._exit(config.worker_crash_exit_code)
        time.sleep(config.worker_hang_seconds)

    def __getattr__(self, name):
        # During unpickling __dict__ is not populated yet; delegating would
        # recurse on ``self.inner`` forever.
        if name.startswith("__") or "inner" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.inner, name)
