"""Experiment registry: one runner per table, figure and in-text result."""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]
