"""Registry of reproducible experiments.

Each experiment renders one artifact of the paper (a table, a figure, or a
block of in-text statistics) from a :class:`~repro.core.pipeline.StudyResult`.
``python -m repro.experiments`` runs everything at the requested scale and
prints paper-vs-measured for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.pipeline import StudyResult

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One regenerable artifact of the paper."""

    key: str
    title: str
    section: str
    render: Callable[[StudyResult], str]
    needs_adblock: bool = False


def _prevalence(result: StudyResult) -> str:
    from repro.config import PAPER

    p = result.prevalence
    lines = [
        f"top prevalence:  {p.top.fp_sites}/{p.top.sites_successful} = {p.top.prevalence:.1%}"
        f"   (paper: 2,067/16,276 = {PAPER.top_prevalence:.1%})",
        f"tail prevalence: {p.tail.fp_sites}/{p.tail.sites_successful} = {p.tail.prevalence:.1%}"
        f"   (paper: 1,715/17,260 = {PAPER.tail_prevalence:.1%})",
        f"canvases per FP site: mean {p.top.mean_canvases:.2f} / median {p.top.median_canvases:.0f}"
        f" / max {p.top.max_canvases}   (paper: 3.31 / 2 / 60)",
    ]
    return "\n".join(lines)


def _detection(result: StudyResult) -> str:
    from repro.core.detection import ExclusionReason, FingerprintDetector

    fraction = FingerprintDetector.fingerprintable_fraction(result.outcomes.values())
    by_reason = {r: 0 for r in ExclusionReason}
    fully_excluded = {"top": 0, "tail": 0}
    for domain, outcome in result.outcomes.items():
        for _, reason in outcome.excluded:
            by_reason[reason] += 1
        if outcome.fully_excluded:
            fully_excluded[result.populations.get(domain, "top")] += 1
    lines = [
        f"fingerprintable fraction of extracted canvases: {fraction:.1%} (paper: 83%)",
        "exclusions: "
        + ", ".join(f"{r.value}={n}" for r, n in by_reason.items()),
        f"fully excluded sites: top {fully_excluded['top']}, tail {fully_excluded['tail']}"
        " (paper: 155 / 138)",
    ]
    return "\n".join(lines)


def _figure1(result: StudyResult) -> str:
    from repro.analysis.figures import render_figure1

    return render_figure1(result, n=30)


def _reach(result: StudyResult) -> str:
    from repro.config import PAPER

    r = result.reach
    return "\n".join(
        [
            f"unique canvases: top {r.unique_canvases_top} (paper 504),"
            f" tail {r.unique_canvases_tail} (paper 288)",
            f"top-6 canvas share: top {r.top6_share_top:.1%} (paper 70.1%),"
            f" tail {r.top6_share_tail:.1%} (paper 47.1%)",
            f"tail/top overlap: {r.tail_overlap_fraction:.1%} (paper 91.4%)",
            f"largest tail-only groups: {r.tail_only_group_sizes[:3]} (paper [15, 3, ...])",
            f"max single-canvas reach: {r.max_reach_fraction_top:.1%} of top sites (paper ~3%)",
        ]
    )


def _table1(result: StudyResult) -> str:
    from repro.analysis.tables import table1

    return table1(result)[1]


def _table2(result: StudyResult) -> str:
    from repro.analysis.tables import table2

    if not result.adblock_rows:
        return "(adblock crawls not run)"
    return table2(result.adblock_rows)[1]


def _table3(result: StudyResult) -> str:
    from repro.analysis.tables import table3

    return table3(result.signatures)[1]


def _table4(result: StudyResult) -> str:
    from repro.analysis.tables import table4

    if result.blocklist_context is None:
        return "(blocklists not provided)"
    return table4(result.blocklist_context)[1]


def _figure2(result: StudyResult) -> str:
    from repro.analysis.figures import render_figure2

    return render_figure2(result)


def _evasion(result: StudyResult) -> str:
    sc = result.serving_context
    if sc is None:
        return "(serving context not computed)"
    return "\n".join(
        [
            f"first-party-served FP sites: top {sc.first_party_fraction('top'):.1%} (paper 49%),"
            f" tail {sc.first_party_fraction('tail'):.1%} (paper 52%)",
            f"subdomain-served: top {sc.subdomain_fraction('top'):.1%} (paper 9.5%),"
            f" tail {sc.subdomain_fraction('tail'):.1%} (paper 2.1%)",
            f"CDN-served: top {sc.cdn_fraction('top'):.1%} (paper 2.1%),"
            f" tail {sc.cdn_fraction('tail'):.1%} (paper 1.9%)",
            f"CNAME-cloaked: top {sc.cname_fraction('top'):.1%},"
            f" tail {sc.cname_fraction('tail'):.1%} (paper: observed, unquantified)",
        ]
    )


def _fpjs_ecosystem(result: StudyResult) -> str:
    from repro.core.fpjs import fpjs_breakdown

    fpjs_sig = next((s for s in result.signatures if s.name == "FingerprintJS"), None)
    if fpjs_sig is None or not fpjs_sig.canvas_hashes:
        return "(no FingerprintJS signature harvested)"
    breakdown = fpjs_breakdown(
        result.control.by_domain(), result.outcomes, result.populations, fpjs_sig.canvas_hashes
    )
    paper = {
        "commercial": (23, 10),
        "AIdata": (40, 10),
        "adskeeper": (10, 6),
        "trafficjunky": (7, 1),
        "MGID": (23, 17),
        "acint.net": (18, 29),
    }
    lines = [f"{'flavor':14s} {'top':>10s} {'tail':>10s}   (paper top/tail)"]
    order = ["commercial", "AIdata", "adskeeper", "trafficjunky", "MGID", "acint.net", "oss"]
    for flavor in order:
        row = breakdown.get(flavor)
        expected = paper.get(flavor)
        note = f"({expected[0]} / {expected[1]})" if expected else "(rest: OSS self-hosted/bundled)"
        lines.append(f"{flavor:14s} {row['top']:>10d} {row['tail']:>10d}   {note}")
    return "\n".join(lines)


def _randomization(result: StudyResult) -> str:
    return (
        f"FP sites performing the render-twice inconsistency check: "
        f"{result.render_twice:.1%} (paper: 45%)"
    )


def _pipeline(result: StudyResult) -> str:
    from repro.analysis.report import stage_timing_table

    table = stage_timing_table(result)
    if not table:
        return "(no stage timings recorded on this result)"
    return table


def _cross_machine(result: StudyResult) -> str:
    if result.cross_machine_consistent is None:
        return "(cross-machine validation not run)"
    status = "IDENTICAL" if result.cross_machine_consistent else "DIFFERENT"
    return (
        "canvas-equality site groupings across Intel/Ubuntu and Apple M1 crawls: "
        f"{status} (paper: identical groupings, different pixel values)"
    )


EXPERIMENTS: Dict[str, Experiment] = {
    e.key: e
    for e in (
        Experiment("prevalence", "Prevalence of canvas fingerprinting", "§4.1", _prevalence),
        Experiment("detection", "Detection heuristic yield", "§3.2", _detection),
        Experiment("figure1", "Figure 1: canvas popularity distribution", "§4.2", _figure1),
        Experiment("reach", "Reach and top/tail overlap", "§4.2", _reach),
        Experiment("table1", "Table 1: sites linked to each vendor", "§4.3", _table1),
        Experiment("fpjs_ecosystem", "FingerprintJS deployment flavors", "§4.3.1", _fpjs_ecosystem),
        Experiment("table2", "Table 2: ad blocker impact", "§5.2", _table2, needs_adblock=True),
        Experiment("table3", "Table 3: attribution methods", "A.3", _table3),
        Experiment("table4", "Table 4: blocklist coverage", "§5.1/A.4", _table4),
        Experiment("figure2", "Figure 2: excluded small canvases", "A.2", _figure2),
        Experiment("evasion", "Serving-mode evasions", "§5.2", _evasion),
        Experiment("randomization", "Canvas randomization detection", "§5.3", _randomization),
        Experiment("cross_machine", "Cross-machine validation", "§3.1", _cross_machine),
        Experiment("pipeline", "Pipeline stage timings", "infra", _pipeline),
    )
}


def get_experiment(key: str) -> Experiment:
    try:
        return EXPERIMENTS[key]
    except KeyError:
        raise KeyError(f"unknown experiment {key!r}; known: {sorted(EXPERIMENTS)}") from None


def run_experiment(key: str, result: StudyResult) -> str:
    """Render one experiment's artifact from a study result."""
    experiment = get_experiment(key)
    header = f"=== {experiment.title} ({experiment.section}) ==="
    return header + "\n" + experiment.render(result)
