"""Run every experiment and print the regenerated artifacts.

Usage::

    python -m repro.experiments                 # reduced scale (fast)
    python -m repro.experiments --scale 1.0     # the paper's full 20k+20k
    python -m repro.experiments --only table1 figure1
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import StudyScale
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.webgen import build_world


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05, help="fraction of 20k+20k sites")
    parser.add_argument("--seed", type=int, default=20250504)
    parser.add_argument("--only", nargs="*", default=None, help="experiment keys to run")
    parser.add_argument("--no-adblock", action="store_true", help="skip the two ad-blocker crawls")
    parser.add_argument("--artifacts", default=None, help="directory to also write artifacts into")
    parser.add_argument(
        "--jobs", type=int, default=1, help="crawl worker processes (sharded crawls)"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="stage cache directory: re-runs skip every unchanged pipeline stage",
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        help="write run observability artifacts (manifest.json + trace.jsonl + "
        "runs.jsonl history ledger) here; inspect with python -m repro.obs "
        "summary/history/diff/regress <dir>",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the wall-clock sampling profiler for this study (same as "
        "REPRO_OBS_PROFILE=1); the rollup lands in the report, trace summary "
        "and run ledger",
    )
    args = parser.parse_args(argv)

    if args.profile:
        from dataclasses import replace

        from repro import obs

        obs.configure(replace(obs.config(), profile=True))

    keys = args.only or list(EXPERIMENTS)
    needs_cross_machine = "cross_machine" in keys

    t0 = time.time()
    print(f"building world (scale={args.scale}) ...", flush=True)
    world = build_world(StudyScale(fraction=args.scale, seed=args.seed))
    print(f"world ready in {time.time() - t0:.1f}s; running study ...", flush=True)

    t0 = time.time()
    result = world.run_full_study(
        include_adblock_crawls=not args.no_adblock,
        include_cross_machine=needs_cross_machine,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        obs_dir=args.obs_dir,
    )
    cached = sum(1 for t in result.stage_timings if t.cached)
    print(
        f"study finished in {time.time() - t0:.1f}s "
        f"({cached}/{len(result.stage_timings)} stages from cache)\n",
        flush=True,
    )
    if result.profile.get("samples"):
        from repro.obs.inspect import profile_text

        print("\n".join(profile_text(result.profile)))
        print()
    if args.obs_dir:
        print(
            f"run appended to {args.obs_dir}/runs.jsonl — compare with "
            f"`python -m repro.obs history {args.obs_dir}`\n",
            flush=True,
        )

    artifacts_dir = None
    if args.artifacts:
        from pathlib import Path

        artifacts_dir = Path(args.artifacts)
        artifacts_dir.mkdir(parents=True, exist_ok=True)

    for key in keys:
        text = run_experiment(key, result)
        print(text)
        print()
        if artifacts_dir is not None:
            (artifacts_dir / f"{key}.txt").write_text(text + "\n", encoding="utf-8")

    from repro.analysis.report import study_comparisons

    comparison_lines = [c.line for c in study_comparisons(result)]
    print("=== Paper vs measured (all headline numbers) ===")
    for line in comparison_lines:
        print(line)
    if artifacts_dir is not None:
        (artifacts_dir / "paper_vs_measured.txt").write_text(
            "\n".join(comparison_lines) + "\n", encoding="utf-8"
        )
        # Figure 1 series as CSV for external plotting.
        from repro.analysis.figures import figure1_data

        rows = ["rank,top_sites,tail_sites"] + [
            f"{d['rank']},{d['top_sites']},{d['tail_sites']}" for d in figure1_data(result)
        ]
        (artifacts_dir / "figure1.csv").write_text("\n".join(rows) + "\n", encoding="utf-8")
        # And as a PNG, drawn by this repository's own canvas implementation.
        from repro.analysis.figures import figure1_png

        figure1_png(result, path=str(artifacts_dir / "figure1.png"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
