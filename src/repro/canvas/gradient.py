"""Canvas gradients (linear and radial)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.canvas.color import parse_color

__all__ = ["CanvasGradient"]


class CanvasGradient:
    """A linear or radial gradient paint source.

    Created via ``ctx.createLinearGradient`` / ``ctx.createRadialGradient``;
    sampled lazily over a pixel region when used as a fill style.
    """

    def __init__(self, kind: str, geometry: Tuple[float, ...]) -> None:
        if kind not in ("linear", "radial"):
            raise ValueError(f"unknown gradient kind {kind!r}")
        self.kind = kind
        self.geometry = geometry
        self._stops: List[Tuple[float, Tuple[float, float, float, float]]] = []

    def add_color_stop(self, offset: float, color: str) -> None:
        """Add a color stop (offset must be in [0, 1])."""
        if not 0.0 <= offset <= 1.0:
            raise ValueError(f"color stop offset out of range: {offset}")
        self._stops.append((float(offset), parse_color(color)))
        self._stops.sort(key=lambda s: s[0])

    def snapshot(self) -> "CanvasGradient":
        """Copy frozen at the current stop list.

        Gradients are mutable (``addColorStop`` after a draw must not change
        the already-issued draw), so deferred paint ops capture a snapshot.
        """
        out = CanvasGradient(self.kind, self.geometry)
        out._stops = list(self._stops)
        return out

    @property
    def state_key(self) -> Tuple:
        """Hashable identity of the gradient's current paint behavior."""
        return (self.kind, self.geometry, tuple(self._stops))

    def sample(self, x0: int, y0: int, width: int, height: int) -> np.ndarray:
        """Sample the gradient over a pixel box, returning an RGBA array."""
        if not self._stops:
            return np.zeros((height, width, 4), dtype=np.float64)

        ys, xs = np.mgrid[y0 : y0 + height, x0 : x0 + width]
        xs = xs + 0.5
        ys = ys + 0.5

        if self.kind == "linear":
            gx0, gy0, gx1, gy1 = self.geometry
            dx, dy = gx1 - gx0, gy1 - gy0
            denom = dx * dx + dy * dy
            if denom < 1e-12:
                t = np.zeros((height, width))
            else:
                t = ((xs - gx0) * dx + (ys - gy0) * dy) / denom
        else:
            cx0, cy0, r0, cx1, cy1, r1 = self.geometry
            dist = np.hypot(xs - cx1, ys - cy1)
            span = max(r1 - r0, 1e-9)
            t = (dist - r0) / span

        t = np.clip(t, 0.0, 1.0)
        return self._interpolate(t)

    def _interpolate(self, t: np.ndarray) -> np.ndarray:
        offsets = np.array([s[0] for s in self._stops])
        colors = np.array([s[1] for s in self._stops])  # (S, 4)
        out = np.empty(t.shape + (4,), dtype=np.float64)
        for ch in range(4):
            out[..., ch] = np.interp(t, offsets, colors[:, ch])
        return out
