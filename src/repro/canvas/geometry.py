"""2D affine transforms and small geometry helpers for the rasterizer."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = ["Transform"]


@dataclass(frozen=True)
class Transform:
    """Affine transform matrix, canvas convention::

        | a c e |
        | b d f |
        | 0 0 1 |
    """

    a: float = 1.0
    b: float = 0.0
    c: float = 0.0
    d: float = 1.0
    e: float = 0.0
    f: float = 0.0

    @classmethod
    def identity(cls) -> "Transform":
        return cls()

    def multiply(self, o: "Transform") -> "Transform":
        """Return self ∘ o (apply ``o`` first, then self)."""
        return Transform(
            a=self.a * o.a + self.c * o.b,
            b=self.b * o.a + self.d * o.b,
            c=self.a * o.c + self.c * o.d,
            d=self.b * o.c + self.d * o.d,
            e=self.a * o.e + self.c * o.f + self.e,
            f=self.b * o.e + self.d * o.f + self.f,
        )

    def translate(self, tx: float, ty: float) -> "Transform":
        return self.multiply(Transform(e=tx, f=ty))

    def scale(self, sx: float, sy: float) -> "Transform":
        return self.multiply(Transform(a=sx, d=sy))

    def rotate(self, angle: float) -> "Transform":
        cos, sin = math.cos(angle), math.sin(angle)
        return self.multiply(Transform(a=cos, b=sin, c=-sin, d=cos))

    def apply(self, x: float, y: float) -> Tuple[float, float]:
        return (self.a * x + self.c * y + self.e, self.b * x + self.d * y + self.f)

    @property
    def is_identity(self) -> bool:
        return self == Transform()

    @property
    def scale_magnitude(self) -> float:
        """Approximate uniform scale factor (used for curve flattening)."""
        sx = math.hypot(self.a, self.b)
        sy = math.hypot(self.c, self.d)
        return max(sx, sy, 1e-9)
