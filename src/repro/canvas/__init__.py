"""Software implementation of the HTML Canvas 2D API.

A numpy-backed rasterizer exposing ``HTMLCanvasElement`` and
``CanvasRenderingContext2D`` with the surface fingerprinting scripts rely on:
rect/path/text drawing, gradients, compositing modes, transforms,
``getImageData`` and ``toDataURL`` (real PNG, plus lossy JPEG/WebP-like
encoders).

Rendering is deterministic given a :class:`~repro.canvas.device.DeviceProfile`
and *device-dependent* in the anti-aliased edges of text and curves — exactly
the property canvas fingerprinting exploits: the same script yields identical
bytes on one machine and different bytes across machines.
"""

from repro.canvas.color import parse_color
from repro.canvas.context2d import CanvasRenderingContext2D
from repro.canvas.device import APPLE_M1, DEVICE_PROFILES, INTEL_UBUNTU, DeviceProfile
from repro.canvas.element import HTMLCanvasElement
from repro.canvas.encode import data_url, png_decode, png_encode

__all__ = [
    "HTMLCanvasElement",
    "CanvasRenderingContext2D",
    "DeviceProfile",
    "INTEL_UBUNTU",
    "APPLE_M1",
    "DEVICE_PROFILES",
    "parse_color",
    "png_encode",
    "png_decode",
    "data_url",
]
