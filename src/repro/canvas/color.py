"""CSS color parsing for canvas fill/stroke styles.

Supports ``#rgb``, ``#rgba``, ``#rrggbb``, ``#rrggbbaa``, ``rgb()``,
``rgba()``, ``hsl()``, ``hsla()`` and the named colors that appear in
real-world fingerprinting scripts.  Returns ``(r, g, b, a)`` with channels in
0..255 (floats, so alpha keeps precision).
"""

from __future__ import annotations

import re
from typing import Tuple

__all__ = ["parse_color", "ColorError", "NAMED_COLORS"]

RGBA = Tuple[float, float, float, float]


class ColorError(ValueError):
    """Raised for unparseable color strings."""


NAMED_COLORS = {
    "black": (0, 0, 0),
    "white": (255, 255, 255),
    "red": (255, 0, 0),
    "green": (0, 128, 0),
    "lime": (0, 255, 0),
    "blue": (0, 0, 255),
    "yellow": (255, 255, 0),
    "cyan": (0, 255, 255),
    "aqua": (0, 255, 255),
    "magenta": (255, 0, 255),
    "fuchsia": (255, 0, 255),
    "orange": (255, 165, 0),
    "purple": (128, 0, 128),
    "pink": (255, 192, 203),
    "brown": (165, 42, 42),
    "gray": (128, 128, 128),
    "grey": (128, 128, 128),
    "silver": (192, 192, 192),
    "navy": (0, 0, 128),
    "teal": (0, 128, 128),
    "olive": (128, 128, 0),
    "maroon": (128, 0, 0),
    "gold": (255, 215, 0),
    "coral": (255, 127, 80),
    "tomato": (255, 99, 71),
    "crimson": (220, 20, 60),
    "indigo": (75, 0, 130),
    "violet": (238, 130, 238),
    "khaki": (240, 230, 140),
    "salmon": (250, 128, 114),
    "turquoise": (64, 224, 208),
    "orchid": (218, 112, 214),
    "transparent": (0, 0, 0),
}

_RGB_RE = re.compile(r"rgba?\(\s*([^)]*)\)")
_HSL_RE = re.compile(r"hsla?\(\s*([^)]*)\)")


def parse_color(text: str) -> RGBA:
    """Parse a CSS color string into an ``(r, g, b, a)`` tuple (0..255)."""
    if not isinstance(text, str):
        raise ColorError(f"color must be a string, got {type(text).__name__}")
    s = text.strip().lower()
    if not s:
        raise ColorError("empty color string")

    if s.startswith("#"):
        return _parse_hex(s)

    m = _RGB_RE.fullmatch(s)
    if m:
        return _parse_rgb_args(m.group(1))

    m = _HSL_RE.fullmatch(s)
    if m:
        return _parse_hsl_args(m.group(1))

    if s in NAMED_COLORS:
        r, g, b = NAMED_COLORS[s]
        a = 0.0 if s == "transparent" else 255.0
        return (float(r), float(g), float(b), a)

    raise ColorError(f"unrecognized color: {text!r}")


def _parse_hex(s: str) -> RGBA:
    digits = s[1:]
    if not re.fullmatch(r"[0-9a-f]+", digits):
        raise ColorError(f"bad hex color: {s!r}")
    if len(digits) == 3:
        r, g, b = (int(c * 2, 16) for c in digits)
        return (float(r), float(g), float(b), 255.0)
    if len(digits) == 4:
        r, g, b, a = (int(c * 2, 16) for c in digits)
        return (float(r), float(g), float(b), float(a))
    if len(digits) == 6:
        return (
            float(int(digits[0:2], 16)),
            float(int(digits[2:4], 16)),
            float(int(digits[4:6], 16)),
            255.0,
        )
    if len(digits) == 8:
        return (
            float(int(digits[0:2], 16)),
            float(int(digits[2:4], 16)),
            float(int(digits[4:6], 16)),
            float(int(digits[6:8], 16)),
        )
    raise ColorError(f"bad hex color length: {s!r}")


def _parse_rgb_args(args: str) -> RGBA:
    parts = [p.strip() for p in re.split(r"[,\s/]+", args.strip()) if p.strip()]
    if len(parts) not in (3, 4):
        raise ColorError(f"rgb() needs 3 or 4 components, got {len(parts)}")
    channels = []
    for p in parts[:3]:
        if p.endswith("%"):
            channels.append(_clamp(float(p[:-1]) * 255.0 / 100.0, 0, 255))
        else:
            channels.append(_clamp(float(p), 0, 255))
    alpha = 255.0
    if len(parts) == 4:
        alpha = _parse_alpha(parts[3])
    return (channels[0], channels[1], channels[2], alpha)


def _parse_hsl_args(args: str) -> RGBA:
    parts = [p.strip() for p in re.split(r"[,\s/]+", args.strip()) if p.strip()]
    if len(parts) not in (3, 4):
        raise ColorError(f"hsl() needs 3 or 4 components, got {len(parts)}")
    h = float(parts[0].replace("deg", "")) % 360.0
    s = _clamp(float(parts[1].rstrip("%")), 0, 100) / 100.0
    lightness = _clamp(float(parts[2].rstrip("%")), 0, 100) / 100.0
    alpha = _parse_alpha(parts[3]) if len(parts) == 4 else 255.0

    c = (1 - abs(2 * lightness - 1)) * s
    x = c * (1 - abs((h / 60.0) % 2 - 1))
    m = lightness - c / 2
    sector = int(h // 60) % 6
    r1, g1, b1 = [
        (c, x, 0.0),
        (x, c, 0.0),
        (0.0, c, x),
        (0.0, x, c),
        (x, 0.0, c),
        (c, 0.0, x),
    ][sector]
    return (
        round((r1 + m) * 255.0, 4),
        round((g1 + m) * 255.0, 4),
        round((b1 + m) * 255.0, 4),
        alpha,
    )


def _parse_alpha(p: str) -> float:
    if p.endswith("%"):
        return _clamp(float(p[:-1]) / 100.0, 0, 1) * 255.0
    return _clamp(float(p), 0, 1) * 255.0


def _clamp(x: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, x))
