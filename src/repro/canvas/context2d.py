"""CanvasRenderingContext2D: the drawing API fingerprinting scripts target."""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro import obs, perf
from repro.canvas.color import ColorError, parse_color
from repro.canvas.device import DeviceProfile
from repro.canvas.font import TextRasterizer, parse_font
from repro.canvas.geometry import Transform
from repro.canvas.gradient import CanvasGradient
from repro.canvas.path import (
    Path,
    flatten_arc,
    flatten_cubic,
    flatten_quadratic,
    rasterize_fill,
    rasterize_stroke,
)
from repro.canvas.surface import Surface

__all__ = ["CanvasRenderingContext2D", "ImageData", "TextMetrics"]

FillStyle = Union[str, CanvasGradient]


@dataclass
class ImageData:
    """Result of ``getImageData``: raw RGBA pixels."""

    width: int
    height: int
    #: ``(H, W, 4)`` uint8 array.
    pixels: np.ndarray

    @property
    def data_length(self) -> int:
        return self.width * self.height * 4


@dataclass
class TextMetrics:
    """Result of ``measureText`` (the fields fingerprinting scripts read)."""

    width: float
    actual_bounding_box_left: float = 0.0
    actual_bounding_box_right: float = 0.0
    actual_bounding_box_ascent: float = 0.0
    actual_bounding_box_descent: float = 0.0


@dataclass
class _DrawState:
    fill_style: FillStyle = "#000000"
    stroke_style: FillStyle = "#000000"
    line_width: float = 1.0
    font: str = "10px sans-serif"
    text_baseline: str = "alphabetic"
    text_align: str = "start"
    global_alpha: float = 1.0
    composite_op: str = "source-over"
    transform: Transform = field(default_factory=Transform)
    shadow_blur: float = 0.0
    shadow_color: str = "rgba(0, 0, 0, 0)"
    shadow_offset_x: float = 0.0
    shadow_offset_y: float = 0.0
    #: Full-surface clip mask in [0, 1], or None when unclipped.
    clip_mask: Optional[np.ndarray] = None
    #: Content digest of ``clip_mask`` (render-cache key component).
    clip_digest: Optional[bytes] = None


#: Layer 1 of the render-acceleration subsystem: whole-canvas pixel
#: snapshots keyed by (device, size, baseline, canonical draw-op log).
#: Fingerprinting vendors serve the *same* script to thousands of sites, so
#: the op log — and therefore the rendered pixels — repeat endlessly within
#: one crawl process; the first canvas pays for rasterization, the rest
#: restore the snapshot (see docs/performance.md).
_RENDER_CACHE = perf.ByteBudgetLRU("render_cache", budget_attr="render_cache_bytes")


class CanvasRenderingContext2D:
    """Software 2D rendering context bound to one canvas element.

    Paint operations are *deferred*: each call captures its full inputs
    (geometry, style, state snapshot) plus a canonical key, and the surface
    is only materialized when pixels are read back (``toDataURL`` /
    ``getImageData`` / being drawn onto another canvas).  At that point the
    whole op log is looked up in the process-wide render cache — a hit
    restores the cached pixel snapshot and skips rasterization entirely.
    State mutations (styles, transforms, path building, clipping) stay
    eager: they are cheap and must be visible to reads like ``measureText``
    and ``isPointInPath``.
    """

    def __init__(self, canvas, device: DeviceProfile) -> None:
        self.canvas = canvas
        self.device = device
        self._state = _DrawState()
        self._stack: List[_DrawState] = []
        self._path = Path()
        self._text = TextRasterizer(device)
        self._noise_tag = 0
        #: Deferred paint ops: (canonical key, zero-arg replay closure).
        self._pending: List[Tuple[Tuple, Callable[[], None]]] = []
        #: Token describing the surface content beneath the pending ops:
        #: "blank" for a fresh canvas, else the previous flush's key digest.
        self._baseline: object = "blank"
        #: True once a paint bypassed the op log (caching disabled at the
        #: time): the surface content can no longer be trusted to match any
        #: key, so flushes replay without touching the cache.
        self._tainted = False

    # -- surface plumbing ------------------------------------------------------------

    @property
    def _surface(self) -> Surface:
        return self.canvas.surface

    def _next_tag(self) -> int:
        # Monotonic per-operation tag: keeps the device perturbation of two
        # identical shapes drawn at the same spot identical (tag is derived
        # from geometry by callers that need that) while distinguishing ops.
        self._noise_tag += 1
        return self._noise_tag

    # -- deferred rendering ------------------------------------------------------------

    def _defer(self, key: Tuple, apply_fn: Callable[[], None]) -> None:
        """Queue a paint op for replay at flush time (eager when disabled)."""
        if perf.config().enabled:
            self._pending.append((key, apply_fn))
            return
        # Caching was disabled (possibly mid-canvas): anything still queued
        # must paint before this op to preserve draw order.
        self._tainted = True
        pending, self._pending = self._pending, []
        for _, queued in pending:
            queued()
        apply_fn()

    def flush(self) -> None:
        """Materialize pending paint ops into the surface.

        Hit: the identical (device, size, baseline, op-log) sequence was
        rendered before — restore its pixel snapshot.  Miss: replay the
        closures in order and store the result.  Either way the op log is
        consumed and the baseline advances to this flush's key, so chained
        draw/read/draw sequences keep hitting.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        if self._tainted or not perf.config().enabled:
            for _, apply_fn in pending:
                apply_fn()
            self._tainted = True
            return
        key = (
            self.device,
            self._surface.width,
            self._surface.height,
            self._baseline,
            tuple(op_key for op_key, _ in pending),
        )
        cached = _RENDER_CACHE.get(key)
        if cached is not None:
            self._surface.set_pixels(cached)
        else:
            started = time.perf_counter()
            for _, apply_fn in pending:
                apply_fn()
            snapshot = self._surface.snapshot()
            _RENDER_CACHE.put(
                key, snapshot, snapshot.nbytes, seconds=time.perf_counter() - started
            )
        if obs.TRACE.enabled:
            # Guarded: flush runs per drawn canvas, so even building the
            # attrs dict is too costly for the tracing-off hot path.
            obs.event("render.flush", ops=len(pending), hit=cached is not None)
        # Chain the baseline as a digest: keys stay flat however many
        # flushes a canvas goes through.
        self._baseline = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=16).digest()

    def _capture_state(self) -> Tuple[_DrawState, Tuple]:
        """Snapshot the draw state for a deferred op, plus its key part."""
        state = replace(self._state)
        key = (
            state.global_alpha,
            state.composite_op,
            state.shadow_blur,
            state.shadow_color,
            state.shadow_offset_x,
            state.shadow_offset_y,
            state.clip_digest,
        )
        return state, key

    def _capture_style(self, style: FillStyle) -> Tuple[FillStyle, Tuple]:
        """Freeze a fill/stroke style for deferred use, plus its key part."""
        if isinstance(style, CanvasGradient):
            return style.snapshot(), ("gradient",) + style.state_key
        return style, ("color", style)

    # -- state attributes --------------------------------------------------------------

    @property
    def fillStyle(self) -> FillStyle:
        return self._state.fill_style

    @fillStyle.setter
    def fillStyle(self, value: FillStyle) -> None:
        if isinstance(value, CanvasGradient):
            self._state.fill_style = value
            return
        try:
            parse_color(value)
        except (ColorError, TypeError):
            return  # invalid assignments are ignored, like real browsers
        self._state.fill_style = value

    @property
    def strokeStyle(self) -> FillStyle:
        return self._state.stroke_style

    @strokeStyle.setter
    def strokeStyle(self, value: FillStyle) -> None:
        if isinstance(value, CanvasGradient):
            self._state.stroke_style = value
            return
        try:
            parse_color(value)
        except (ColorError, TypeError):
            return
        self._state.stroke_style = value

    @property
    def lineWidth(self) -> float:
        return self._state.line_width

    @lineWidth.setter
    def lineWidth(self, value: float) -> None:
        if isinstance(value, (int, float)) and value > 0 and math.isfinite(value):
            self._state.line_width = float(value)

    @property
    def font(self) -> str:
        return self._state.font

    @font.setter
    def font(self, value: str) -> None:
        if isinstance(value, str) and value.strip():
            self._state.font = value

    @property
    def textBaseline(self) -> str:
        return self._state.text_baseline

    @textBaseline.setter
    def textBaseline(self, value: str) -> None:
        if value in ("top", "hanging", "middle", "alphabetic", "ideographic", "bottom"):
            self._state.text_baseline = value

    @property
    def textAlign(self) -> str:
        return self._state.text_align

    @textAlign.setter
    def textAlign(self, value: str) -> None:
        if value in ("start", "end", "left", "right", "center"):
            self._state.text_align = value

    @property
    def globalAlpha(self) -> float:
        return self._state.global_alpha

    @globalAlpha.setter
    def globalAlpha(self, value: float) -> None:
        if isinstance(value, (int, float)) and 0.0 <= value <= 1.0:
            self._state.global_alpha = float(value)

    @property
    def globalCompositeOperation(self) -> str:
        return self._state.composite_op

    @globalCompositeOperation.setter
    def globalCompositeOperation(self, value: str) -> None:
        if isinstance(value, str):
            self._state.composite_op = value

    @property
    def shadowBlur(self) -> float:
        return self._state.shadow_blur

    @shadowBlur.setter
    def shadowBlur(self, value: float) -> None:
        if isinstance(value, (int, float)) and value >= 0:
            self._state.shadow_blur = float(value)

    @property
    def shadowColor(self) -> str:
        return self._state.shadow_color

    @shadowColor.setter
    def shadowColor(self, value: str) -> None:
        if isinstance(value, str):
            self._state.shadow_color = value

    @property
    def shadowOffsetX(self) -> float:
        return self._state.shadow_offset_x

    @shadowOffsetX.setter
    def shadowOffsetX(self, value: float) -> None:
        if isinstance(value, (int, float)) and math.isfinite(value):
            self._state.shadow_offset_x = float(value)

    @property
    def shadowOffsetY(self) -> float:
        return self._state.shadow_offset_y

    @shadowOffsetY.setter
    def shadowOffsetY(self, value: float) -> None:
        if isinstance(value, (int, float)) and math.isfinite(value):
            self._state.shadow_offset_y = float(value)

    # -- state stack --------------------------------------------------------------------

    def save(self) -> None:
        self._stack.append(replace(self._state))

    def restore(self) -> None:
        if self._stack:
            self._state = self._stack.pop()

    # -- transforms ----------------------------------------------------------------------

    def translate(self, x: float, y: float) -> None:
        self._state.transform = self._state.transform.translate(x, y)

    def scale(self, sx: float, sy: float) -> None:
        self._state.transform = self._state.transform.scale(sx, sy)

    def rotate(self, angle: float) -> None:
        self._state.transform = self._state.transform.rotate(angle)

    def transform(self, a: float, b: float, c: float, d: float, e: float, f: float) -> None:
        self._state.transform = self._state.transform.multiply(Transform(a, b, c, d, e, f))

    def setTransform(self, a: float, b: float, c: float, d: float, e: float, f: float) -> None:
        self._state.transform = Transform(a, b, c, d, e, f)

    def resetTransform(self) -> None:
        self._state.transform = Transform()

    # -- rectangles ----------------------------------------------------------------------

    def fillRect(self, x: float, y: float, w: float, h: float) -> None:
        self._queue_fill(self._rect_path(x, y, w, h), "nonzero")

    def strokeRect(self, x: float, y: float, w: float, h: float) -> None:
        self._queue_stroke(self._rect_path(x, y, w, h))

    def clearRect(self, x: float, y: float, w: float, h: float) -> None:
        if w <= 0 or h <= 0:
            return
        t = self._state.transform
        if t.b == 0 and t.c == 0:
            (x0, y0) = t.apply(x, y)
            (x1, y1) = t.apply(x + w, y + h)
            ix0 = int(math.floor(min(x0, x1)))
            iy0 = int(math.floor(min(y0, y1)))
            ix1 = int(math.ceil(max(x0, x1)))
            iy1 = int(math.ceil(max(y0, y1)))
            self._defer(
                ("clear-rect", ix0, iy0, ix1, iy1),
                lambda: self._surface.clear_rect(ix0, iy0, ix1, iy1),
            )
            return
        # Rotated clears: paint transparent with destination-out coverage.
        path = self._rect_path(x, y, w, h)
        self._defer(
            ("clear-path", path.canonical_digest()),
            lambda: self._clear_path(path),
        )

    def _clear_path(self, path: Path) -> None:
        coverage, offset = rasterize_fill(path, self._surface.width, self._surface.height)
        if coverage.size:
            self._surface.paint(coverage, (0.0, 0.0, 0.0, 255.0), op="destination-out", offset=offset)

    def _rect_path(self, x: float, y: float, w: float, h: float) -> Path:
        t = self._state.transform
        path = Path()
        path.add_polyline(
            [t.apply(x, y), t.apply(x + w, y), t.apply(x + w, y + h), t.apply(x, y + h)],
            closed=True,
        )
        return path

    # -- path building ---------------------------------------------------------------------

    def beginPath(self) -> None:
        self._path = Path()

    def closePath(self) -> None:
        self._path.close()

    def moveTo(self, x: float, y: float) -> None:
        self._path.move_to(*self._state.transform.apply(x, y))

    def lineTo(self, x: float, y: float) -> None:
        self._path.line_to(*self._state.transform.apply(x, y))

    def rect(self, x: float, y: float, w: float, h: float) -> None:
        t = self._state.transform
        self._path.add_polyline(
            [t.apply(x, y), t.apply(x + w, y), t.apply(x + w, y + h), t.apply(x, y + h)],
            closed=True,
        )

    def arc(
        self,
        cx: float,
        cy: float,
        radius: float,
        start: float,
        end: float,
        anticlockwise: bool = False,
    ) -> None:
        if radius < 0:
            raise ValueError("IndexSizeError: negative arc radius")
        points = flatten_arc(cx, cy, radius, start, end, bool(anticlockwise), self._state.transform)
        if not points:
            return
        if self._path.current_point is not None:
            self._path.line_to(*points[0])
            for p in points[1:]:
                self._path.line_to(*p)
        else:
            self._path.move_to(*points[0])
            for p in points[1:]:
                self._path.line_to(*p)

    def ellipse(
        self,
        cx: float,
        cy: float,
        rx: float,
        ry: float,
        rotation: float,
        start: float,
        end: float,
        anticlockwise: bool = False,
    ) -> None:
        if rx < 0 or ry < 0:
            raise ValueError("IndexSizeError: negative ellipse radius")
        t = self._state.transform.translate(cx, cy).rotate(rotation).translate(-cx, -cy)
        points = flatten_arc(cx, cy, 1.0, start, end, bool(anticlockwise), t, rx_scale=rx, ry_scale=ry)
        if not points:
            return
        if self._path.current_point is not None:
            for p in points:
                self._path.line_to(*p)
        else:
            self._path.move_to(*points[0])
            for p in points[1:]:
                self._path.line_to(*p)

    def quadraticCurveTo(self, cpx: float, cpy: float, x: float, y: float) -> None:
        start = self._inverse_current_point()
        for p in flatten_quadratic(start, (cpx, cpy), (x, y), self._state.transform):
            self._path.line_to(*p)

    def bezierCurveTo(self, c1x: float, c1y: float, c2x: float, c2y: float, x: float, y: float) -> None:
        start = self._inverse_current_point()
        for p in flatten_cubic(start, (c1x, c1y), (c2x, c2y), (x, y), self._state.transform):
            self._path.line_to(*p)

    def arcTo(self, x1: float, y1: float, x2: float, y2: float, radius: float) -> None:
        # Approximation: corner rounded by a quadratic through the control point.
        self.quadraticCurveTo(x1, y1, x2, y2)
        del radius

    def _inverse_current_point(self) -> Tuple[float, float]:
        """Current point mapped back to user space (approximate: assumes the
        CTM hasn't changed since the point was added, the common case)."""
        cp = self._path.current_point
        if cp is None:
            return (0.0, 0.0)
        t = self._state.transform
        det = t.a * t.d - t.b * t.c
        if abs(det) < 1e-12:
            return cp
        x, y = cp[0] - t.e, cp[1] - t.f
        return ((t.d * x - t.c * y) / det, (-t.b * x + t.a * y) / det)

    # -- painting -------------------------------------------------------------------------

    def fill(self, rule: str = "nonzero") -> None:
        if rule not in ("nonzero", "evenodd"):
            rule = "nonzero"
        # Copy: the live path may keep growing after this draw.
        self._queue_fill(self._path.copy(), rule)

    def stroke(self) -> None:
        self._queue_stroke(self._path.copy())

    def _queue_fill(self, path: Path, rule: str) -> None:
        if path.is_empty():
            return
        style, style_key = self._capture_style(self._state.fill_style)
        state, state_key = self._capture_state()
        key = ("fill", path.canonical_digest(), rule, style_key, state_key)
        self._defer(key, lambda: self._fill_path(path, rule, style, state))

    def _queue_stroke(self, path: Path) -> None:
        if path.is_empty():
            return
        style, style_key = self._capture_style(self._state.stroke_style)
        state, state_key = self._capture_state()
        line_width = state.line_width * state.transform.scale_magnitude
        key = ("stroke", path.canonical_digest(), line_width, style_key, state_key)
        self._defer(key, lambda: self._stroke_path(path, line_width, style, state))

    def _fill_path(self, path: Path, rule: str, style: FillStyle, state: _DrawState) -> None:
        coverage, offset = rasterize_fill(
            path,
            self._surface.width,
            self._surface.height,
            rule=rule,
            device=self.device,
            noise_tag=self._geometry_tag(path),
        )
        if coverage.size == 0:
            return
        self._paint_coverage(coverage, offset, style, state)

    def _stroke_path(self, path: Path, line_width: float, style: FillStyle, state: _DrawState) -> None:
        coverage, offset = rasterize_stroke(
            path,
            self._surface.width,
            self._surface.height,
            line_width=line_width,
            device=self.device,
            noise_tag=self._geometry_tag(path) ^ 0x5A5A,
        )
        if coverage.size == 0:
            return
        self._paint_coverage(coverage, offset, style, state)

    def _geometry_tag(self, path: Path) -> int:
        """Deterministic tag derived from geometry: identical shapes get
        identical device noise regardless of draw order."""
        h = 0
        for pts in path.subpaths:
            for x, y in pts[:8]:
                h = (h * 31 + int(x * 16) * 7 + int(y * 16)) & 0x7FFFFFFF
        return h or 1

    def clip(self, rule: str = "nonzero") -> None:
        """Intersect the clip region with the current path."""
        if rule not in ("nonzero", "evenodd"):
            rule = "nonzero"
        mask = np.zeros((self._surface.height, self._surface.width), dtype=np.float64)
        coverage, (ox, oy) = rasterize_fill(
            self._path, self._surface.width, self._surface.height, rule=rule
        )
        if coverage.size:
            mask[oy : oy + coverage.shape[0], ox : ox + coverage.shape[1]] = coverage
        if self._state.clip_mask is None:
            self._state.clip_mask = mask
        else:
            self._state.clip_mask = self._state.clip_mask * mask
        self._state.clip_digest = hashlib.blake2b(
            self._state.clip_mask.tobytes(), digest_size=16
        ).digest()

    def _paint_coverage(
        self,
        coverage: np.ndarray,
        offset: Tuple[int, int],
        style: FillStyle,
        state: _DrawState,
    ) -> None:
        alpha = state.global_alpha
        if alpha <= 0.0:
            return
        if state.clip_mask is not None:
            # Align the coverage mask (at surface offset) with the clip mask.
            x0, y0 = offset
            h, w = coverage.shape
            sx0, sy0 = max(0, x0), max(0, y0)
            sx1 = min(self._surface.width, x0 + w)
            sy1 = min(self._surface.height, y0 + h)
            clipped = np.zeros_like(coverage)
            if sx1 > sx0 and sy1 > sy0:
                clipped[sy0 - y0 : sy1 - y0, sx0 - x0 : sx1 - x0] = (
                    coverage[sy0 - y0 : sy1 - y0, sx0 - x0 : sx1 - x0]
                    * state.clip_mask[sy0:sy1, sx0:sx1]
                )
            coverage = clipped
        self._paint_shadow(coverage, offset, state)
        if isinstance(style, CanvasGradient):
            x0, y0 = offset
            rgba = style.sample(x0, y0, coverage.shape[1], coverage.shape[0])
            if alpha < 1.0:
                rgba = rgba.copy()
                rgba[..., 3] *= alpha
            self._surface.paint(coverage, rgba, op=state.composite_op, offset=offset)
            return
        r, g, b, a = parse_color(style)
        self._surface.paint(coverage, (r, g, b, a * alpha), op=state.composite_op, offset=offset)

    def _paint_shadow(self, coverage: np.ndarray, offset: Tuple[int, int], state: _DrawState) -> None:
        """Draw the shape's shadow (blurred, offset copy) under it."""
        if state.shadow_blur <= 0 and state.shadow_offset_x == 0 and state.shadow_offset_y == 0:
            return
        try:
            r, g, b, a = parse_color(state.shadow_color)
        except Exception:
            return
        if a <= 0:
            return  # default transparent shadow

        mask = coverage
        radius = int(min(16, round(state.shadow_blur / 2)))
        if radius > 0:
            # Separable box blur approximating the Gaussian browsers use.
            mask = np.pad(mask, radius, mode="constant")
            kernel = np.ones(2 * radius + 1) / (2 * radius + 1)
            mask = np.apply_along_axis(lambda m: np.convolve(m, kernel, mode="same"), 0, mask)
            mask = np.apply_along_axis(lambda m: np.convolve(m, kernel, mode="same"), 1, mask)
        ox = offset[0] - radius + int(round(state.shadow_offset_x))
        oy = offset[1] - radius + int(round(state.shadow_offset_y))
        self._surface.paint(
            np.clip(mask, 0.0, 1.0),
            (r, g, b, a * state.global_alpha),
            op="source-over",
            offset=(ox, oy),
        )

    # -- text ------------------------------------------------------------------------------

    def fillText(self, text: str, x: float, y: float, max_width: Optional[float] = None) -> None:
        self._draw_text(text, x, y, self._state.fill_style, max_width)

    def strokeText(self, text: str, x: float, y: float, max_width: Optional[float] = None) -> None:
        self._draw_text(text, x, y, self._state.stroke_style, max_width)

    def measureText(self, text: str) -> TextMetrics:
        spec = parse_font(self._state.font)
        width = self._text.measure(str(text), spec)
        # Bounding-box metrics derive from the font geometry: ascent spans
        # cap height above the alphabetic baseline, descent the strip below.
        ascent = spec.size_px * 7.0 / 8.0
        descent = spec.size_px / 8.0
        return TextMetrics(
            width=width,
            actual_bounding_box_left=0.0,
            actual_bounding_box_right=width,
            actual_bounding_box_ascent=round(ascent, 3),
            actual_bounding_box_descent=round(descent, 3),
        )

    def _draw_text(
        self, text: str, x: float, y: float, style: FillStyle, max_width: Optional[float]
    ) -> None:
        text = str(text)
        if not text:
            return
        style, style_key = self._capture_style(style)
        state, state_key = self._capture_state()
        t = state.transform
        key = (
            "text",
            text,
            state.font,
            state.text_baseline,
            state.text_align,
            x,
            y,
            max_width,
            (t.a, t.b, t.c, t.d, t.e, t.f),
            style_key,
            state_key,
        )
        self._defer(key, lambda: self._render_text(text, x, y, style, max_width, state))

    def _render_text(
        self,
        text: str,
        x: float,
        y: float,
        style: FillStyle,
        max_width: Optional[float],
        state: _DrawState,
    ) -> None:
        spec = parse_font(state.font)
        coverage, emoji_colors, baseline_off = self._text.render(text, spec, state.text_baseline)
        if coverage.size == 0:
            return

        width = self._text.measure(text, spec)
        if max_width is not None and 0 < max_width < width:
            # Canvas squeezes text horizontally to fit maxWidth.
            squeeze = max_width / width
            new_w = max(1, int(coverage.shape[1] * squeeze))
            idx = np.linspace(0, coverage.shape[1] - 1, new_w).astype(int)
            coverage = coverage[:, idx]
            if emoji_colors is not None:
                emoji_colors = emoji_colors[:, idx]
            width = max_width

        ax = x
        if state.text_align in ("center",):
            ax -= width / 2.0
        elif state.text_align in ("right", "end"):
            ax -= width

        baseline_shift = self._text.baseline_shift(state.text_baseline, spec)
        top_y = y + baseline_shift - baseline_off

        t = state.transform
        coverage, emoji_colors, offset = _place_mask(coverage, emoji_colors, t, ax, top_y)

        if emoji_colors is not None:
            rgba = np.zeros(coverage.shape + (4,), dtype=np.float64)
            base = parse_color(style) if isinstance(style, str) else (0.0, 0.0, 0.0, 255.0)
            rgba[..., 0], rgba[..., 1], rgba[..., 2] = base[0], base[1], base[2]
            rgba[..., 3] = base[3] * state.global_alpha
            tinted = emoji_colors.sum(axis=2) > 0
            rgba[tinted, :3] = emoji_colors[tinted]
            self._surface.paint(coverage, rgba, op=state.composite_op, offset=offset)
            return

        self._paint_coverage(coverage, offset, style, state)

    # -- pixel access -----------------------------------------------------------------------

    def getImageData(self, x: float, y: float, w: float, h: float) -> ImageData:
        x, y, w, h = int(x), int(y), int(w), int(h)
        if w <= 0 or h <= 0:
            raise ValueError("IndexSizeError: empty getImageData region")
        snapshot = self.canvas.read_pixels()
        out = np.zeros((h, w, 4), dtype=np.uint8)
        sx0, sy0 = max(0, x), max(0, y)
        sx1, sy1 = min(self._surface.width, x + w), min(self._surface.height, y + h)
        if sx1 > sx0 and sy1 > sy0:
            out[sy0 - y : sy1 - y, sx0 - x : sx1 - x] = snapshot[sy0:sy1, sx0:sx1]
        return ImageData(width=w, height=h, pixels=out)

    def putImageData(self, image_data: ImageData, x: float, y: float) -> None:
        # Copy: the caller may mutate the ImageData after this call.  The op
        # key carries a content digest, so a putImageData of different
        # pixels can never collide with a cached render.
        pixels = np.ascontiguousarray(image_data.pixels).copy()
        digest = hashlib.blake2b(pixels.tobytes(), digest_size=16).digest()
        self._defer(
            ("put-image", digest, pixels.shape, int(x), int(y)),
            lambda: self._surface.put_uint8(pixels, int(x), int(y)),
        )

    def createImageData(self, w: float, h: float) -> ImageData:
        w, h = int(w), int(h)
        if w <= 0 or h <= 0:
            raise ValueError("IndexSizeError: empty createImageData")
        return ImageData(width=w, height=h, pixels=np.zeros((h, w, 4), dtype=np.uint8))

    def drawImage(self, source, dx: float, dy: float, dw: Optional[float] = None, dh: Optional[float] = None) -> None:
        """Draw another canvas element onto this one.

        Reading the source flushes *its* pending ops (and runs its privacy
        filter), exactly as an eager implementation would; the captured
        pixels are keyed by content digest so the op log stays canonical.
        """
        pixels = source.read_pixels() if hasattr(source, "read_pixels") else None
        if pixels is None:
            return
        if dw is not None and dh is not None and (dw != pixels.shape[1] or dh != pixels.shape[0]):
            pixels = _nearest_resize(pixels, int(dh), int(dw))
        tx, ty = self._state.transform.apply(dx, dy)
        offset = (int(round(tx)), int(round(ty)))
        op = self._state.composite_op
        digest = hashlib.blake2b(np.ascontiguousarray(pixels).tobytes(), digest_size=16).digest()

        def apply() -> None:
            rgba = pixels.astype(np.float64)
            coverage = np.ones(rgba.shape[:2], dtype=np.float64)
            self._surface.paint(coverage, rgba, op=op, offset=offset)

        self._defer(("draw-image", digest, pixels.shape, offset, op), apply)

    # -- hit testing -------------------------------------------------------------------------

    def isPointInPath(self, x: float, y: float, rule: str = "nonzero") -> bool:
        px, py = self._state.transform.apply(x, y)
        return self._path.contains_point(px, py, rule)

    # -- gradients ----------------------------------------------------------------------------

    def createLinearGradient(self, x0: float, y0: float, x1: float, y1: float) -> CanvasGradient:
        return CanvasGradient("linear", (x0, y0, x1, y1))

    def createRadialGradient(
        self, x0: float, y0: float, r0: float, x1: float, y1: float, r1: float
    ) -> CanvasGradient:
        if r0 < 0 or r1 < 0:
            raise ValueError("IndexSizeError: negative gradient radius")
        return CanvasGradient("radial", (x0, y0, r0, x1, y1, r1))


def _place_mask(
    coverage: np.ndarray,
    colors: Optional[np.ndarray],
    transform: Transform,
    x: float,
    y: float,
):
    """Position a text mask under the CTM.

    Pure translations (the overwhelmingly common case) use sub-pixel shifts;
    general affine transforms resample the mask via inverse mapping.
    """
    if transform.a == 1 and transform.b == 0 and transform.c == 0 and transform.d == 1:
        tx, ty = x + transform.e, y + transform.f
        ix, iy = int(math.floor(tx)), int(math.floor(ty))
        fx, fy = tx - ix, ty - iy
        if fx > 1e-6 or fy > 1e-6:
            coverage = _subpixel_shift(coverage, fx, fy)
            if colors is not None:
                colors = np.pad(colors, ((0, 1), (0, 1), (0, 0)), mode="edge")
        return coverage, colors, (ix, iy)

    # General affine: map the mask's bounding box through the transform and
    # inverse-sample.
    h, w = coverage.shape
    corners = [transform.apply(x + cx, y + cy) for cx, cy in ((0, 0), (w, 0), (0, h), (w, h))]
    xs = [c[0] for c in corners]
    ys = [c[1] for c in corners]
    ox, oy = int(math.floor(min(xs))), int(math.floor(min(ys)))
    out_w = max(1, int(math.ceil(max(xs))) - ox)
    out_h = max(1, int(math.ceil(max(ys))) - oy)

    det = transform.a * transform.d - transform.b * transform.c
    if abs(det) < 1e-12:
        return np.zeros((0, 0)), None, (0, 0)
    ia, ib = transform.d / det, -transform.b / det
    ic, idd = -transform.c / det, transform.a / det

    yy, xx = np.mgrid[0:out_h, 0:out_w]
    dx = (xx + ox + 0.5) - transform.e
    dy = (yy + oy + 0.5) - transform.f
    ux = ia * dx + ic * dy - x
    uy = ib * dx + idd * dy - y
    uxi = np.clip(np.round(ux - 0.5).astype(int), -1, w)
    uyi = np.clip(np.round(uy - 0.5).astype(int), -1, h)
    valid = (uxi >= 0) & (uxi < w) & (uyi >= 0) & (uyi < h)
    out = np.zeros((out_h, out_w), dtype=np.float64)
    out[valid] = coverage[uyi[valid], uxi[valid]]
    out_colors = None
    if colors is not None:
        out_colors = np.zeros((out_h, out_w, 3), dtype=np.float64)
        out_colors[valid] = colors[uyi[valid], uxi[valid]]
    return out, out_colors, (ox, oy)


def _subpixel_shift(mask: np.ndarray, fx: float, fy: float) -> np.ndarray:
    """Bilinear shift of a mask by a sub-pixel amount (grows by one pixel)."""
    h, w = mask.shape
    out = np.zeros((h + 1, w + 1), dtype=np.float64)
    out[:h, :w] += mask * (1 - fx) * (1 - fy)
    out[:h, 1:] += mask * fx * (1 - fy)
    out[1:, :w] += mask * (1 - fx) * fy
    out[1:, 1:] += mask * fx * fy
    return out


def _nearest_resize(pixels: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    in_h, in_w = pixels.shape[:2]
    out_h, out_w = max(1, out_h), max(1, out_w)
    yi = np.clip((np.arange(out_h) * in_h / out_h).astype(int), 0, in_h - 1)
    xi = np.clip((np.arange(out_w) * in_w / out_w).astype(int), 0, in_w - 1)
    return pixels[np.ix_(yi, xi)]
