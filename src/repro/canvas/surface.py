"""RGBA pixel surface with alpha compositing.

The surface stores non-premultiplied RGBA as ``float64`` internally for
compositing precision and exposes ``uint8`` snapshots.  Paint sources are
applied through coverage masks (anti-aliased shapes produce fractional
coverage), supporting the subset of ``globalCompositeOperation`` values that
real fingerprinting scripts use.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["Surface", "COMPOSITE_OPERATIONS"]

COMPOSITE_OPERATIONS = (
    "source-over",
    "destination-over",
    "source-atop",
    "destination-out",
    "multiply",
    "screen",
    "darken",
    "lighten",
    "xor",
    "copy",
)


class Surface:
    """A ``height x width`` RGBA raster."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"surface dimensions must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        # Non-premultiplied float RGBA, channels in 0..255 (alpha too).
        self._px = np.zeros((self.height, self.width, 4), dtype=np.float64)

    # -- snapshots ----------------------------------------------------------------

    def to_uint8(self) -> np.ndarray:
        """Return an independent ``uint8`` copy of the pixels."""
        return np.clip(np.rint(self._px), 0, 255).astype(np.uint8)

    def snapshot(self) -> np.ndarray:
        """Full-precision copy of the raster (render-cache values).

        ``float64`` rather than ``uint8``: a restored canvas must continue
        compositing bit-identically to one that was rasterized in place.
        """
        return self._px.copy()

    def set_pixels(self, pixels: np.ndarray) -> None:
        """Restore a :meth:`snapshot` (copies — the source stays pristine)."""
        if pixels.shape != self._px.shape:
            raise ValueError(
                f"snapshot shape {pixels.shape} does not match surface {self._px.shape}"
            )
        self._px[...] = pixels

    def put_uint8(self, pixels: np.ndarray, x: int = 0, y: int = 0) -> None:
        """Overwrite a region with raw RGBA pixels (putImageData semantics)."""
        h, w = pixels.shape[:2]
        x0, y0 = max(0, x), max(0, y)
        x1, y1 = min(self.width, x + w), min(self.height, y + h)
        if x1 <= x0 or y1 <= y0:
            return
        src = pixels[y0 - y : y1 - y, x0 - x : x1 - x].astype(np.float64)
        self._px[y0:y1, x0:x1] = src

    def clear(self) -> None:
        self._px[:] = 0.0

    def clear_rect(self, x0: int, y0: int, x1: int, y1: int) -> None:
        x0, y0 = max(0, x0), max(0, y0)
        x1, y1 = min(self.width, x1), min(self.height, y1)
        if x1 > x0 and y1 > y0:
            self._px[y0:y1, x0:x1] = 0.0

    # -- painting -----------------------------------------------------------------

    def paint(
        self,
        coverage: np.ndarray,
        color: "np.ndarray | Tuple[float, float, float, float]",
        op: str = "source-over",
        offset: Tuple[int, int] = (0, 0),
    ) -> None:
        """Composite a paint source onto the surface through a coverage mask.

        ``coverage`` is a 2D float array in [0, 1] positioned at ``offset``
        (x, y).  ``color`` is either a single RGBA tuple or a full RGBA array
        matching ``coverage``'s shape (for gradients / drawImage).
        """
        ch, cw = coverage.shape
        ox, oy = offset
        x0, y0 = max(0, ox), max(0, oy)
        x1, y1 = min(self.width, ox + cw), min(self.height, oy + ch)
        if x1 <= x0 or y1 <= y0:
            return
        cov = coverage[y0 - oy : y1 - oy, x0 - ox : x1 - ox]
        if isinstance(color, tuple):
            src = np.empty(cov.shape + (4,), dtype=np.float64)
            src[..., 0], src[..., 1], src[..., 2], src[..., 3] = color
        else:
            src = color[y0 - oy : y1 - oy, x0 - ox : x1 - ox].astype(np.float64)

        dst = self._px[y0:y1, x0:x1]
        self._px[y0:y1, x0:x1] = _composite(dst, src, cov, op)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Surface({self.width}x{self.height})"


def _composite(dst: np.ndarray, src: np.ndarray, cov: np.ndarray, op: str) -> np.ndarray:
    """Porter-Duff (plus blend modes) on non-premultiplied float RGBA."""
    if op not in COMPOSITE_OPERATIONS:
        # Unknown modes fall back to source-over, as browsers do for typos.
        op = "source-over"

    sa = (src[..., 3] / 255.0) * cov  # effective source alpha
    da = dst[..., 3] / 255.0
    sc = src[..., :3]
    dc = dst[..., :3]

    if op == "copy":
        out = np.empty_like(dst)
        out[..., :3] = sc
        out[..., 3] = sa * 255.0
        return out

    if op in ("multiply", "screen", "darken", "lighten"):
        if op == "multiply":
            blended = sc * dc / 255.0
        elif op == "screen":
            blended = 255.0 - (255.0 - sc) * (255.0 - dc) / 255.0
        elif op == "darken":
            blended = np.minimum(sc, dc)
        else:
            blended = np.maximum(sc, dc)
        # Blend modes only apply where the destination has alpha; elsewhere
        # the source color is used, then standard source-over compositing.
        eff_src = blended * da[..., None] + sc * (1.0 - da[..., None])
        return _source_over(dc, da, eff_src, sa)

    if op == "source-over":
        return _source_over(dc, da, sc, sa)

    if op == "destination-over":
        out_a = da + sa * (1.0 - da)
        safe = np.maximum(out_a, 1e-9)
        out_c = (dc * da[..., None] + sc * (sa * (1.0 - da))[..., None]) / safe[..., None]
        return _pack(out_c, out_a)

    if op == "source-atop":
        out_a = da
        safe = np.maximum(out_a, 1e-9)
        out_c = (sc * (sa * da)[..., None] + dc * (da * (1.0 - sa))[..., None]) / safe[..., None]
        return _pack(out_c, out_a)

    if op == "destination-out":
        out_a = da * (1.0 - sa)
        return _pack(dc, out_a)

    if op == "xor":
        out_a = sa * (1.0 - da) + da * (1.0 - sa)
        safe = np.maximum(out_a, 1e-9)
        out_c = (sc * (sa * (1.0 - da))[..., None] + dc * (da * (1.0 - sa))[..., None]) / safe[..., None]
        return _pack(out_c, out_a)

    raise AssertionError(f"unhandled composite op {op}")  # pragma: no cover


def _source_over(dc: np.ndarray, da: np.ndarray, sc: np.ndarray, sa: np.ndarray) -> np.ndarray:
    out_a = sa + da * (1.0 - sa)
    safe = np.maximum(out_a, 1e-9)
    out_c = (sc * sa[..., None] + dc * (da * (1.0 - sa))[..., None]) / safe[..., None]
    return _pack(out_c, out_a)


def _pack(color: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    out = np.empty(color.shape[:2] + (4,), dtype=np.float64)
    out[..., :3] = color
    out[..., 3] = alpha * 255.0
    return out
