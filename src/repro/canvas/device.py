"""Device profiles: the source of cross-machine rendering differences.

Canvas fingerprinting works because the same drawing commands produce
slightly different pixels on different GPU / OS / font stacks (anti-aliasing,
sub-pixel smoothing, font hinting).  A :class:`DeviceProfile` models one
machine: it deterministically perturbs anti-aliased edge coverage and font
metrics as a pure function of ``(device seed, drawing context)``, so that

* the same script on the same profile always yields identical bytes
  (fingerprints are stable — §4.2 relies on this), and
* the same script on a different profile yields different bytes
  (the §3.1 Intel-vs-M1 validation relies on this).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["DeviceProfile", "INTEL_UBUNTU", "APPLE_M1", "DEVICE_PROFILES"]


@dataclass(frozen=True)
class DeviceProfile:
    """One rendering stack (GPU + OS + font configuration)."""

    name: str
    seed: int
    #: Strength of anti-aliasing perturbation on edge pixels (0..1 coverage units).
    aa_strength: float = 0.08
    #: Horizontal sub-pixel phase applied to glyph positioning, in pixels.
    subpixel_phase: float = 0.0
    #: Multiplier on glyph advance widths (font metric differences).
    font_advance_scale: float = 1.0
    #: Emoji palettes differ per OS; used when rasterizing non-ASCII glyphs.
    emoji_palette: int = 0

    def hash32(self, *parts: object) -> int:
        """Stable 32-bit hash of the device seed plus arbitrary parts.

        Uses CRC32 so results are identical across processes and Python
        versions (``hash()`` is randomized per process).
        """
        data = repr((self.seed,) + tuple(parts)).encode("utf-8")
        return zlib.crc32(data) & 0xFFFFFFFF

    def unit_noise(self, *parts: object) -> float:
        """Deterministic noise in [-1, 1) keyed by seed + parts."""
        return (self.hash32(*parts) / 2147483648.0) - 1.0

    def edge_perturbation(self, *parts: object) -> float:
        """Coverage perturbation for one anti-aliased edge pixel."""
        return self.unit_noise(*parts) * self.aa_strength

    def edge_noise_array(self, tag: int, xs, ys, quanta) -> "np.ndarray":
        """Vectorized deterministic noise in [-aa, aa] for edge pixels.

        ``xs``/``ys`` are integer pixel coordinates, ``quanta`` an integer
        per-pixel context value (e.g. quantized coverage).  Uses an integer
        mixing function (xorshift-multiply) so results are stable across
        processes and platforms.
        """
        import numpy as np

        h = (
            np.asarray(xs, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
            ^ np.asarray(ys, dtype=np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
            ^ np.asarray(quanta, dtype=np.uint64) * np.uint64(0x165667B19E3779F9)
            ^ np.uint64((self.seed * 0x27D4EB2F165667C5 + tag * 0x85EBCA77) & 0xFFFFFFFFFFFFFFFF)
        )
        h ^= h >> np.uint64(33)
        h *= np.uint64(0xFF51AFD7ED558CCD)
        h ^= h >> np.uint64(33)
        unit = (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)  # [0, 1)
        return (unit * 2.0 - 1.0) * self.aa_strength

    def emoji_color(self, codepoint: int) -> Tuple[int, int, int]:
        """Device-dependent emoji tint: emoji fonts differ per OS."""
        h = self.hash32("emoji", self.emoji_palette, codepoint)
        return (64 + (h & 0x7F), 64 + ((h >> 8) & 0x7F), 64 + ((h >> 16) & 0x7F))


#: The crawl machine the paper's main dataset was collected on.
INTEL_UBUNTU = DeviceProfile(
    name="intel-ubuntu-22.04",
    seed=0x1A7E1,
    aa_strength=0.08,
    subpixel_phase=0.0,
    font_advance_scale=1.0,
    emoji_palette=1,
)

#: The validation machine (§3.1 second crawl).
APPLE_M1 = DeviceProfile(
    name="apple-m1",
    seed=0xA991E,
    aa_strength=0.11,
    subpixel_phase=0.33,
    font_advance_scale=1.02,
    emoji_palette=2,
)

DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    INTEL_UBUNTU.name: INTEL_UBUNTU,
    APPLE_M1.name: APPLE_M1,
}


def device_fleet(n: int, seed: int = 0xF1EE7) -> "list[DeviceProfile]":
    """A fleet of ``n`` distinct synthetic devices.

    Used to demonstrate canvas fingerprinting's discriminatory power (§2):
    each profile models a different GPU/OS/font stack, so each renders a
    given test canvas to different bytes.  Profiles are deterministic in
    ``(seed, index)``.
    """
    import random

    fleet = []
    for i in range(n):
        rng = random.Random(f"{seed}:device:{i}")
        fleet.append(
            DeviceProfile(
                name=f"synthetic-device-{i:03d}",
                seed=rng.getrandbits(32),
                aa_strength=0.05 + rng.random() * 0.10,
                subpixel_phase=rng.random() * 0.5,
                font_advance_scale=0.97 + rng.random() * 0.06,
                emoji_palette=rng.randrange(8),
            )
        )
    return fleet
