"""Image encoding for ``toDataURL``.

* :func:`png_encode` writes real, spec-conformant RGBA PNGs (8-bit,
  color type 6, filter 0) so extractions are lossless — the property
  fingerprinting depends on and that our detection heuristics key off.
* :func:`png_decode` reads them back (all five filter types), used by
  ``putImageData``-style tests and analysis tooling.
* :func:`jpeg_like_encode` / :func:`webp_like_encode` are deterministic
  *lossy* codecs: block-quantizers that destroy the sub-pixel differences
  fingerprinting needs, exactly why the paper's heuristics exclude
  ``image/jpeg`` and ``image/webp`` extractions.  (They are not bitwise
  JPEG/WebP — the study only needs their information loss and MIME type.)
"""

from __future__ import annotations

import base64
import hashlib
import struct
import time
import zlib
from typing import Tuple

import numpy as np

from repro import perf

__all__ = [
    "png_encode",
    "png_decode",
    "jpeg_like_encode",
    "webp_like_encode",
    "data_url",
    "parse_data_url",
    "PNGError",
]

_PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"


class PNGError(ValueError):
    """Raised when decoding an invalid PNG stream."""


#: Encode memoization: ``toDataURL`` output keyed by (codec, quality, pixel
#: digest).  The render-twice consistency check doubles every extraction and
#: identical canvases repeat across sites, so encodes repeat verbatim;
#: zlib/quantization is pure in the pixel bytes, making the digest key exact.
_ENCODE_CACHE = perf.ByteBudgetLRU("encode", budget_attr="encode_cache_bytes")


def _memoized_encode(codec: str, params: Tuple, pixels: np.ndarray, encode) -> bytes:
    if not perf.config().enabled:
        return encode()
    digest = hashlib.blake2b(
        np.ascontiguousarray(pixels).tobytes(), digest_size=16
    ).digest()
    key = (codec, params, pixels.shape, digest)
    cached = _ENCODE_CACHE.get(key)
    if cached is not None:
        return cached
    started = time.perf_counter()
    data = encode()
    _ENCODE_CACHE.put(key, data, len(data), seconds=time.perf_counter() - started)
    return data


def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def png_encode(pixels: np.ndarray) -> bytes:
    """Encode an ``(H, W, 4)`` uint8 RGBA array as a PNG byte string."""
    if pixels.ndim != 3 or pixels.shape[2] != 4:
        raise ValueError(f"expected (H, W, 4) RGBA array, got shape {pixels.shape}")
    if pixels.dtype != np.uint8:
        pixels = np.clip(pixels, 0, 255).astype(np.uint8)
    return _memoized_encode("png", (), pixels, lambda: _png_encode_uncached(pixels))


def _png_encode_uncached(pixels: np.ndarray) -> bytes:
    height, width = pixels.shape[:2]
    ihdr = struct.pack(">IIBBBBB", width, height, 8, 6, 0, 0, 0)
    # Filter type 0 (None) per scanline.
    raw = np.empty((height, 1 + width * 4), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = pixels.reshape(height, width * 4)
    idat = zlib.compress(raw.tobytes(), level=6)

    return _PNG_SIGNATURE + _chunk(b"IHDR", ihdr) + _chunk(b"IDAT", idat) + _chunk(b"IEND", b"")


def png_decode(data: bytes) -> np.ndarray:
    """Decode an 8-bit RGBA PNG into an ``(H, W, 4)`` uint8 array."""
    if not data.startswith(_PNG_SIGNATURE):
        raise PNGError("bad PNG signature")
    pos = len(_PNG_SIGNATURE)
    width = height = None
    idat = b""
    while pos < len(data):
        if pos + 8 > len(data):
            raise PNGError("truncated chunk header")
        (length,) = struct.unpack(">I", data[pos : pos + 4])
        tag = data[pos + 4 : pos + 8]
        payload = data[pos + 8 : pos + 8 + length]
        (crc,) = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])
        if crc != (zlib.crc32(tag + payload) & 0xFFFFFFFF):
            raise PNGError(
                f"bad CRC in {tag!r} chunk at offset {pos} "
                f"(expected {zlib.crc32(tag + payload) & 0xFFFFFFFF:#010x}, found {crc:#010x})"
            )
        if tag == b"IHDR":
            width, height, depth, ctype, _comp, _filt, interlace = struct.unpack(">IIBBBBB", payload)
            if depth != 8 or ctype != 6 or interlace != 0:
                raise PNGError("only 8-bit non-interlaced RGBA supported")
        elif tag == b"IDAT":
            idat += payload
        elif tag == b"IEND":
            break
        pos += 12 + length
    if width is None or height is None:
        raise PNGError("missing IHDR")

    raw = zlib.decompress(idat)
    stride = width * 4
    if len(raw) != height * (stride + 1):
        raise PNGError("bad IDAT length")

    out = np.empty((height, stride), dtype=np.uint8)
    prev = np.zeros(stride, dtype=np.uint8)
    for row in range(height):
        offset = row * (stride + 1)
        ftype = raw[offset]
        line = np.frombuffer(raw, dtype=np.uint8, count=stride, offset=offset + 1).copy()
        out[row] = _unfilter(ftype, line, prev)
        prev = out[row]
    return out.reshape(height, width, 4)


def _unfilter(ftype: int, line: np.ndarray, prev: np.ndarray) -> np.ndarray:
    bpp = 4
    if ftype == 0:
        return line
    if ftype == 2:  # Up
        return (line.astype(np.uint16) + prev).astype(np.uint8)
    out = np.zeros_like(line)
    if ftype == 1:  # Sub
        for i in range(len(line)):
            left = out[i - bpp] if i >= bpp else 0
            out[i] = (int(line[i]) + int(left)) & 0xFF
        return out
    if ftype == 3:  # Average
        for i in range(len(line)):
            left = out[i - bpp] if i >= bpp else 0
            out[i] = (int(line[i]) + (int(left) + int(prev[i])) // 2) & 0xFF
        return out
    if ftype == 4:  # Paeth
        for i in range(len(line)):
            left = int(out[i - bpp]) if i >= bpp else 0
            up = int(prev[i])
            ul = int(prev[i - bpp]) if i >= bpp else 0
            p = left + up - ul
            pa, pb, pc = abs(p - left), abs(p - up), abs(p - ul)
            if pa <= pb and pa <= pc:
                pred = left
            elif pb <= pc:
                pred = up
            else:
                pred = ul
            out[i] = (int(line[i]) + pred) & 0xFF
        return out
    raise PNGError(f"unknown filter type {ftype}")


def jpeg_like_encode(pixels: np.ndarray, quality: float = 0.92) -> bytes:
    """Deterministic lossy encoding standing in for JPEG.

    Quantizes 2x2 blocks and coarsens channel values; the quantization step
    grows as ``quality`` drops.  Information below the quantization floor —
    including device AA noise — is destroyed.
    """
    return _lossy_encode(pixels, quality, magic=b"RPRJPG1\x00", drop_alpha=True)


def webp_like_encode(pixels: np.ndarray, quality: float = 0.8) -> bytes:
    """Deterministic lossy encoding standing in for (lossy) WebP."""
    return _lossy_encode(pixels, quality, magic=b"RPRWEBP\x00", drop_alpha=False)


def _lossy_encode(pixels: np.ndarray, quality: float, magic: bytes, drop_alpha: bool) -> bytes:
    if pixels.ndim != 3 or pixels.shape[2] != 4:
        raise ValueError(f"expected (H, W, 4) RGBA array, got shape {pixels.shape}")
    quality = min(max(float(quality), 0.0), 1.0)
    return _memoized_encode(
        "lossy",
        (magic, quality, drop_alpha),
        pixels,
        lambda: _lossy_encode_uncached(pixels, quality, magic, drop_alpha),
    )


def _lossy_encode_uncached(pixels: np.ndarray, quality: float, magic: bytes, drop_alpha: bool) -> bytes:
    step = max(4, int(round((1.0 - quality) * 48)) + 4)
    height, width = pixels.shape[:2]

    work = pixels.astype(np.float64)
    if drop_alpha:
        # JPEG has no alpha channel: composite onto white.
        alpha = work[..., 3:4] / 255.0
        work = work[..., :3] * alpha + 255.0 * (1.0 - alpha)
    else:
        work = work[..., :4]

    quantized = _blur_block_quantize(work, step)

    payload = zlib.compress(quantized.tobytes(), level=6)
    header = magic + struct.pack(">IIBB", width, height, step, quantized.shape[2])
    return header + payload


def lossy_quantized_planes(pixels: np.ndarray, quality: float = 0.92) -> np.ndarray:
    """The quantized block planes the lossy codecs serialize.

    Exposed for analysis/tests: comparing two canvases' planes shows how
    much signal survives lossy extraction (sub-pixel device noise mostly
    does not — hence the paper's detection heuristics drop JPEG/WebP).
    """
    quality = min(max(float(quality), 0.0), 1.0)
    step = max(4, int(round((1.0 - quality) * 48)) + 4)
    return _blur_block_quantize(pixels.astype(np.float64)[..., :3], step)


def _blur_block_quantize(work: np.ndarray, step: int) -> np.ndarray:
    """Low-pass (3x3 box) then 2x2 block-average then quantize.

    The blur models the high-frequency attenuation of DCT quantization: it is
    what makes the lossy path robustly insensitive to single-pixel AA noise.
    """
    height, width = work.shape[:2]
    padded = np.pad(work, ((1, 1), (1, 1), (0, 0)), mode="edge")
    blurred = np.zeros_like(work)
    for dy in range(3):
        for dx in range(3):
            blurred += padded[dy : dy + height, dx : dx + width]
    blurred /= 9.0
    if height % 2 or width % 2:
        blurred = np.pad(blurred, ((0, height % 2), (0, width % 2), (0, 0)), mode="edge")
    blocks = blurred.reshape(blurred.shape[0] // 2, 2, blurred.shape[1] // 2, 2, blurred.shape[2]).mean(
        axis=(1, 3)
    )
    return np.rint(blocks / step).astype(np.int16)


def data_url(mime: str, data: bytes) -> str:
    """Serialize bytes as a ``data:`` URL."""
    return f"data:{mime};base64," + base64.b64encode(data).decode("ascii")


def parse_data_url(url: str) -> Tuple[str, bytes]:
    """Split a base64 ``data:`` URL into (mime, bytes)."""
    if not url.startswith("data:"):
        raise ValueError("not a data URL")
    head, _, b64 = url.partition(",")
    mime = head[len("data:"):].split(";")[0] or "text/plain"
    return mime, base64.b64decode(b64)
