"""Font parsing, metrics and text rasterization.

The CSS ``font`` shorthand is parsed into size / family / weight / style;
glyphs come from the bitmap tables in :mod:`repro.canvas.font_data` and are
resampled to the requested pixel size with area-average anti-aliasing.  Two
device-dependent effects are applied, mirroring why text is the highest-
entropy canvas surface:

* per-family metric perturbation (advance widths scale with the device's
  ``font_advance_scale`` and a family-keyed tweak), and
* deterministic AA perturbation of glyph edge pixels.

Unknown non-ASCII codepoints (emoji) render as a tinted rounded box whose
tint is device-dependent — emoji fonts differ per OS, and fingerprinters
exploit that.
"""

from __future__ import annotations

import math
import re
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import perf
from repro.canvas.device import DeviceProfile
from repro.canvas.font_data import DESCENDER_ROW, GLYPHS, GLYPH_HEIGHT

__all__ = ["FontSpec", "parse_font", "TextRasterizer"]

_SIZE_RE = re.compile(r"(\d+(?:\.\d+)?)\s*(px|pt|em)\b")

#: Ratio of the bitmap cell occupied above the baseline (rows 0-6 of 8).
_BASELINE_RATIO = (DESCENDER_ROW) / GLYPH_HEIGHT


@dataclass(frozen=True)
class FontSpec:
    """Parsed CSS font shorthand."""

    size_px: float = 10.0
    family: str = "sans-serif"
    bold: bool = False
    italic: bool = False

    @property
    def key(self) -> Tuple[float, str, bool, bool]:
        return (self.size_px, self.family, self.bold, self.italic)


def parse_font(font: str) -> FontSpec:
    """Parse a CSS ``font`` shorthand string (e.g. ``"italic 11pt Arial"``)."""
    if not font or not font.strip():
        return FontSpec()
    text = font.strip()
    lower = text.lower()
    bold = bool(re.search(r"\b(bold|[6-9]00)\b", lower))
    italic = "italic" in lower or "oblique" in lower

    size_px = 10.0
    m = _SIZE_RE.search(lower)
    family = "sans-serif"
    if m:
        value = float(m.group(1))
        unit = m.group(2)
        if unit == "px":
            size_px = value
        elif unit == "pt":
            size_px = value * 4.0 / 3.0
        else:  # em, relative to 16px default
            size_px = value * 16.0
        rest = text[m.end():].strip()
        if rest:
            family = rest.split(",")[0].strip().strip("'\"") or "sans-serif"
    else:
        # No size: the whole string may be a family list.
        family = text.split(",")[0].strip().strip("'\"") or "sans-serif"
    return FontSpec(size_px=size_px, family=family, bold=bold, italic=italic)


#: Process-wide glyph atlas: glyph rasterization is pure in
#: (device, char, spec, cell height), and thousands of page loads share the
#: same vendor scripts, so a shared cache is a large crawl-speed win.
#: Byte-budgeted LRU, instrumented through :mod:`repro.perf`.
_GLYPH_ATLAS = perf.ByteBudgetLRU("glyph_atlas", budget_attr="glyph_cache_bytes")

#: Shaped text-run cache: whole (text, font, device) coverage masks, one
#: level above the glyph atlas — ``fillText`` is the hottest op in
#: fingerprinting canvases and most runs repeat verbatim across sites.
_RUN_CACHE = perf.ByteBudgetLRU("text_run", budget_attr="glyph_cache_bytes")


class TextRasterizer:
    """Renders text runs to coverage masks for one device profile."""

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device

    # -- metrics --------------------------------------------------------------------

    def family_scale(self, family: str) -> float:
        """Per-family advance tweak: different font files, different metrics."""
        tweak = 1.0 + (self.device.hash32("family", family.lower()) % 97) / 2000.0
        return self.device.font_advance_scale * tweak

    def measure(self, text: str, spec: FontSpec) -> float:
        """Advance width of ``text`` in pixels (measureText)."""
        scale = spec.size_px / GLYPH_HEIGHT
        fam = self.family_scale(spec.family)
        width = 0.0
        for ch in text:
            width += (self._advance_cells(ch) + 1) * scale * fam
        return round(width, 3)

    def _advance_cells(self, ch: str) -> int:
        glyph = GLYPHS.get(ch)
        if glyph is not None:
            return len(glyph[0])
        return 6 if ord(ch) > 0x2000 else 5  # emoji boxes are wide

    # -- rasterization ---------------------------------------------------------------

    def render(
        self,
        text: str,
        spec: FontSpec,
        baseline: str = "alphabetic",
    ) -> Tuple[np.ndarray, Optional[np.ndarray], float]:
        """Rasterize a text run.

        Returns ``(coverage, color_override, baseline_offset)`` where
        ``coverage`` is a float mask anchored at the text origin's x and the
        run's top, ``color_override`` is an optional RGB array (emoji carry
        their own colors), and ``baseline_offset`` is the distance from the
        mask's top row to the alphabetic baseline.
        """
        caching = perf.config().enabled
        run_key = (self.device, text, spec.key)
        if caching:
            cached_run = _RUN_CACHE.get(run_key)
            if cached_run is not None:
                return cached_run
        started = time.perf_counter()

        scale = spec.size_px / GLYPH_HEIGHT
        fam = self.family_scale(spec.family)
        cell_h = max(2, int(round(GLYPH_HEIGHT * scale)))
        height = cell_h + 2  # headroom for italic shear

        advances: List[float] = []
        total = 0.0
        for ch in text:
            adv = (self._advance_cells(ch) + 1) * scale * fam
            advances.append(adv)
            total += adv
        width = int(math.ceil(total + self.device.subpixel_phase)) + 2
        if width <= 0 or not text:
            return np.zeros((height, 1)), None, cell_h * _BASELINE_RATIO

        coverage = np.zeros((height, width), dtype=np.float64)
        colors: Optional[np.ndarray] = None

        pen = self.device.subpixel_phase
        for idx, ch in enumerate(text):
            mask, tint = self._glyph_mask(ch, spec, cell_h)
            gx = int(round(pen))
            gh, gw = mask.shape
            x1 = min(width, gx + gw)
            y1 = min(height, gh)
            if x1 > gx:
                region = coverage[0:y1, gx:x1]
                np.maximum(region, mask[0:y1, 0 : x1 - gx], out=region)
                if tint is not None:
                    if colors is None:
                        colors = np.zeros((height, width, 3), dtype=np.float64)
                    sub = colors[0:y1, gx:x1]
                    on = mask[0:y1, 0 : x1 - gx] > 0
                    sub[on] = tint
            pen += advances[idx]

        self._perturb(coverage, text, spec)
        result = (coverage, colors, cell_h * _BASELINE_RATIO)
        if caching:
            nbytes = coverage.nbytes + (colors.nbytes if colors is not None else 0)
            _RUN_CACHE.put(run_key, result, nbytes, seconds=time.perf_counter() - started)
        return result

    def baseline_shift(self, baseline: str, spec: FontSpec) -> float:
        """Offset from the user-supplied y to the alphabetic baseline."""
        size = spec.size_px
        if baseline == "top":
            return size * _BASELINE_RATIO
        if baseline == "hanging":
            return size * (_BASELINE_RATIO - 0.1)
        if baseline == "middle":
            return size * _BASELINE_RATIO / 2.0
        if baseline in ("bottom", "ideographic"):
            return -size * (1.0 - _BASELINE_RATIO)
        return 0.0  # alphabetic

    # -- glyph machinery -------------------------------------------------------------

    def _glyph_mask(
        self, ch: str, spec: FontSpec, cell_h: int
    ) -> Tuple[np.ndarray, Optional[Tuple[int, int, int]]]:
        caching = perf.config().enabled
        key = (self.device, ch, spec.key, cell_h)
        if caching:
            cached = _GLYPH_ATLAS.get(key)
            if cached is not None:
                mask, tint = cached
                return mask, tint
        started = time.perf_counter()

        rows = GLYPHS.get(ch)
        if rows is None:
            mask, tint = self._fallback_glyph(ch, cell_h)
        else:
            bitmap = np.array([[c != " " for c in row] for row in rows], dtype=np.float64)
            if spec.bold:
                shifted = np.zeros_like(bitmap)
                shifted[:, 1:] = bitmap[:, :-1]
                bitmap = np.maximum(bitmap, shifted)
            mask = _resize_area(bitmap, cell_h, max(1, int(round(bitmap.shape[1] * cell_h / GLYPH_HEIGHT))))
            mask = _smooth(mask)
            if spec.italic:
                mask = _shear(mask)
            tint = None

        if caching:
            _GLYPH_ATLAS.put(key, (mask, tint), mask.nbytes, seconds=time.perf_counter() - started)
        return mask, tint

    def _fallback_glyph(self, ch: str, cell_h: int) -> Tuple[np.ndarray, Optional[Tuple[int, int, int]]]:
        """Unknown codepoints: emoji-style tinted box, or hollow box for Latin-ish."""
        code = ord(ch)
        w = max(2, int(round(cell_h * 0.8)))
        mask = np.zeros((cell_h, w), dtype=np.float64)
        if code > 0x2000:
            # Color-emoji analogue: filled rounded box, device-tinted, with a
            # codepoint-dependent notch pattern so distinct emoji render
            # distinctly.
            mask[1:-1, 1:-1] = 1.0
            notch = self.device.hash32("notch", code) % max(1, w - 2)
            mask[1 + (code % max(1, cell_h - 2)), 1 + notch] = 0.0
            return mask, self.device.emoji_color(code)
        # Hollow "tofu" box with a codepoint-dependent interior pattern:
        # distinct unknown characters must stay distinguishable (a string of
        # Cyrillic text still carries per-character shape information).
        mask[1, 1:-1] = 1.0
        mask[-2, 1:-1] = 1.0
        mask[1:-1, 1] = 1.0
        mask[1:-1, -2] = 1.0
        inner_h, inner_w = max(1, cell_h - 4), max(1, w - 4)
        bits = code * 0x9E3779B1 & 0xFFFFFFFF
        for row in range(inner_h):
            for col in range(inner_w):
                if (bits >> ((row * inner_w + col) % 31)) & 1:
                    mask[2 + row, 2 + col] = 1.0
        return mask, None

    def _perturb(self, coverage: np.ndarray, text: str, spec: FontSpec) -> None:
        edge = (coverage > 0.0) & (coverage < 1.0)
        if not edge.any():
            return
        ys, xs = np.nonzero(edge)
        quanta = np.rint(coverage[ys, xs] * 64).astype(np.int64)
        tag = self.device.hash32("text", spec.key) & 0x7FFFFFFF
        noise = self.device.edge_noise_array(tag, xs, ys, quanta)
        coverage[ys, xs] = np.clip(coverage[ys, xs] + noise, 0.0, 1.0)


def _resize_area(bitmap: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Area-average resize of a binary bitmap — produces fractional edges."""
    in_h, in_w = bitmap.shape
    ss = 3
    yy = (np.arange(out_h * ss) + 0.5) * in_h / (out_h * ss)
    xx = (np.arange(out_w * ss) + 0.5) * in_w / (out_w * ss)
    yi = np.clip(yy.astype(int), 0, in_h - 1)
    xi = np.clip(xx.astype(int), 0, in_w - 1)
    up = bitmap[np.ix_(yi, xi)]
    return up.reshape(out_h, ss, out_w, ss).mean(axis=(1, 3))


def _smooth(mask: np.ndarray) -> np.ndarray:
    """Light separable blur modelling font smoothing.

    Guarantees fractional coverage at glyph edges even at integer scale
    factors — without it there would be no anti-aliased pixels for the
    device profile to perturb, and canvas fingerprints would not vary
    across machines for integer font sizes.
    """
    h, w = mask.shape
    out = np.pad(mask, 1, mode="constant")
    out = out[:-2, :] * 0.12 + out[1:-1, :] * 0.76 + out[2:, :] * 0.12
    out = out[:, :-2] * 0.12 + out[:, 1:-1] * 0.76 + out[:, 2:] * 0.12
    assert out.shape == (h, w)
    return np.clip(out, 0.0, 1.0)


def _shear(mask: np.ndarray) -> np.ndarray:
    """Cheap italic: shift rows right proportionally to height."""
    h, w = mask.shape
    max_shift = max(1, h // 6)
    out = np.zeros((h, w + max_shift), dtype=mask.dtype)
    for row in range(h):
        shift = int(round(max_shift * (1.0 - row / max(1, h - 1))))
        out[row, shift : shift + w] = mask[row]
    return out
