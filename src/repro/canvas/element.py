"""HTMLCanvasElement: dimensions, context acquisition, and extraction.

``toDataURL`` is the choke point the paper's methodology instruments — it is
where a generated canvas becomes an exfiltratable string.  The element also
hosts the ``extraction_filter`` hook browsers use to implement canvas
randomization defenses (§5.3): the filter sees the pixels on every read-out
and may add noise.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.canvas.context2d import CanvasRenderingContext2D
from repro.canvas.device import DeviceProfile, INTEL_UBUNTU
from repro.canvas.encode import data_url, jpeg_like_encode, png_encode, webp_like_encode
from repro.canvas.surface import Surface

__all__ = ["HTMLCanvasElement"]

DEFAULT_WIDTH = 300
DEFAULT_HEIGHT = 150

#: Readout filter signature: receives an (H, W, 4) uint8 copy, returns same.
ExtractionFilter = Callable[[np.ndarray], np.ndarray]


class HTMLCanvasElement:
    """A canvas element with a software raster backend."""

    tag_name = "canvas"

    def __init__(
        self,
        width: int = DEFAULT_WIDTH,
        height: int = DEFAULT_HEIGHT,
        device: DeviceProfile = INTEL_UBUNTU,
    ) -> None:
        self.device = device
        self.surface = Surface(width, height)
        self._context: Optional[CanvasRenderingContext2D] = None
        #: Privacy-defense hook applied on every pixel read-out.
        self.extraction_filter: Optional[ExtractionFilter] = None

    # -- dimensions (assignment resets the surface, per spec) ---------------------------

    @property
    def width(self) -> int:
        return self.surface.width

    @width.setter
    def width(self, value: int) -> None:
        value = _coerce_dimension(value, DEFAULT_WIDTH)
        self.surface = Surface(value, self.surface.height)
        self._rebind_context()

    @property
    def height(self) -> int:
        return self.surface.height

    @height.setter
    def height(self, value: int) -> None:
        value = _coerce_dimension(value, DEFAULT_HEIGHT)
        self.surface = Surface(self.surface.width, value)
        self._rebind_context()

    def _rebind_context(self) -> None:
        if self._context is not None:
            # Resetting a canvas dimension also resets context state, per spec.
            self._context = CanvasRenderingContext2D(self, self.device)

    # -- context -------------------------------------------------------------------------

    def getContext(self, context_type: str):
        """Return the 2D context, or None for unsupported context types."""
        if context_type != "2d":
            return None
        if self._context is None:
            self._context = CanvasRenderingContext2D(self, self.device)
        return self._context

    # -- extraction -----------------------------------------------------------------------

    def read_pixels(self) -> np.ndarray:
        """Snapshot pixels through the privacy filter (if installed).

        Materializes deferred draw ops first (the render-cache flush point),
        then applies the privacy filter — randomization defenses act on the
        rendered pixels, so caching below this line cannot mask them.
        """
        if self._context is not None:
            self._context.flush()
        pixels = self.surface.to_uint8()
        if self.extraction_filter is not None:
            pixels = self.extraction_filter(pixels)
        return pixels

    def toDataURL(self, mime_type: str = "image/png", quality: Optional[float] = None) -> str:
        """Serialize the canvas to a data URL.

        Unknown MIME types fall back to PNG, matching browser behavior.
        """
        pixels = self.read_pixels()
        mime = (mime_type or "image/png").lower()
        if mime == "image/jpeg":
            return data_url(mime, jpeg_like_encode(pixels, 0.92 if quality is None else quality))
        if mime == "image/webp":
            return data_url(mime, webp_like_encode(pixels, 0.8 if quality is None else quality))
        return data_url("image/png", png_encode(pixels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<canvas {self.width}x{self.height} on {self.device.name}>"


def _coerce_dimension(value, default: int) -> int:
    """HTML dimension coercion: non-positive/invalid values use the default."""
    try:
        ivalue = int(value)
    except (TypeError, ValueError):
        return default
    if ivalue <= 0:
        return default
    return min(ivalue, 4096)  # cap, like browsers' max canvas size
