"""Path construction and anti-aliased rasterization.

Paths are stored as flattened polylines (arcs and béziers are subdivided at
construction time, in device space).  Filling uses a supersampled winding
test (non-zero or even-odd) vectorized with numpy; stroking builds per-segment
quads plus joint disks.  Anti-aliased edge pixels receive the device
profile's deterministic perturbation — the core fingerprintable signal.
"""

from __future__ import annotations

import hashlib
import math
import struct
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import perf
from repro.canvas.device import DeviceProfile
from repro.canvas.geometry import Transform

__all__ = ["Path", "rasterize_fill", "rasterize_stroke"]

#: Supersampling factor per axis for coverage estimation.
SUPERSAMPLE = 3


class Path:
    """A sequence of subpaths (polylines), built in *device* coordinates.

    The context transforms points before handing them to the path, matching
    canvas semantics where the CTM applies at path-construction time.
    """

    def __init__(self) -> None:
        self.subpaths: List[List[Tuple[float, float]]] = []
        self._closed: List[bool] = []

    # -- construction ------------------------------------------------------------

    def move_to(self, x: float, y: float) -> None:
        self.subpaths.append([(x, y)])
        self._closed.append(False)

    def line_to(self, x: float, y: float) -> None:
        if not self.subpaths:
            self.move_to(x, y)
            return
        self.subpaths[-1].append((x, y))

    def close(self) -> None:
        if self.subpaths and len(self.subpaths[-1]) > 1:
            self._closed[-1] = True

    def add_polyline(self, points: Sequence[Tuple[float, float]], closed: bool = False) -> None:
        pts = list(points)
        if len(pts) >= 2:
            self.subpaths.append(pts)
            self._closed.append(closed)

    @property
    def current_point(self) -> Optional[Tuple[float, float]]:
        if self.subpaths and self.subpaths[-1]:
            return self.subpaths[-1][-1]
        return None

    def is_empty(self) -> bool:
        return not any(len(sp) >= 2 for sp in self.subpaths)

    def copy(self) -> "Path":
        """Independent copy (deferred paint ops capture the path as drawn,
        unaffected by later ``lineTo``/``closePath`` on the live path)."""
        out = Path()
        out.subpaths = [list(sp) for sp in self.subpaths]
        out._closed = list(self._closed)
        return out

    def canonical_digest(self) -> bytes:
        """Content digest over subpath structure and device-space points.

        Used as the geometry component of render-cache keys: two paths with
        the same digest fill and stroke identically (points, subpath
        boundaries and closed flags are all folded in).
        """
        h = hashlib.blake2b(digest_size=16)
        for pts, closed in zip(self.subpaths, self._closed):
            h.update(struct.pack("<I?", len(pts), closed))
            h.update(np.asarray(pts, dtype=np.float64).tobytes())
        return h.digest()

    # -- geometry helpers ----------------------------------------------------------

    def edges(self) -> np.ndarray:
        """All edges as an ``(E, 4)`` array of (x1, y1, x2, y2).

        Open subpaths are implicitly closed for filling, per canvas fill
        semantics.
        """
        rows: List[Tuple[float, float, float, float]] = []
        for pts, _closed in zip(self.subpaths, self._closed):
            if len(pts) < 2:
                continue
            for a, b in zip(pts, pts[1:]):
                rows.append((a[0], a[1], b[0], b[1]))
            if pts[0] != pts[-1]:
                rows.append((pts[-1][0], pts[-1][1], pts[0][0], pts[0][1]))
        if not rows:
            return np.zeros((0, 4), dtype=np.float64)
        return np.asarray(rows, dtype=np.float64)

    def stroke_segments(self) -> List[Tuple[Tuple[float, float], Tuple[float, float]]]:
        """Segments to stroke (closing segment included for closed subpaths)."""
        segments = []
        for pts, closed in zip(self.subpaths, self._closed):
            if len(pts) < 2:
                continue
            for a, b in zip(pts, pts[1:]):
                segments.append((a, b))
            if closed and pts[0] != pts[-1]:
                segments.append((pts[-1], pts[0]))
        return segments

    def bounds(self, pad: float = 1.0) -> Optional[Tuple[float, float, float, float]]:
        xs: List[float] = []
        ys: List[float] = []
        for pts in self.subpaths:
            for x, y in pts:
                xs.append(x)
                ys.append(y)
        if not xs:
            return None
        return (min(xs) - pad, min(ys) - pad, max(xs) + pad, max(ys) + pad)

    def contains_point(self, x: float, y: float, rule: str = "nonzero") -> bool:
        """Point-in-path test (isPointInPath)."""
        edges = self.edges()
        if edges.shape[0] == 0:
            return False
        winding = _winding_numbers(edges, np.array([x]), np.array([y]))
        if rule == "evenodd":
            return bool(winding[0] % 2 != 0)
        return bool(winding[0] != 0)


# --- flattening helpers (used by the context when building paths) ------------------


def flatten_arc(
    cx: float,
    cy: float,
    radius: float,
    start: float,
    end: float,
    anticlockwise: bool,
    transform: Transform,
    rx_scale: float = 1.0,
    ry_scale: float = 1.0,
) -> List[Tuple[float, float]]:
    """Flatten an arc/ellipse into transformed polyline points."""
    if radius < 0:
        raise ValueError("negative radius")
    sweep = end - start
    two_pi = 2 * math.pi
    if anticlockwise:
        if sweep <= -two_pi:
            sweep = -two_pi
        else:
            sweep = -(((-sweep) % two_pi) or (two_pi if sweep != 0 else 0))
            if sweep == 0 and (end - start) != 0:
                sweep = -two_pi
    else:
        if sweep >= two_pi:
            sweep = two_pi
        else:
            sweep = (sweep % two_pi) or (two_pi if (end - start) != 0 and (end - start) % two_pi == 0 else sweep % two_pi)
    # Segment count scales with radius and transform magnitude for smoothness.
    scale = transform.scale_magnitude
    n = max(8, min(128, int(abs(sweep) * max(radius * max(rx_scale, ry_scale), 1.0) * scale * 0.75)))
    points = []
    for i in range(n + 1):
        t = start + sweep * (i / n)
        x = cx + radius * rx_scale * math.cos(t)
        y = cy + radius * ry_scale * math.sin(t)
        points.append(transform.apply(x, y))
    return points


def flatten_cubic(
    p0: Tuple[float, float],
    p1: Tuple[float, float],
    p2: Tuple[float, float],
    p3: Tuple[float, float],
    transform: Transform,
) -> List[Tuple[float, float]]:
    """Flatten a cubic bézier (control points in user space) to device points."""
    n = 24
    out = []
    for i in range(1, n + 1):
        t = i / n
        mt = 1 - t
        x = mt**3 * p0[0] + 3 * mt**2 * t * p1[0] + 3 * mt * t**2 * p2[0] + t**3 * p3[0]
        y = mt**3 * p0[1] + 3 * mt**2 * t * p1[1] + 3 * mt * t**2 * p2[1] + t**3 * p3[1]
        out.append(transform.apply(x, y))
    return out


def flatten_quadratic(
    p0: Tuple[float, float],
    p1: Tuple[float, float],
    p2: Tuple[float, float],
    transform: Transform,
) -> List[Tuple[float, float]]:
    n = 16
    out = []
    for i in range(1, n + 1):
        t = i / n
        mt = 1 - t
        x = mt**2 * p0[0] + 2 * mt * t * p1[0] + t**2 * p2[0]
        y = mt**2 * p0[1] + 2 * mt * t * p1[1] + t**2 * p2[1]
        out.append(transform.apply(x, y))
    return out


# --- rasterization ------------------------------------------------------------------


def rasterize_fill(
    path: Path,
    width: int,
    height: int,
    rule: str = "nonzero",
    device: Optional[DeviceProfile] = None,
    noise_tag: int = 1,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rasterize a filled path.

    Returns ``(coverage, (x_offset, y_offset))`` where coverage is a float
    array in [0, 1] covering the path's clipped bounding box.
    """
    edges = path.edges()
    bounds = path.bounds()
    if edges.shape[0] == 0 or bounds is None:
        return np.zeros((0, 0)), (0, 0)
    x0 = max(0, int(math.floor(bounds[0])))
    y0 = max(0, int(math.floor(bounds[1])))
    x1 = min(width, int(math.ceil(bounds[2])))
    y1 = min(height, int(math.ceil(bounds[3])))
    if x1 <= x0 or y1 <= y0:
        return np.zeros((0, 0)), (0, 0)

    coverage = _coverage_from_edges(edges, x0, y0, x1, y1, rule)
    if device is not None:
        _perturb_edges(coverage, device, noise_tag, x0, y0)
    return coverage, (x0, y0)


def rasterize_stroke(
    path: Path,
    width: int,
    height: int,
    line_width: float,
    device: Optional[DeviceProfile] = None,
    noise_tag: int = 2,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rasterize a stroked path as union coverage of segment quads + joint disks."""
    segments = path.stroke_segments()
    if not segments or line_width <= 0:
        return np.zeros((0, 0)), (0, 0)
    half = max(line_width / 2.0, 0.35)

    bounds = path.bounds(pad=half + 1.0)
    assert bounds is not None
    x0 = max(0, int(math.floor(bounds[0])))
    y0 = max(0, int(math.floor(bounds[1])))
    x1 = min(width, int(math.ceil(bounds[2])))
    y1 = min(height, int(math.ceil(bounds[3])))
    if x1 <= x0 or y1 <= y0:
        return np.zeros((0, 0)), (0, 0)

    coverage = np.zeros((y1 - y0, x1 - x0), dtype=np.float64)
    for (ax, ay), (bx, by) in segments:
        dx, dy = bx - ax, by - ay
        length = math.hypot(dx, dy)
        if length < 1e-9:
            quad_edges = _disk_edges(ax, ay, half)
        else:
            nx, ny = -dy / length * half, dx / length * half
            quad = [
                (ax + nx, ay + ny),
                (bx + nx, by + ny),
                (bx - nx, by - ny),
                (ax - nx, ay - ny),
            ]
            quad_edges = _polygon_edges(quad)
        seg_cov = _coverage_from_edges(quad_edges, x0, y0, x1, y1, "nonzero")
        np.maximum(coverage, seg_cov, out=coverage)

    # Joint and cap disks give smooth round joins.
    joint_points = {seg[0] for seg in segments} | {seg[1] for seg in segments}
    if half > 0.6:
        for jx, jy in joint_points:
            disk = _coverage_from_edges(_disk_edges(jx, jy, half), x0, y0, x1, y1, "nonzero")
            np.maximum(coverage, disk, out=coverage)

    if device is not None:
        _perturb_edges(coverage, device, noise_tag, x0, y0)
    return coverage, (x0, y0)


def _polygon_edges(points: List[Tuple[float, float]]) -> np.ndarray:
    rows = []
    for a, b in zip(points, points[1:] + points[:1]):
        rows.append((a[0], a[1], b[0], b[1]))
    return np.asarray(rows, dtype=np.float64)


def _disk_edges(cx: float, cy: float, r: float, n: int = 16) -> np.ndarray:
    pts = [(cx + r * math.cos(2 * math.pi * i / n), cy + r * math.sin(2 * math.pi * i / n)) for i in range(n)]
    return _polygon_edges(pts)


#: Pure-function cache for winding-rule coverage: identical fingerprinting
#: scripts rasterize identical geometry on thousands of sites, so the first
#: site pays for the supersampled winding test and the rest hit the cache.
#: Keyed by the exact edge bytes plus the pixel box and rule; bounded by a
#: byte budget with LRU eviction (see docs/performance.md).
_COVERAGE_CACHE = perf.ByteBudgetLRU("path_mask", budget_attr="path_cache_bytes")


def _coverage_from_edges(
    edges: np.ndarray, x0: int, y0: int, x1: int, y1: int, rule: str
) -> np.ndarray:
    """Supersampled winding-rule coverage over the [x0,x1)x[y0,y1) pixel box."""
    if not perf.config().enabled:
        return _coverage_uncached(edges, x0, y0, x1, y1, rule)
    key = (edges.tobytes(), x0, y0, x1, y1, rule)
    cached = _COVERAGE_CACHE.get(key)
    if cached is not None:
        return cached.copy()  # callers mutate (noise, union) — protect the cache
    started = time.perf_counter()
    coverage = _coverage_uncached(edges, x0, y0, x1, y1, rule)
    _COVERAGE_CACHE.put(key, coverage, coverage.nbytes, seconds=time.perf_counter() - started)
    return coverage.copy()


def _coverage_uncached(
    edges: np.ndarray, x0: int, y0: int, x1: int, y1: int, rule: str
) -> np.ndarray:
    """Scanline coverage: supersampled rows, analytically exact columns.

    For each sample row, edge crossings are computed vectorized over all
    edges, sorted, and converted to winding spans; span x-extents contribute
    fractional coverage to their pixel columns exactly (no x supersampling).
    """
    ss = SUPERSAMPLE
    w, h = x1 - x0, y1 - y0
    coverage = np.zeros((h, w), dtype=np.float64)

    ex1, ey1, ex2, ey2 = edges[:, 0], edges[:, 1], edges[:, 2], edges[:, 3]
    dy = ey2 - ey1
    safe_dy = np.where(np.abs(dy) < 1e-12, 1.0, dy)
    inv_dy = (ex2 - ex1) / safe_dy
    row_weight = 1.0 / ss

    for sub in range(h * ss):
        y = y0 + (sub + 0.5) / ss
        upward = (ey1 <= y) & (ey2 > y)
        downward = (ey2 <= y) & (ey1 > y)
        crossing = upward | downward
        if not crossing.any():
            continue
        xi = ex1[crossing] + (y - ey1[crossing]) * inv_dy[crossing]
        direction = np.where(upward[crossing], 1, -1)
        order = np.argsort(xi, kind="stable")
        xi = xi[order]
        winding = np.cumsum(direction[order])
        if rule == "evenodd":
            inside = (winding % 2) != 0
        else:
            inside = winding != 0

        row = coverage[sub // ss]
        span_start = None
        for k in range(len(xi)):
            if inside[k] and span_start is None:
                span_start = xi[k]
            elif not inside[k] and span_start is not None:
                _add_span(row, span_start - x0, xi[k] - x0, row_weight, w)
                span_start = None
        # A final open span cannot occur: total winding returns to zero for
        # closed polygons, but guard against numeric degeneracy.
        if span_start is not None:
            _add_span(row, span_start - x0, float(w), row_weight, w)
    return coverage


def _add_span(row: np.ndarray, xa: float, xb: float, weight: float, w: int) -> None:
    """Accumulate one horizontal span with exact fractional end-columns."""
    xa = max(0.0, xa)
    xb = min(float(w), xb)
    if xb <= xa:
        return
    ca = int(xa)
    cb = int(xb)
    if ca == cb:
        row[ca] += (xb - xa) * weight
        return
    row[ca] += (ca + 1 - xa) * weight
    if cb < w:
        row[cb] += (xb - cb) * weight
    if cb > ca + 1:
        row[ca + 1 : cb] += weight


def _winding_numbers(edges: np.ndarray, px: np.ndarray, py: np.ndarray) -> np.ndarray:
    """Winding number of each point, computed against all edges at once."""
    x1, y1, x2, y2 = edges[:, 0], edges[:, 1], edges[:, 2], edges[:, 3]
    # Broadcast points (N, 1) against edges (E,).
    pyc = py[:, None]
    pxc = px[:, None]
    upward = (y1[None, :] <= pyc) & (y2[None, :] > pyc)
    downward = (y2[None, :] <= pyc) & (y1[None, :] > pyc)
    crossing = upward | downward
    dy = y2 - y1
    safe_dy = np.where(np.abs(dy) < 1e-12, 1.0, dy)
    t = (pyc - y1[None, :]) / safe_dy[None, :]
    xi = x1[None, :] + t * (x2 - x1)[None, :]
    right = xi > pxc
    contrib = np.where(crossing & right, np.where(upward, 1, -1), 0)
    return contrib.sum(axis=1)


def _perturb_edges(coverage: np.ndarray, device: DeviceProfile, tag: int, x0: int, y0: int) -> None:
    """Apply the device's deterministic AA perturbation to edge pixels in place."""
    edge_mask = (coverage > 0.0) & (coverage < 1.0)
    if not edge_mask.any():
        return
    ys, xs = np.nonzero(edge_mask)
    quanta = np.rint(coverage[ys, xs] * 64).astype(np.int64)
    noise = device.edge_noise_array(tag, xs + x0, ys + y0, quanta)
    coverage[ys, xs] = np.clip(coverage[ys, xs] + noise, 0.0, 1.0)
