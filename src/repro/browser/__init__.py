"""Browser substrate: page loading, canvas instrumentation, extensions and
privacy defenses."""

from repro.browser.browser import Browser, Page
from repro.browser.profile import BrowserProfile
from repro.browser.privacy import CanvasRandomization
from repro.browser.extensions import AdBlockerExtension, Extension
from repro.browser.instrumentation import CanvasInstrument, VirtualClock

__all__ = [
    "Browser",
    "Page",
    "BrowserProfile",
    "CanvasRandomization",
    "Extension",
    "AdBlockerExtension",
    "CanvasInstrument",
    "VirtualClock",
]
