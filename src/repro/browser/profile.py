"""Browser profile: the knobs a crawl configuration sets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.browser.extensions import Extension
from repro.browser.privacy import CanvasRandomization
from repro.canvas.device import DeviceProfile, INTEL_UBUNTU

__all__ = ["BrowserProfile"]


@dataclass
class BrowserProfile:
    """One browser configuration used for a crawl."""

    device: DeviceProfile = INTEL_UBUNTU
    privacy_mode: CanvasRandomization = CanvasRandomization.NONE
    extensions: Tuple[Extension, ...] = ()
    #: Whether navigator.webdriver is exposed (true for a naive crawler;
    #: the paper's crawler masks it — "handles common anti-bot detection").
    expose_webdriver: bool = False
    #: Seed for the session-scoped randomization defense.
    session_seed: int = 0xC0FFEE

    def with_extensions(self, *extensions: Extension) -> "BrowserProfile":
        return BrowserProfile(
            device=self.device,
            privacy_mode=self.privacy_mode,
            extensions=tuple(extensions),
            expose_webdriver=self.expose_webdriver,
            session_seed=self.session_seed,
        )
