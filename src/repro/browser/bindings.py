"""JS host-object wrappers for the canvas API, with instrumentation.

Every method call and property write that page JavaScript performs on a
canvas element or its 2D context passes through these wrappers, which
delegate to the software canvas (:mod:`repro.canvas`) and record the event —
tagged with the *currently executing script's URL* — into the page's
:class:`~repro.browser.instrumentation.CanvasInstrument`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro import perf
from repro.browser.instrumentation import CanvasInstrument
from repro.canvas.context2d import CanvasRenderingContext2D, ImageData
from repro.canvas.element import HTMLCanvasElement
from repro.canvas.gradient import CanvasGradient
from repro.dom.elements import DOMElement
from repro.js.errors import JSThrow
from repro.js.values import NULL, UNDEFINED, JSObject, NativeFunction, js_to_number, js_to_string

__all__ = ["JSCanvasElement", "JSContext2D", "JSImageData", "JSGradient"]

_CTX_IFACE = "CanvasRenderingContext2D"
_CANVAS_IFACE = "HTMLCanvasElement"

#: Context methods exposed to scripts: name -> (argument kinds).
#: Kinds: "n" number, "s" string, "b" bool, "?" optional number, "$" optional string,
#:        "I" ImageData, "C" canvas-or-imagey object.
_CTX_METHODS: Dict[str, str] = {
    "fillRect": "nnnn",
    "strokeRect": "nnnn",
    "clearRect": "nnnn",
    "beginPath": "",
    "closePath": "",
    "moveTo": "nn",
    "lineTo": "nn",
    "rect": "nnnn",
    "arc": "nnnnn?",
    "arcTo": "nnnnn",
    "ellipse": "nnnnnnn?",
    "quadraticCurveTo": "nnnn",
    "bezierCurveTo": "nnnnnn",
    "fill": "$",
    "clip": "$",
    "stroke": "",
    "fillText": "snn?",
    "strokeText": "snn?",
    "measureText": "s",
    "save": "",
    "restore": "",
    "translate": "nn",
    "scale": "nn",
    "rotate": "n",
    "transform": "nnnnnn",
    "setTransform": "nnnnnn",
    "resetTransform": "",
    "createLinearGradient": "nnnn",
    "createRadialGradient": "nnnnnn",
    "getImageData": "nnnn",
    "putImageData": "Inn",
    "createImageData": "nn",
    "drawImage": "Cnn??",
    "isPointInPath": "nn$",
}

#: Context properties scripts may read/write.
_CTX_PROPERTIES = (
    "fillStyle",
    "strokeStyle",
    "lineWidth",
    "font",
    "textBaseline",
    "textAlign",
    "globalAlpha",
    "globalCompositeOperation",
    "shadowBlur",
    "shadowColor",
    "shadowOffsetX",
    "shadowOffsetY",
)


class JSGradient(JSObject):
    """Wrapper exposing ``addColorStop`` on a CanvasGradient."""

    js_class = "CanvasGradient"

    def __init__(self, impl: CanvasGradient) -> None:
        super().__init__()
        self.impl = impl

    def get(self, name: str) -> Any:
        if name == "addColorStop":
            def add_stop(interp, this, args):
                offset = js_to_number(args[0]) if args else 0.0
                color = js_to_string(args[1]) if len(args) > 1 else "black"
                try:
                    self.impl.add_color_stop(offset, color)
                except ValueError as exc:
                    raise JSThrow(f"IndexSizeError: {exc}")
                return UNDEFINED
            return NativeFunction(add_stop, "addColorStop")
        return super().get(name)


class JSImageData(JSObject):
    """ImageData with an indexable ``data`` view over the pixel buffer."""

    js_class = "ImageData"

    def __init__(self, impl: ImageData) -> None:
        super().__init__()
        self.impl = impl
        self._flat = impl.pixels.reshape(-1)

    def get(self, name: str) -> Any:
        if name == "width":
            return float(self.impl.width)
        if name == "height":
            return float(self.impl.height)
        if name == "data":
            return _PixelArray(self._flat)
        return super().get(name)


class _PixelArray(JSObject):
    """Uint8ClampedArray stand-in: length + integer indexing."""

    js_class = "Uint8ClampedArray"

    def __init__(self, flat) -> None:
        super().__init__()
        self._flat = flat

    def get(self, name: str) -> Any:
        if name == "length":
            return float(self._flat.shape[0])
        if name.isdigit():
            idx = int(name)
            if 0 <= idx < self._flat.shape[0]:
                return float(self._flat[idx])
            return UNDEFINED
        return super().get(name)

    def set(self, name: str, value: Any) -> None:
        if name.isdigit():
            idx = int(name)
            if 0 <= idx < self._flat.shape[0]:
                self._flat[idx] = int(max(0, min(255, js_to_number(value))))
            return
        super().set(name, value)


class JSWebGLContext(JSObject):
    """A parameter-probe-only WebGL context.

    Real fingerprinters read GPU identity strings (``UNMASKED_RENDERER_WEBGL``
    via ``WEBGL_debug_renderer_info``) next to their 2D canvas work; the
    strings here derive from the device profile, so they co-vary with the
    2D rendering differences.  No actual GL rendering is modelled — the
    paper's methodology keys on 2D extractions.
    """

    js_class = "WebGLRenderingContext"

    #: The GLenum values scripts pass to getParameter.
    VENDOR = 0x1F00
    RENDERER = 0x1F01
    VERSION = 0x1F02
    UNMASKED_VENDOR_WEBGL = 0x9245
    UNMASKED_RENDERER_WEBGL = 0x9246

    def __init__(self, device) -> None:
        super().__init__()
        self.device = device
        if device.name.startswith("apple"):
            self._vendor, self._renderer = "Apple Inc.", "Apple M1"
        elif device.name.startswith("intel"):
            self._vendor, self._renderer = (
                "Intel Open Source Technology Center",
                "Mesa Intel(R) UHD Graphics 630 (CFL GT2)",
            )
        else:
            gpu = device.hash32("gpu") % 9000
            self._vendor = "Generic GPU Vendor"
            self._renderer = f"Synthetic Renderer {gpu:04d}"
        self.set("VENDOR", float(self.VENDOR))
        self.set("RENDERER", float(self.RENDERER))
        self.set("VERSION", float(self.VERSION))
        self.set("UNMASKED_VENDOR_WEBGL", float(self.UNMASKED_VENDOR_WEBGL))
        self.set("UNMASKED_RENDERER_WEBGL", float(self.UNMASKED_RENDERER_WEBGL))

    def get(self, name: str) -> Any:
        if name == "getParameter":
            def get_parameter(interp, this, args):
                pname = int(js_to_number(args[0])) if args else 0
                if pname in (self.VENDOR, self.UNMASKED_VENDOR_WEBGL):
                    return self._vendor
                if pname in (self.RENDERER, self.UNMASKED_RENDERER_WEBGL):
                    return self._renderer
                if pname == self.VERSION:
                    return "WebGL 1.0"
                return NULL
            return NativeFunction(get_parameter, "getParameter")
        if name == "getExtension":
            def get_extension(interp, this, args):
                ext = js_to_string(args[0]) if args else ""
                if ext == "WEBGL_debug_renderer_info":
                    info = JSObject()
                    info.set("UNMASKED_VENDOR_WEBGL", float(self.UNMASKED_VENDOR_WEBGL))
                    info.set("UNMASKED_RENDERER_WEBGL", float(self.UNMASKED_RENDERER_WEBGL))
                    return info
                return NULL
            return NativeFunction(get_extension, "getExtension")
        if name == "getSupportedExtensions":
            from repro.js.values import JSArray

            return NativeFunction(
                lambda i, t, a: JSArray(["WEBGL_debug_renderer_info", "OES_texture_float"]),
                "getSupportedExtensions",
            )
        return super().get(name)


class JSCanvasElement(DOMElement):
    """A ``<canvas>`` element as seen by page JavaScript."""

    js_class = "HTMLCanvasElement"

    def __init__(
        self,
        impl: HTMLCanvasElement,
        instrument: CanvasInstrument,
        interp,
        canvas_id: int,
        document=None,
    ) -> None:
        super().__init__("canvas", document=document)
        self.impl = impl
        self.instrument = instrument
        self.interp = interp
        self.canvas_id = canvas_id
        self._js_context: Optional[JSContext2D] = None

    # -- JS surface -------------------------------------------------------------------

    def get(self, name: str) -> Any:
        if name == "width":
            return float(self.impl.width)
        if name == "height":
            return float(self.impl.height)
        if name == "getContext":
            return NativeFunction(self._js_get_context, "getContext")
        if name == "toDataURL":
            return NativeFunction(self._js_to_data_url, "toDataURL")
        return super().get(name)

    def set(self, name: str, value: Any) -> None:
        if name in ("width", "height"):
            number = js_to_number(value)
            size = int(number) if number == number else -1  # NaN -> invalid
            setattr(self.impl, name, size)
            self.instrument.record_property(
                _CANVAS_IFACE, name, size, self.interp.current_script, self.canvas_id
            )
            return
        super().set(name, value)

    # -- methods -----------------------------------------------------------------------

    def _js_get_context(self, interp, this, args):
        ctx_type = js_to_string(args[0]) if args else ""
        if ctx_type in ("webgl", "experimental-webgl"):
            self.instrument.record_call(
                _CANVAS_IFACE,
                "getContext",
                (ctx_type,),
                "WebGLRenderingContext",
                interp.current_script,
                self.canvas_id,
            )
            return JSWebGLContext(self.impl.device)
        impl_ctx = self.impl.getContext(ctx_type)
        self.instrument.record_call(
            _CANVAS_IFACE,
            "getContext",
            (ctx_type,),
            _CTX_IFACE if impl_ctx is not None else "null",
            interp.current_script,
            self.canvas_id,
        )
        if impl_ctx is None:
            return NULL
        if self._js_context is None or self._js_context.impl is not impl_ctx:
            self._js_context = JSContext2D(impl_ctx, self, self.instrument, interp)
        return self._js_context

    def _js_to_data_url(self, interp, this, args):
        mime = js_to_string(args[0]) if args and args[0] is not UNDEFINED else "image/png"
        quality = None
        if len(args) > 1 and isinstance(args[1], (int, float)):
            quality = float(args[1])
        started = time.perf_counter()
        url = self.impl.toDataURL(mime, quality)
        # Wall time of render-flush + encode: the hot path all three cache
        # layers accelerate, surfaced next to their hit rates in the report.
        perf.PERF.add_time("canvas_readout", time.perf_counter() - started)
        actual_mime = url[len("data:") : url.index(";")]
        self.instrument.record_call(
            _CANVAS_IFACE,
            "toDataURL",
            (mime,) if quality is None else (mime, quality),
            url,
            interp.current_script,
            self.canvas_id,
        )
        self.instrument.record_extraction(
            data_url=url,
            mime=actual_mime,
            width=self.impl.width,
            height=self.impl.height,
            script_url=interp.current_script,
            canvas_id=self.canvas_id,
        )
        return url


class JSContext2D(JSObject):
    """The 2D context as seen by page JavaScript (fully instrumented)."""

    js_class = "CanvasRenderingContext2D"

    def __init__(
        self,
        impl: CanvasRenderingContext2D,
        canvas: JSCanvasElement,
        instrument: CanvasInstrument,
        interp,
    ) -> None:
        super().__init__()
        self.impl = impl
        self.canvas = canvas
        self.instrument = instrument
        self.interp = interp
        self._method_cache: Dict[str, NativeFunction] = {}

    # -- JS surface ---------------------------------------------------------------------

    def get(self, name: str) -> Any:
        if name == "canvas":
            return self.canvas
        if name in _CTX_METHODS:
            fn = self._method_cache.get(name)
            if fn is None:
                fn = NativeFunction(self._make_method(name), name)
                self._method_cache[name] = fn
            return fn
        if name in _CTX_PROPERTIES:
            value = getattr(self.impl, name)
            if isinstance(value, CanvasGradient):
                return JSGradient(value)
            return value if not isinstance(value, (int, float)) else float(value)
        return super().get(name)

    def set(self, name: str, value: Any) -> None:
        if name in _CTX_PROPERTIES:
            if isinstance(value, JSGradient):
                setattr(self.impl, name, value.impl)
                preview: Any = "[CanvasGradient]"
            else:
                py_value = value if isinstance(value, (int, float, bool)) else js_to_string(value)
                setattr(self.impl, name, py_value)
                preview = py_value
            self.instrument.record_property(
                _CTX_IFACE, name, preview, self.interp.current_script, self.canvas.canvas_id
            )
            return
        super().set(name, value)

    # -- method plumbing -----------------------------------------------------------------

    def _make_method(self, name: str) -> Callable:
        signature = _CTX_METHODS[name]

        def call(interp, this, args):
            py_args = _convert_args(signature, args)
            started = time.perf_counter()
            try:
                result = getattr(self.impl, name)(*py_args)
            except ValueError as exc:
                self.instrument.record_call(
                    _CTX_IFACE, name, tuple(py_args), f"throw:{exc}", interp.current_script,
                    self.canvas.canvas_id,
                )
                raise JSThrow(str(exc))
            perf.PERF.add_time("canvas_api", time.perf_counter() - started)
            retval, js_result = self._wrap_result(name, result)
            self.instrument.record_call(
                _CTX_IFACE,
                name,
                tuple(_arg_preview(a) for a in py_args),
                retval,
                interp.current_script,
                self.canvas.canvas_id,
            )
            return js_result

        call.__name__ = name
        return call

    def _wrap_result(self, name: str, result: Any):
        if result is None:
            return None, UNDEFINED
        if name == "measureText":
            metrics = JSObject()
            metrics.set("width", float(result.width))
            metrics.set("actualBoundingBoxLeft", float(result.actual_bounding_box_left))
            metrics.set("actualBoundingBoxRight", float(result.actual_bounding_box_right))
            metrics.set("actualBoundingBoxAscent", float(result.actual_bounding_box_ascent))
            metrics.set("actualBoundingBoxDescent", float(result.actual_bounding_box_descent))
            return f"TextMetrics(width={result.width})", metrics
        if name in ("createLinearGradient", "createRadialGradient"):
            return "[CanvasGradient]", JSGradient(result)
        if name in ("getImageData", "createImageData"):
            return f"ImageData({result.width}x{result.height})", JSImageData(result)
        if isinstance(result, bool):
            return result, result
        return str(result), result


def _convert_args(signature: str, args: list) -> list:
    py_args = []
    for i, kind in enumerate(signature):
        if i >= len(args) or args[i] is UNDEFINED:
            if kind in ("?", "$"):
                continue  # optional, omitted
            if kind == "n":
                py_args.append(0.0)
            elif kind == "s":
                py_args.append("undefined")
            elif kind == "b":
                py_args.append(False)
            else:
                py_args.append(None)
            continue
        value = args[i]
        if kind in ("n", "?"):
            py_args.append(js_to_number(value))
        elif kind in ("s", "$"):
            py_args.append(js_to_string(value))
        elif kind == "b":
            from repro.js.values import js_truthy

            py_args.append(js_truthy(value))
        elif kind == "I":
            py_args.append(value.impl if isinstance(value, JSImageData) else None)
        elif kind == "C":
            py_args.append(value.impl if isinstance(value, JSCanvasElement) else None)
        else:  # pragma: no cover - defensive
            py_args.append(value)
    return py_args


def _arg_preview(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)
