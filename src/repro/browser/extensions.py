"""Ad blocker extensions.

These apply blocklist rules the way deployed blockers do (§5.2) — which is
precisely *not* how the paper's static §5.1 check applies them:

* first-party requests get a pass (the exception fingerprinters exploit by
  bundling, CNAME cloaking and subdomain routing);
* rules run with their full dynamic context (resource type, ``$document``
  modifiers, ``domain=`` restrictions), so many listed scripts still load.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.blocklists.matcher import RuleMatcher
from repro.net.http import Request
from repro.net.url import registrable_domain

__all__ = ["Extension", "AdBlockerExtension"]


class Extension:
    """Base extension: sees every subresource request before it is sent."""

    name = "extension"

    def on_request(self, request: Request) -> bool:
        """Return True to cancel (block) the request."""
        raise NotImplementedError


class AdBlockerExtension(Extension):
    """A rule-list-driven blocker (AdblockPlus / uBlock Origin analogue)."""

    def __init__(
        self,
        name: str,
        matchers: Iterable[RuleMatcher],
        honor_first_party_exception: bool = True,
        extra_matchers: Iterable[RuleMatcher] = (),
    ) -> None:
        self.name = name
        self.matchers: List[RuleMatcher] = list(matchers)
        self.extra_matchers: List[RuleMatcher] = list(extra_matchers)
        self.honor_first_party_exception = honor_first_party_exception
        self.blocked_log: List[str] = []

    def on_request(self, request: Request) -> bool:
        url = str(request.url)
        third_party = request.third_party
        # First-party exception: blockers avoid breaking the site itself.
        if self.honor_first_party_exception and not third_party:
            return False
        page_domain = (
            registrable_domain(request.document_url.host) if request.document_url is not None else None
        )
        for matcher in list(self.matchers) + list(self.extra_matchers):
            if matcher.should_block(
                url,
                resource_type=request.resource_type.value,
                third_party=third_party,
                page_domain=page_domain,
            ):
                self.blocked_log.append(url)
                return True
        return False
