"""The page-load pipeline.

``Browser.load(url)`` fetches the document over the synthetic network,
scans it for scripts, and executes them in order in a fresh JS realm wired
with ``window`` / ``document`` / ``navigator`` and an instrumented canvas
factory.  Extensions see every subresource request; script errors are
contained per-script like a real browser.

Deferred script groups model crawler-relevant behaviors:

* ``data-consent="required"`` scripts only run after a consent banner
  opt-in (the crawler's autoconsent triggers this);
* ``data-trigger="scroll"`` scripts only run when the page is scrolled
  (the crawler's behavior simulation triggers this).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.browser.bindings import JSCanvasElement
from repro.browser.instrumentation import CanvasInstrument, VirtualClock
from repro.browser.privacy import RandomizationState, make_extraction_filter
from repro.browser.profile import BrowserProfile
from repro.canvas.element import HTMLCanvasElement
from repro.dom.document import Document
from repro.dom.html import ScriptRef, parse_html
from repro.dom.window import make_navigator, make_screen, make_window
from repro.js.errors import JSError, JSThrow
from repro.js.interpreter import Interpreter
from repro.js.static import verdict_for_source
from repro import perf
from repro.net.http import Request, ResourceType
from repro.net.server import Network
from repro.net.url import URL
from repro.obs import profiler

__all__ = ["Browser", "Page"]


@dataclass
class Page:
    """Everything a single page load produced."""

    url: URL
    ok: bool
    status: int = 0
    title: str = ""
    instrument: CanvasInstrument = field(default_factory=CanvasInstrument)
    document: Optional[Document] = None
    blocked_urls: List[str] = field(default_factory=list)
    script_errors: List[str] = field(default_factory=list)
    #: (url, status, error) for every subresource whose fetch failed — status 0
    #: for connection/DNS errors, with ``error`` naming the cause (``"dns"``
    #: for a nonexistent host, ``"connection"`` for a transient failure).
    #: The collector classifies these transient/permanent.
    subresource_failures: List[Tuple[str, int, Optional[str]]] = field(default_factory=list)
    #: Script URLs whose body arrived shorter than the declared
    #: content-length (a transfer cut mid-flight); never executed.
    truncated_scripts: List[str] = field(default_factory=list)
    executed_scripts: List[str] = field(default_factory=list)
    #: script_url -> source, for every script that actually executed.
    script_sources: Dict[str, str] = field(default_factory=dict)
    #: (script_url, error_type) for scripts whose *parse* blew up in a way
    #: the interpreter cannot contain (e.g. RecursionError on pathological
    #: nesting).  The script is recorded and skipped; siblings still run.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    console: List[str] = field(default_factory=list)
    has_consent_banner: bool = False
    _pending: Dict[str, List[Tuple[Optional[str], str]]] = field(default_factory=dict)
    _browser: Optional["Browser"] = None
    _interp: Optional[Interpreter] = None
    #: How many inline scripts this page has executed (for #inline-N keys).
    _inline_seq: int = 0
    #: Triage state: scripts proven inert+effect-free, deferred instead of
    #: executed, with the union of the globals they would write.
    _deferred: List[Tuple[str, str]] = field(default_factory=list)
    _deferred_writes: Set[str] = field(default_factory=set)
    #: Union of shared-namespace reads of every script executed so far (and
    #: whether any of them reads an unbounded set of globals).
    _executed_reads: Set[str] = field(default_factory=set)
    _executed_reads_top: bool = False

    @property
    def skipped_scripts(self) -> List[str]:
        """Scripts currently deferred by triage (skipped for good unless a
        later script forces a flush)."""
        return [url for url, _source in self._deferred]

    def pending_count(self, group: str) -> int:
        return len(self._pending.get(group, []))

    @property
    def elapsed_ms(self) -> float:
        """Virtual time this page load has consumed (clock + response latency)."""
        return self.instrument.clock.now_ms()

    def trigger(self, group: str) -> int:
        """Run a deferred script group ("consent" / "scroll"); returns count run."""
        pending = self._pending.pop(group, [])
        for script_url, source in pending:
            assert self._browser is not None and self._interp is not None
            self._browser._execute(self, self._interp, script_url, source)
        return len(pending)


class Browser:
    """A scriptable browser over the synthetic network."""

    def __init__(
        self,
        network: Network,
        profile: Optional[BrowserProfile] = None,
        js_step_budget: Optional[int] = None,
        js_compile: Optional[bool] = None,
        static_triage: Optional[bool] = None,
    ) -> None:
        self.network = network
        self.profile = profile or BrowserProfile()
        #: Per-page interpreter step cap; the crawler's page watchdog maps
        #: exhaustion to a ``timeout`` failure instead of hanging on a
        #: runaway script.  None keeps the interpreter default.
        self.js_step_budget = js_step_budget
        #: Execute scripts through the closure compiler (None = honour
        #: REPRO_JS_COMPILE).  Both modes produce identical pages; the
        #: compiled one shares lowered programs process-wide.
        self.js_compile = js_compile
        #: Skip execution of scripts the static analyzer proves canvas-inert
        #: and invisible to every other script on the page (None = honour
        #: REPRO_JS_STATIC_TRIAGE).  Pages and datasets are byte-identical
        #: either way; the skip only saves interpreter time.
        if static_triage is None:
            static_triage = os.environ.get("REPRO_JS_STATIC_TRIAGE", "").strip().lower() in (
                "1", "true", "on", "yes"
            )
        self.static_triage = bool(static_triage)
        self._randomization = RandomizationState(self.profile.session_seed)
        #: Parse cache shared across page loads: each script URL+source is
        #: parsed once per browser, a large win when thousands of sites embed
        #: the same vendor script.
        self._ast_cache: Dict = {}

    # -- page loading -------------------------------------------------------------------

    def load(self, url: "URL | str") -> Page:
        if isinstance(url, str):
            url = URL.parse(url)

        response = self.network.fetch(Request(url=url, resource_type=ResourceType.DOCUMENT))
        page = Page(url=url, ok=response.ok, status=response.status)
        if not response.ok:
            return page

        clock = VirtualClock()
        page.instrument = CanvasInstrument(clock)
        if response.latency_ms:
            clock.advance(response.latency_ms)

        interp = Interpreter(
            step_budget=self.js_step_budget or Interpreter.DEFAULT_STEP_BUDGET,
            ast_cache=self._ast_cache,
            js_compile=self.js_compile,
        )
        canvas_counter = {"next": 0}
        document = Document(url=str(url))
        page.document = document

        def canvas_factory():
            canvas_counter["next"] += 1
            impl = HTMLCanvasElement(device=self.profile.device)
            impl.extraction_filter = make_extraction_filter(
                self.profile.privacy_mode, self._randomization
            )
            return JSCanvasElement(
                impl, page.instrument, interp, canvas_counter["next"], document=document
            )

        document.canvas_factory = canvas_factory

        navigator = make_navigator(self.profile.device.name, webdriver=self.profile.expose_webdriver)
        screen = make_screen()
        window = make_window(document, navigator, screen, clock)
        interp.define_global("window", window)
        interp.define_global("document", document)
        interp.define_global("navigator", navigator)
        interp.define_global("screen", screen)
        interp.define_global("location", window)
        interp.define_global("performance", window.get("performance"))
        interp.define_global("setTimeout", window.get("setTimeout"))
        interp.define_global("addEventListener", window.get("addEventListener"))

        page._browser = self
        page._interp = interp

        structure = parse_html(response.body)
        page.title = structure.title
        page.has_consent_banner = structure.has_consent_banner

        for ref in structure.scripts:
            self._process_script_tag(page, interp, ref)

        page.console = interp.console_log
        return page

    # -- script execution ------------------------------------------------------------------

    def _process_script_tag(self, page: Page, interp: Interpreter, ref: ScriptRef) -> None:
        group = None
        if ref.attr("data-consent") == "required":
            group = "consent"
        elif ref.attr("data-trigger") == "scroll":
            group = "scroll"

        if ref.is_inline:
            script_url, source = None, ref.source
        else:
            resolved = page.url.join(ref.src)
            request = Request(
                url=resolved, resource_type=ResourceType.SCRIPT, document_url=page.url
            )
            for extension in self.profile.extensions:
                if extension.on_request(request):
                    page.blocked_urls.append(str(resolved))
                    return
            response = self.network.fetch(request)
            if response.latency_ms:
                page.instrument.clock.advance(response.latency_ms)
            if not response.ok:
                page.script_errors.append(f"fetch failed ({response.status}): {resolved}")
                page.subresource_failures.append(
                    (str(resolved), response.status, response.error)
                )
                return
            declared = response.headers.get("content-length")
            if declared is not None and int(declared) != len(response.body):
                page.script_errors.append(f"truncated body: {resolved}")
                page.truncated_scripts.append(str(resolved))
                return
            script_url, source = str(resolved), response.body

        if group is not None:
            page._pending.setdefault(group, []).append((script_url, source))
            return
        self._execute(page, interp, script_url, source)

    def _execute(self, page: Page, interp: Interpreter, script_url: Optional[str], source: str) -> None:
        if script_url is not None:
            effective_url = script_url
        else:
            # Inline scripts get per-page sequence keys so siblings never
            # collide in script_sources (the first keeps the historical
            # bare "#inline" key).
            page._inline_seq += 1
            suffix = "#inline" if page._inline_seq == 1 else f"#inline-{page._inline_seq}"
            effective_url = f"{page.url}{suffix}"
        page.executed_scripts.append(effective_url)
        page.script_sources[effective_url] = source

        if self.static_triage and self._triage(page, interp, effective_url, source):
            return
        self._run_script(page, interp, effective_url, source)

    def _triage(self, page: Page, interp: Interpreter, effective_url: str, source: str) -> bool:
        """Decide whether this script can be skipped; True means skipped.

        A script is deferred (and, unless a later script forces a flush,
        never executed) only when the static analyzer proved it canvas-inert,
        throw-free, terminating, and pure toward the host — so the only trace
        it could leave is its global writes — AND no already-executed script
        reads any of those globals (a callback registered earlier could fire
        later).  Conversely, before *running* a script that may read a
        deferred script's writes, every deferred script is flushed in
        document order, restoring exactly the original execution.
        """
        verdict = verdict_for_source(source, effective_url)
        if (
            verdict.skippable
            and not verdict.global_reads
            and not page._executed_reads_top
            and not (set(verdict.global_writes) & page._executed_reads)
        ):
            page._deferred.append((effective_url, source))
            page._deferred_writes.update(verdict.global_writes)
            perf.PERF.hit("js.static.triage")
            return True

        unbounded = verdict.reads_top or verdict.parse_error is not None
        if page._deferred and (unbounded or (set(verdict.global_reads) & page._deferred_writes)):
            self._flush_deferred(page, interp)
        page._executed_reads.update(verdict.global_reads)
        page._executed_reads_top = page._executed_reads_top or unbounded
        perf.PERF.miss("js.static.triage")
        return False

    def _flush_deferred(self, page: Page, interp: Interpreter) -> None:
        """Execute every deferred script, in original document order."""
        pending, page._deferred = page._deferred, []
        page._deferred_writes = set()
        for url, source in pending:
            perf.PERF.evict("js.static.triage")
            self._run_script(page, interp, url, source)

    def _run_script(self, page: Page, interp: Interpreter, effective_url: str, source: str) -> None:
        try:
            if profiler.ACTIVE:
                # Tag profiler samples with the executing script so
                # self-time attributes per vendor script.  Guarded by the
                # flag: with the profiler off this is one branch.
                with profiler.context("script", effective_url):
                    interp.run(
                        source,
                        script_url=effective_url,
                        cache_key=(effective_url, hash(source)),
                    )
            else:
                interp.run(
                    source, script_url=effective_url, cache_key=(effective_url, hash(source))
                )
        except JSError as exc:
            page.script_errors.append(f"{effective_url}: {exc.message}")
        except (JSThrow, RecursionError) as exc:
            # A parse blow-up the interpreter could not contain (deeply
            # nested expressions overrunning Python's recursion limit, or a
            # throw escaping the engine).  One malformed script must not
            # hide its siblings from the dynamic and static passes.
            kind = type(exc).__name__
            page.parse_errors.append((effective_url, kind))
            page.script_errors.append(f"{effective_url}: parse error: {kind}")
