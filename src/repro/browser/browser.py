"""The page-load pipeline.

``Browser.load(url)`` fetches the document over the synthetic network,
scans it for scripts, and executes them in order in a fresh JS realm wired
with ``window`` / ``document`` / ``navigator`` and an instrumented canvas
factory.  Extensions see every subresource request; script errors are
contained per-script like a real browser.

Deferred script groups model crawler-relevant behaviors:

* ``data-consent="required"`` scripts only run after a consent banner
  opt-in (the crawler's autoconsent triggers this);
* ``data-trigger="scroll"`` scripts only run when the page is scrolled
  (the crawler's behavior simulation triggers this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.browser.bindings import JSCanvasElement
from repro.browser.instrumentation import CanvasInstrument, VirtualClock
from repro.browser.privacy import RandomizationState, make_extraction_filter
from repro.browser.profile import BrowserProfile
from repro.canvas.element import HTMLCanvasElement
from repro.dom.document import Document
from repro.dom.html import ScriptRef, parse_html
from repro.dom.window import make_navigator, make_screen, make_window
from repro.js.errors import JSError
from repro.js.interpreter import Interpreter
from repro.net.http import Request, ResourceType
from repro.net.server import Network
from repro.net.url import URL
from repro.obs import profiler

__all__ = ["Browser", "Page"]


@dataclass
class Page:
    """Everything a single page load produced."""

    url: URL
    ok: bool
    status: int = 0
    title: str = ""
    instrument: CanvasInstrument = field(default_factory=CanvasInstrument)
    document: Optional[Document] = None
    blocked_urls: List[str] = field(default_factory=list)
    script_errors: List[str] = field(default_factory=list)
    #: (url, status, error) for every subresource whose fetch failed — status 0
    #: for connection/DNS errors, with ``error`` naming the cause (``"dns"``
    #: for a nonexistent host, ``"connection"`` for a transient failure).
    #: The collector classifies these transient/permanent.
    subresource_failures: List[Tuple[str, int, Optional[str]]] = field(default_factory=list)
    #: Script URLs whose body arrived shorter than the declared
    #: content-length (a transfer cut mid-flight); never executed.
    truncated_scripts: List[str] = field(default_factory=list)
    executed_scripts: List[str] = field(default_factory=list)
    #: script_url -> source, for every script that actually executed.
    script_sources: Dict[str, str] = field(default_factory=dict)
    console: List[str] = field(default_factory=list)
    has_consent_banner: bool = False
    _pending: Dict[str, List[Tuple[Optional[str], str]]] = field(default_factory=dict)
    _browser: Optional["Browser"] = None
    _interp: Optional[Interpreter] = None

    def pending_count(self, group: str) -> int:
        return len(self._pending.get(group, []))

    @property
    def elapsed_ms(self) -> float:
        """Virtual time this page load has consumed (clock + response latency)."""
        return self.instrument.clock.now_ms()

    def trigger(self, group: str) -> int:
        """Run a deferred script group ("consent" / "scroll"); returns count run."""
        pending = self._pending.pop(group, [])
        for script_url, source in pending:
            assert self._browser is not None and self._interp is not None
            self._browser._execute(self, self._interp, script_url, source)
        return len(pending)


class Browser:
    """A scriptable browser over the synthetic network."""

    def __init__(
        self,
        network: Network,
        profile: Optional[BrowserProfile] = None,
        js_step_budget: Optional[int] = None,
        js_compile: Optional[bool] = None,
    ) -> None:
        self.network = network
        self.profile = profile or BrowserProfile()
        #: Per-page interpreter step cap; the crawler's page watchdog maps
        #: exhaustion to a ``timeout`` failure instead of hanging on a
        #: runaway script.  None keeps the interpreter default.
        self.js_step_budget = js_step_budget
        #: Execute scripts through the closure compiler (None = honour
        #: REPRO_JS_COMPILE).  Both modes produce identical pages; the
        #: compiled one shares lowered programs process-wide.
        self.js_compile = js_compile
        self._randomization = RandomizationState(self.profile.session_seed)
        #: Parse cache shared across page loads: each script URL+source is
        #: parsed once per browser, a large win when thousands of sites embed
        #: the same vendor script.
        self._ast_cache: Dict = {}

    # -- page loading -------------------------------------------------------------------

    def load(self, url: "URL | str") -> Page:
        if isinstance(url, str):
            url = URL.parse(url)

        response = self.network.fetch(Request(url=url, resource_type=ResourceType.DOCUMENT))
        page = Page(url=url, ok=response.ok, status=response.status)
        if not response.ok:
            return page

        clock = VirtualClock()
        page.instrument = CanvasInstrument(clock)
        if response.latency_ms:
            clock.advance(response.latency_ms)

        interp = Interpreter(
            step_budget=self.js_step_budget or Interpreter.DEFAULT_STEP_BUDGET,
            ast_cache=self._ast_cache,
            js_compile=self.js_compile,
        )
        canvas_counter = {"next": 0}
        document = Document(url=str(url))
        page.document = document

        def canvas_factory():
            canvas_counter["next"] += 1
            impl = HTMLCanvasElement(device=self.profile.device)
            impl.extraction_filter = make_extraction_filter(
                self.profile.privacy_mode, self._randomization
            )
            return JSCanvasElement(
                impl, page.instrument, interp, canvas_counter["next"], document=document
            )

        document.canvas_factory = canvas_factory

        navigator = make_navigator(self.profile.device.name, webdriver=self.profile.expose_webdriver)
        screen = make_screen()
        window = make_window(document, navigator, screen, clock)
        interp.define_global("window", window)
        interp.define_global("document", document)
        interp.define_global("navigator", navigator)
        interp.define_global("screen", screen)
        interp.define_global("location", window)
        interp.define_global("performance", window.get("performance"))
        interp.define_global("setTimeout", window.get("setTimeout"))
        interp.define_global("addEventListener", window.get("addEventListener"))

        page._browser = self
        page._interp = interp

        structure = parse_html(response.body)
        page.title = structure.title
        page.has_consent_banner = structure.has_consent_banner

        for ref in structure.scripts:
            self._process_script_tag(page, interp, ref)

        page.console = interp.console_log
        return page

    # -- script execution ------------------------------------------------------------------

    def _process_script_tag(self, page: Page, interp: Interpreter, ref: ScriptRef) -> None:
        group = None
        if ref.attr("data-consent") == "required":
            group = "consent"
        elif ref.attr("data-trigger") == "scroll":
            group = "scroll"

        if ref.is_inline:
            script_url, source = None, ref.source
        else:
            resolved = page.url.join(ref.src)
            request = Request(
                url=resolved, resource_type=ResourceType.SCRIPT, document_url=page.url
            )
            for extension in self.profile.extensions:
                if extension.on_request(request):
                    page.blocked_urls.append(str(resolved))
                    return
            response = self.network.fetch(request)
            if response.latency_ms:
                page.instrument.clock.advance(response.latency_ms)
            if not response.ok:
                page.script_errors.append(f"fetch failed ({response.status}): {resolved}")
                page.subresource_failures.append(
                    (str(resolved), response.status, response.error)
                )
                return
            declared = response.headers.get("content-length")
            if declared is not None and int(declared) != len(response.body):
                page.script_errors.append(f"truncated body: {resolved}")
                page.truncated_scripts.append(str(resolved))
                return
            script_url, source = str(resolved), response.body

        if group is not None:
            page._pending.setdefault(group, []).append((script_url, source))
            return
        self._execute(page, interp, script_url, source)

    def _execute(self, page: Page, interp: Interpreter, script_url: Optional[str], source: str) -> None:
        effective_url = script_url if script_url is not None else f"{page.url}#inline"
        page.executed_scripts.append(effective_url)
        page.script_sources[effective_url] = source
        try:
            if profiler.ACTIVE:
                # Tag profiler samples with the executing script so
                # self-time attributes per vendor script.  Guarded by the
                # flag: with the profiler off this is one branch.
                with profiler.context("script", effective_url):
                    interp.run(
                        source,
                        script_url=effective_url,
                        cache_key=(effective_url, hash(source)),
                    )
            else:
                interp.run(
                    source, script_url=effective_url, cache_key=(effective_url, hash(source))
                )
        except JSError as exc:
            page.script_errors.append(f"{effective_url}: {exc.message}")
