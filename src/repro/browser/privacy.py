"""Canvas randomization defenses (§5.3).

Two real-world designs are modelled:

* ``PER_RENDER`` — fresh noise on every read-out (Canvas Defender-style
  extensions).  Detectable by the render-twice inconsistency check
  (Algorithm 1): two extractions of the same canvas differ.
* ``PER_SESSION`` — noise seeded once per browsing session (Firefox-style,
  footnote 7).  Two extractions agree, so the render-twice check is blind
  to it, while the fingerprint still differs across sessions.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

import numpy as np

__all__ = ["CanvasRandomization", "RandomizationState", "make_extraction_filter"]


class CanvasRandomization(str, enum.Enum):
    NONE = "none"
    PER_RENDER = "per-render"
    PER_SESSION = "per-session"


class RandomizationState:
    """Per-browser-session state for the noise source."""

    def __init__(self, session_seed: int) -> None:
        self.session_seed = int(session_seed)
        self.readout_counter = 0


def make_extraction_filter(
    mode: CanvasRandomization, state: RandomizationState
) -> Optional[Callable[[np.ndarray], np.ndarray]]:
    """Build the extraction filter to install on canvas elements."""
    if mode is CanvasRandomization.NONE:
        return None

    def add_noise(pixels: np.ndarray) -> np.ndarray:
        if mode is CanvasRandomization.PER_RENDER:
            state.readout_counter += 1
            seed = (state.session_seed * 1_000_003 + state.readout_counter) & 0xFFFFFFFF
        else:
            seed = state.session_seed & 0xFFFFFFFF
        rng = np.random.default_rng(seed)
        out = pixels.copy()
        # Flip the low bit of ~3% of RGB channel values on drawn pixels only
        # (noising fully transparent pixels would be trivially detectable).
        drawn = out[..., 3] > 0
        if drawn.any():
            mask = rng.random(out.shape[:2]) < 0.03
            mask &= drawn
            channel = rng.integers(0, 3, size=out.shape[:2])
            ys, xs = np.nonzero(mask)
            out[ys, xs, channel[ys, xs]] ^= 1
        return out

    return add_noise
