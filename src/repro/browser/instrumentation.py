"""Canvas API interception.

The analogue of the paper's modified Tracker Radar Collector: every method
call and property write on ``CanvasRenderingContext2D`` and
``HTMLCanvasElement`` host objects flows through a :class:`CanvasInstrument`,
tagged with the executing script's URL (taken live from the JS interpreter)
and a virtual timestamp.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.records import CanvasApiCall, CanvasExtraction, PropertyAccess

__all__ = ["VirtualClock", "CanvasInstrument"]


def _pair_surrogates(text: str) -> str:
    """Combine UTF-16 surrogate pairs into the code points they encode.

    JS strings are sequences of UTF-16 code units, so an emoji drawn via
    ``'\\ud83d\\ude03'`` reaches the instrument as two surrogate code units.
    JSON text cannot distinguish that from the single astral character (the
    escape sequences *are* the pair encoding), so previews must be
    normalized here or a dataset would change when round-tripped through a
    checkpoint or cache file.  Lone surrogates are kept as-is; they survive
    JSON round-trips unchanged.
    """
    if not any("\ud800" <= ch <= "\udbff" for ch in text):
        return text
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if "\ud800" <= ch <= "\udbff" and i + 1 < len(text):
            low = text[i + 1]
            if "\udc00" <= low <= "\udfff":
                code = 0x10000 + ((ord(ch) - 0xD800) << 10) + (ord(low) - 0xDC00)
                out.append(chr(code))
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


class VirtualClock:
    """Deterministic per-page clock; each recorded event advances it."""

    def __init__(self, start_ms: float = 0.0, tick_ms: float = 0.137) -> None:
        self._now = start_ms
        self.tick_ms = tick_ms

    def now_ms(self) -> float:
        return round(self._now, 3)

    def advance(self, ms: Optional[float] = None) -> float:
        self._now += self.tick_ms if ms is None else ms
        return self.now_ms()


class CanvasInstrument:
    """Collects canvas observations for one page load."""

    #: Cap on per-argument preview size, like the real collector's truncation.
    ARG_PREVIEW = 120

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock or VirtualClock()
        self.calls: List[CanvasApiCall] = []
        self.property_accesses: List[PropertyAccess] = []
        self.extractions: List[CanvasExtraction] = []

    # -- recording -------------------------------------------------------------------

    def record_call(
        self,
        interface: str,
        method: str,
        args: tuple,
        retval: Any,
        script_url: Optional[str],
        canvas_id: int,
    ) -> None:
        self.calls.append(
            CanvasApiCall(
                interface=interface,
                method=method,
                args=tuple(self._preview(a) for a in args),
                retval=self._preview(retval) if retval is not None else None,
                script_url=script_url,
                canvas_id=canvas_id,
                t_ms=self.clock.advance(),
            )
        )

    def record_property(
        self,
        interface: str,
        prop: str,
        value: Any,
        script_url: Optional[str],
        canvas_id: int,
    ) -> None:
        self.property_accesses.append(
            PropertyAccess(
                interface=interface,
                prop=prop,
                value=self._preview(value),
                script_url=script_url,
                canvas_id=canvas_id,
                t_ms=self.clock.advance(),
            )
        )

    def record_extraction(
        self,
        data_url: str,
        mime: str,
        width: int,
        height: int,
        script_url: Optional[str],
        canvas_id: int,
        method: str = "toDataURL",
    ) -> None:
        self.extractions.append(
            CanvasExtraction(
                data_url=data_url,
                mime=mime,
                width=width,
                height=height,
                script_url=script_url,
                canvas_id=canvas_id,
                t_ms=self.clock.advance(),
                method=method,
            )
        )

    # -- helpers ----------------------------------------------------------------------

    def _preview(self, value: Any) -> Any:
        """JSON-able, truncated preview of a call argument / return value."""
        if isinstance(value, (bool, int, float)) or value is None:
            return value
        text = _pair_surrogates(str(value))
        if len(text) > self.ARG_PREVIEW:
            return text[: self.ARG_PREVIEW] + f"...<{len(text)} chars>"
        return text

    def scripts_calling(self, method: str) -> set:
        return {c.script_url for c in self.calls if c.method == method}
