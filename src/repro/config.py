"""Calibration targets taken verbatim from the paper.

Every number the paper reports — prevalence percentages, per-vendor site
counts, blocklist coverage, evasion rates — lives here in one frozen
dataclass so that (a) the synthetic-web generator can derive adoption
probabilities from it and (b) ``EXPERIMENTS.md`` can diff measured values
against it.  Nothing else in the code base hard-codes a paper number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class VendorTargets:
    """Table 1 row: sites linked to one fingerprinting vendor.

    ``top`` / ``tail`` are the absolute site counts the paper reports among
    fingerprinting sites in each population.  ``security`` marks the vendors
    the paper bolds as security applications.
    """

    name: str
    top: int
    tail: int
    security: bool = False


#: Table 1 of the paper, in the paper's row order.
TABLE1_VENDORS: Tuple[VendorTargets, ...] = (
    VendorTargets("Akamai", 485, 205, security=True),
    VendorTargets("FingerprintJS", 462, 298, security=False),
    VendorTargets("mail.ru", 242, 173, security=False),
    VendorTargets("FingerprintJS (legacy)", 179, 90, security=False),
    VendorTargets("Imperva", 49, 13, security=True),
    VendorTargets("AWS Firewall", 48, 14, security=True),
    VendorTargets("InsurAds", 40, 1, security=False),
    VendorTargets("Signifyd", 39, 18, security=True),
    VendorTargets("PerimeterX", 35, 2, security=True),
    VendorTargets("Sift Science", 31, 8, security=True),
    VendorTargets("Shopify", 32, 457, security=False),
    VendorTargets("Adscore", 25, 30, security=True),
    VendorTargets("GeeTest", 1, 0, security=True),
)


@dataclass(frozen=True)
class PaperTargets:
    """All quantitative results of the paper, used for calibration/diffing."""

    # --- §3 crawl populations -------------------------------------------------
    top_sites_crawled: int = 20_000
    tail_sites_crawled: int = 20_000
    top_sites_success: int = 16_276
    tail_sites_success: int = 17_260
    tail_rank_min: int = 20_001
    tail_rank_max: int = 1_000_000
    tail_observed_min_rank: int = 20_025
    tail_observed_max_rank: int = 997_854

    # --- §4.1 prevalence -------------------------------------------------------
    top_fp_sites: int = 2_067            # 12.7% of successful popular sites
    tail_fp_sites: int = 1_715           # 9.9% of successful tail sites
    mean_canvases_per_fp_site: float = 3.31
    median_canvases_per_fp_site: int = 2
    max_canvases_per_fp_site: int = 60

    # --- §3.2 detection --------------------------------------------------------
    fingerprintable_fraction: float = 0.83   # of all extracted canvases
    webp_check_sites_top: int = 306
    small_canvas_sites_top: int = 216
    fully_excluded_sites_top: int = 155
    fully_excluded_sites_tail: int = 138

    # --- §4.2 reach ------------------------------------------------------------
    unique_canvases_top: int = 504
    unique_canvases_tail: int = 288
    top_canvas_max_sites: int = 483          # most popular canvas, popular sites
    shopify_canvas_tail_sites: int = 457     # Table 1 row; Figure 1 outlier ~454
    shopify_canvas_top_sites: int = 32
    top6_share_top: float = 0.701            # of popular FP sites
    top6_share_tail: float = 0.471
    tail_overlap_fraction: float = 0.914     # tail FP sites sharing a top canvas
    largest_tail_only_group: int = 15
    second_tail_only_group: int = 3

    # --- §4.3 attribution (Table 1) ---------------------------------------------
    vendors: Tuple[VendorTargets, ...] = TABLE1_VENDORS
    vendor_total_top: int = 1_513            # 73% of popular FP sites
    vendor_total_tail: int = 1_222           # 71% of tail FP sites
    fpjs_commercial_top: int = 23
    fpjs_commercial_tail: int = 10

    # --- §5.1 / Table 4 blocklist coverage (canvas counts) -----------------------
    total_canvases_top: int = 6_037
    total_canvases_tail: int = 4_422
    easylist_canvases: Tuple[int, int] = (1_869, 1_179)
    easyprivacy_canvases: Tuple[int, int] = (2_157, 1_340)
    disconnect_canvases: Tuple[int, int] = (1_251, 833)
    any_blocklist_canvases: Tuple[int, int] = (2_696, 1_635)
    all_blocklists_canvases: Tuple[int, int] = (942, 670)

    # --- §5.2 / Table 2 ad blocker crawls ----------------------------------------
    adblock_plus_canvases: Tuple[int, int] = (5_834, 4_228)
    ublock_canvases: Tuple[int, int] = (5_776, 4_175)
    adblock_plus_sites: Tuple[int, int] = (1_948, 1_656)
    ublock_sites: Tuple[int, int] = (1_976, 1_651)

    # --- §5.2 evasion (fractions of FP sites) ------------------------------------
    first_party_fraction: Tuple[float, float] = (0.49, 0.52)
    subdomain_fraction: Tuple[float, float] = (0.095, 0.021)
    cdn_fraction: Tuple[float, float] = (0.021, 0.019)

    # --- §5.3 randomization detection ---------------------------------------------
    render_twice_fraction: float = 0.45

    # Derived conveniences -----------------------------------------------------
    @property
    def top_prevalence(self) -> float:
        """Fraction of successfully crawled popular sites that fingerprint."""
        return self.top_fp_sites / self.top_sites_success

    @property
    def tail_prevalence(self) -> float:
        """Fraction of successfully crawled tail sites that fingerprint."""
        return self.tail_fp_sites / self.tail_sites_success

    def vendor(self, name: str) -> VendorTargets:
        """Look up a Table 1 vendor row by name."""
        for v in self.vendors:
            if v.name == name:
                return v
        raise KeyError(name)


#: Module-level default used throughout the code base.
PAPER = PaperTargets()


@dataclass(frozen=True)
class StudyScale:
    """Scale factor applied to the crawl populations.

    The paper crawls 20k + 20k homepages.  Benchmarks and examples use a
    reduced scale so they complete in seconds; ``fraction=1.0`` reproduces the
    full study.  All *rates* are scale-invariant; absolute counts shrink
    proportionally.
    """

    fraction: float = 1.0
    seed: int = 20250504

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"scale fraction must be in (0, 1], got {self.fraction}")

    @property
    def top_sites(self) -> int:
        return max(1, round(PAPER.top_sites_crawled * self.fraction))

    @property
    def tail_sites(self) -> int:
        return max(1, round(PAPER.tail_sites_crawled * self.fraction))


FULL_SCALE = StudyScale(fraction=1.0)
BENCH_SCALE = StudyScale(fraction=0.05)
