"""Perf counters and bounded caches for the render hot path.

The render-acceleration subsystem (whole-canvas render cache, glyph atlas,
path coverage-mask cache, encode memoization) shares three pieces of
machinery that live here so every layer reports wins the same way:

* :class:`PerfCounters` — cheap per-layer hit/miss/eviction counters and
  timers.  A process-global instance (:data:`PERF`) accumulates across every
  canvas in the process; shard workers snapshot it and the parent merges the
  snapshots, so counters survive the multiprocessing boundary.
* :class:`RenderCacheConfig` — the tuning knobs (per-layer byte budgets and
  a global enable switch), picklable so shard workers inherit the parent's
  configuration.
* :class:`ByteBudgetLRU` — an exact-key LRU bounded by a byte budget rather
  than an entry count, instrumented against :data:`PERF`.

Caches register themselves at import time so :func:`configure` can resize
them and tests can :func:`reset_caches` for a cold start.  All caches are
*exactly transparent*: keys are full tuples of the inputs (no lossy
digests of semantic state), so a hit can only ever return what a cold
render would have produced.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional

__all__ = [
    "layer_seconds",
    "PerfCounters",
    "RenderCacheConfig",
    "ByteBudgetLRU",
    "PERF",
    "config",
    "configure",
    "current_config",
    "reset_caches",
    "reset_all",
    "diff_snapshots",
]

_MB = 1024 * 1024

#: Counter field names tracked per layer, in snapshot order.
_FIELDS = ("hits", "misses", "evictions", "hit_seconds", "miss_seconds", "entries", "bytes")


@dataclass(frozen=True)
class RenderCacheConfig:
    """Tuning knobs for the render-acceleration caches.

    ``enabled`` gates every layer at once (the transparency tests compare
    enabled vs disabled runs byte-for-byte).  Budgets are per cache, in
    bytes; a cache evicts least-recently-used entries once its resident
    values exceed the budget.
    """

    enabled: bool = True
    #: Whole-canvas pixel snapshots (float64 RGBA — the costliest values).
    render_cache_bytes: int = 256 * _MB
    #: Glyph masks and shaped text-run masks.
    glyph_cache_bytes: int = 64 * _MB
    #: Winding-rule coverage masks for filled/stroked paths.
    path_cache_bytes: int = 64 * _MB
    #: Encoded PNG/JPEG/WebP payloads keyed by pixel digest.
    encode_cache_bytes: int = 64 * _MB
    #: Compiled JS programs keyed by source digest + engine version
    #: (:mod:`repro.js.compiler`).  Execution mode itself is gated by
    #: ``REPRO_JS_COMPILE``, not by ``enabled``.
    js_cache_bytes: int = 64 * _MB
    #: Static-analysis verdicts keyed by source digest + analyzer version
    #: (:mod:`repro.js.static`).  Triage itself is gated by
    #: ``REPRO_JS_STATIC_TRIAGE``, not by ``enabled``.
    static_cache_bytes: int = 16 * _MB

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None) -> "RenderCacheConfig":
        """Build a config from ``REPRO_RENDER_CACHE*`` environment variables.

        ``REPRO_RENDER_CACHE=0`` disables every layer;
        ``REPRO_RENDER_CACHE_<LAYER>_MB`` overrides a budget (e.g.
        ``REPRO_RENDER_CACHE_RENDER_MB=512``).
        """
        env = os.environ if env is None else env
        kwargs: Dict[str, Any] = {}
        toggle = env.get("REPRO_RENDER_CACHE")
        if toggle is not None:
            kwargs["enabled"] = toggle.strip().lower() not in ("0", "false", "off", "no")
        for name in ("render", "glyph", "path", "encode", "js", "static"):
            raw = env.get(f"REPRO_RENDER_CACHE_{name.upper()}_MB")
            if raw is not None:
                try:
                    kwargs[f"{name}_cache_bytes"] = max(0, int(float(raw) * _MB))
                except ValueError:
                    pass
        return cls(**kwargs)

    def budget(self, attr: str) -> int:
        return int(getattr(self, attr))


class PerfCounters:
    """Per-layer hit/miss/eviction counters and timers.

    Layers are created lazily; recording a hit or miss is a couple of dict
    operations, cheap enough for the per-draw-op hot path.
    """

    def __init__(self) -> None:
        self._layers: Dict[str, Dict[str, float]] = {}

    def layer(self, name: str) -> Dict[str, float]:
        bucket = self._layers.get(name)
        if bucket is None:
            bucket = {f: 0.0 for f in _FIELDS}
            self._layers[name] = bucket
        return bucket

    def hit(self, name: str, seconds: float = 0.0) -> None:
        bucket = self.layer(name)
        bucket["hits"] += 1
        bucket["hit_seconds"] += seconds

    def miss(self, name: str, seconds: float = 0.0) -> None:
        bucket = self.layer(name)
        bucket["misses"] += 1
        bucket["miss_seconds"] += seconds

    def evict(self, name: str, n: int = 1) -> None:
        self.layer(name)["evictions"] += n

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate wall time for a pure timer layer (no hit/miss)."""
        self.layer(name)["miss_seconds"] += seconds

    def set_residency(self, name: str, entries: int, nbytes: int) -> None:
        bucket = self.layer(name)
        bucket["entries"] = float(entries)
        bucket["bytes"] = float(nbytes)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Picklable copy of every layer, with derived rates included.

        ``hit_rate`` is hits over lookups; ``saved_seconds`` estimates the
        rasterization time hits avoided (hits x mean observed miss cost,
        minus the time the hits themselves took).
        """
        out: Dict[str, Dict[str, float]] = {}
        for name, bucket in self._layers.items():
            row = dict(bucket)
            lookups = row["hits"] + row["misses"]
            row["hit_rate"] = row["hits"] / lookups if lookups else 0.0
            mean_miss = row["miss_seconds"] / row["misses"] if row["misses"] else 0.0
            row["saved_seconds"] = max(0.0, row["hits"] * mean_miss - row["hit_seconds"])
            out[name] = row
        return out

    def merge(self, snapshot: Dict[str, Dict[str, float]]) -> None:
        """Fold a snapshot (e.g. from a shard worker) into this instance."""
        for name, row in snapshot.items():
            bucket = self.layer(name)
            for field in _FIELDS:
                if field in ("entries", "bytes"):
                    # Residency is a gauge, not a counter: workers each hold
                    # their own cache, so take the max as "largest resident".
                    bucket[field] = max(bucket[field], row.get(field, 0.0))
                else:
                    bucket[field] += row.get(field, 0.0)

    def reset(self) -> None:
        self._layers.clear()


def diff_snapshots(
    before: Dict[str, Dict[str, float]], after: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Per-layer delta between two snapshots (monotonic counters only).

    Layers with no activity in the window are dropped, so the diff of a
    stage that never touched a canvas is ``{}``.  A layer present only in
    ``after`` — its first activity happened inside the window — is kept
    whole, and counter deltas clamp at zero so a mid-window ``reset()``
    (which makes ``after`` smaller than ``before``) can never produce
    negative activity.  Residency fields (``entries``/``bytes``) are
    gauges, not flows: the ``after`` level is reported as-is.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, row in after.items():
        base = before.get(name, {})
        delta = {}
        for field in ("hits", "misses", "evictions", "hit_seconds", "miss_seconds"):
            delta[field] = max(0.0, row.get(field, 0.0) - base.get(field, 0.0))
        if not any(delta[f] for f in ("hits", "misses", "evictions", "miss_seconds")):
            continue
        for field in ("entries", "bytes"):
            if field in row:
                delta[field] = row[field]
        lookups = delta["hits"] + delta["misses"]
        delta["hit_rate"] = delta["hits"] / lookups if lookups else 0.0
        mean_miss = delta["miss_seconds"] / delta["misses"] if delta["misses"] else 0.0
        delta["saved_seconds"] = max(0.0, delta["hits"] * mean_miss - delta["hit_seconds"])
        out[name] = delta
    return out


def layer_seconds(snapshot: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Measured wall seconds spent inside each cache layer (hit + miss).

    The timed-path complement to the sampling profiler's *statistical*
    subsystem self-time: the report prints both, and large disagreement on
    the render layers means the sampler is under-observing (hz too low for
    the run length) — a cross-check neither side can make alone.
    """
    return {
        layer: float(row.get("hit_seconds", 0.0)) + float(row.get("miss_seconds", 0.0))
        for layer, row in snapshot.items()
    }


#: Process-global counters every cache layer reports into.
PERF = PerfCounters()

_CONFIG = RenderCacheConfig.from_env()
_CACHES: List["ByteBudgetLRU"] = []


def config() -> RenderCacheConfig:
    """The active render-cache configuration."""
    return _CONFIG


def current_config() -> RenderCacheConfig:
    return _CONFIG


def configure(cfg: RenderCacheConfig) -> None:
    """Install ``cfg`` and resize every registered cache to its budget.

    Disabling drops all cached state so a later re-enable starts cold.
    """
    global _CONFIG
    _CONFIG = cfg
    for cache in _CACHES:
        cache.set_max_bytes(cfg.budget(cache.budget_attr))
        if not cfg.enabled:
            cache.clear()


def reset_caches() -> None:
    """Drop every cached value (counters are left alone)."""
    for cache in _CACHES:
        cache.clear()


def reset_all() -> None:
    """Cold start: drop caches and zero counters (test isolation)."""
    reset_caches()
    PERF.reset()


class ByteBudgetLRU:
    """Exact-key LRU bounded by the total byte size of its values.

    Keys are plain hashable tuples of the complete inputs — equality, not a
    digest, decides hits, so a hit is always byte-correct.  Each entry
    carries its resident size; inserting past the budget evicts from the
    least-recently-used end.  Lookups and inserts report to :data:`PERF`
    under the cache's layer name.
    """

    def __init__(self, layer: str, budget_attr: str, counters: PerfCounters = PERF) -> None:
        self.layer = layer
        self.budget_attr = budget_attr
        self._counters = counters
        self._max_bytes = _CONFIG.budget(budget_attr)
        self._bytes = 0
        self._entries: "OrderedDict[Hashable, tuple]" = OrderedDict()
        _CACHES.append(self)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        return self._bytes

    def set_max_bytes(self, max_bytes: int) -> None:
        self._max_bytes = int(max_bytes)
        self._evict_to_budget()

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self._counters.set_residency(self.layer, 0, 0)

    def contains(self, key: Hashable) -> bool:
        """Membership check that records nothing and leaves LRU order alone.

        Used by cache pre-warmers: re-warming an already-warm pooled worker
        must not inflate the hit rate.
        """
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (counted as a hit) or None (not counted).

        The miss is counted by the matching :meth:`put` so its recorded
        seconds cover the recompute the miss actually cost.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        self._counters.hit(self.layer)
        return entry[0]

    def put(self, key: Hashable, value: Any, nbytes: int, seconds: float = 0.0) -> None:
        """Insert a freshly computed value, recording the miss that built it."""
        self._counters.miss(self.layer, seconds)
        nbytes = int(nbytes)
        if nbytes > self._max_bytes:
            return  # larger than the whole budget: never resident
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (value, nbytes)
        self._bytes += nbytes
        self._evict_to_budget()
        self._counters.set_residency(self.layer, len(self._entries), self._bytes)

    def _evict_to_budget(self) -> None:
        evicted = 0
        while self._bytes > self._max_bytes and self._entries:
            _, (_, nbytes) = self._entries.popitem(last=False)
            self._bytes -= nbytes
            evicted += 1
        if evicted:
            self._counters.evict(self.layer, evicted)
            self._counters.set_residency(self.layer, len(self._entries), self._bytes)


def timed(layer: str, fn: Callable[[], Any]) -> Any:
    """Run ``fn`` and charge its wall time to ``layer``."""
    started = time.perf_counter()
    try:
        return fn()
    finally:
        PERF.add_time(layer, time.perf_counter() - started)
