"""Small statistics helpers shared by reports and benchmarks."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["median", "mean", "percentile", "binomial_ci", "zipf_fit"]


def mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    n = len(ordered)
    mid = n // 2
    return float(ordered[mid]) if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q out of range: {q}")
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def binomial_ci(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a proportion."""
    if trials <= 0:
        return (0.0, 0.0)
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    return (max(0.0, center - margin), min(1.0, center + margin))


def zipf_fit(counts: Sequence[int]) -> float:
    """Rough Zipf exponent of a descending count sequence (log-log slope).

    Used to check Figure 1's long-tail shape: the paper's distribution is
    strongly head-heavy with a power-law tail.
    """
    pairs = [(rank + 1, c) for rank, c in enumerate(counts) if c > 0]
    if len(pairs) < 3:
        return 0.0
    xs = [math.log(r) for r, _ in pairs]
    ys = [math.log(c) for _, c in pairs]
    n = len(xs)
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    var = sum((x - mx) ** 2 for x in xs)
    return -cov / var if var else 0.0
