"""Analyze a saved crawl dataset (produced by ``python -m repro.crawler``).

Runs the observation-only parts of the pipeline — detection statistics,
clustering, prevalence, reach, render-twice, serving context — exactly as
they would run over a real crawl (no access to the generator or ground
truth).

The dataset is *streamed*: observations are folded one at a time into the
mergeable reducers of :mod:`repro.core.reducers`, so peak memory is bounded
by the number of distinct canvases and fingerprinting sites, never by the
size of the crawl file.  A multi-GB dataset analyzes in constant memory
(``tests/test_offline_analysis.py`` pins this with an RSS regression test).

Usage::

    python -m repro.analysis crawl.jsonl.gz
"""

from __future__ import annotations

import argparse
import sys

from repro.core.clustering import rank_clusters
from repro.core.reducers import BundleSpec
from repro.crawler.storage import dataset_label, iter_observations


def streaming_bundle_spec() -> BundleSpec:
    """The CLI's bounded-memory bundle recipe.

    ``include_detection=False`` is the load-bearing choice: the detection
    member keeps every site's full outcome (it *is* the outcome map), which
    scales with dataset bulk.  Every other member aggregates, so dropping
    detection makes the whole fold O(distinct canvases + FP sites).
    """
    return BundleSpec(include_detection=False, include_serving=True, dns=None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dataset", help="JSONL(.gz) crawl dataset")
    parser.add_argument("--top-clusters", type=int, default=15)
    args = parser.parse_args(argv)

    label = dataset_label(args.dataset)
    bundle = streaming_bundle_spec().build()
    for observation in iter_observations(args.dataset):
        bundle.ingest(observation)

    prevalence = bundle.finalize_member("prevalence")
    print(f"dataset: {label} ({bundle.count} sites)")
    for pop in ("top", "tail"):
        p = prevalence.population(pop)
        if p.sites_crawled == 0:
            continue
        print(
            f"  {pop}: {p.sites_successful}/{p.sites_crawled} ok, "
            f"{p.fp_sites} fingerprinting ({p.prevalence:.1%}), "
            f"canvases/site mean {p.mean_canvases:.2f} median {p.median_canvases:.0f} "
            f"max {p.max_canvases}"
        )

    stats = bundle.finalize_member("stats")
    print(f"fingerprintable fraction of extractions: {stats.fraction:.1%}")
    print(f"render-twice sites: {bundle.finalize_member('render_twice'):.1%}")

    clusters = bundle.finalize_member("cluster")
    print(f"\ndistinct test canvases: {len(clusters)}")
    print(f"{'rank':>4s} {'top':>6s} {'tail':>6s}  sample script URL")
    for i, cluster in enumerate(rank_clusters(clusters, "top")[: args.top_clusters]):
        sample = sorted(cluster.script_urls)[0] if cluster.script_urls else "(inline)"
        print(f"{i:>4d} {cluster.site_count('top'):>6d} {cluster.site_count('tail'):>6d}  {sample}")

    serving = bundle.finalize_member("serving")
    print(
        f"\nfirst-party-served FP sites: top {serving.first_party_fraction('top'):.1%}, "
        f"tail {serving.first_party_fraction('tail'):.1%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
