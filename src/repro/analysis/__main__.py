"""Analyze a saved crawl dataset (produced by ``python -m repro.crawler``).

Runs the observation-only parts of the pipeline — detection, clustering,
prevalence, reach, render-twice — exactly as they would run over a real
crawl (no access to the generator or ground truth).

Usage::

    python -m repro.analysis crawl.jsonl.gz
"""

from __future__ import annotations

import argparse
import sys

from repro.core.clustering import cluster_canvases, rank_clusters
from repro.core.detection import FingerprintDetector
from repro.core.evasion import analyze_serving_context, render_twice_fraction
from repro.core.prevalence import compute_prevalence
from repro.crawler.storage import load_dataset


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dataset", help="JSONL(.gz) crawl dataset")
    parser.add_argument("--top-clusters", type=int, default=15)
    args = parser.parse_args(argv)

    dataset = load_dataset(args.dataset)
    detector = FingerprintDetector()
    outcomes = detector.detect_all(dataset.successful())
    populations = dataset.populations()

    prevalence = compute_prevalence(dataset, outcomes)
    print(f"dataset: {dataset.label} ({len(dataset.observations)} sites)")
    for pop in ("top", "tail"):
        p = prevalence.population(pop)
        if p.sites_crawled == 0:
            continue
        print(
            f"  {pop}: {p.sites_successful}/{p.sites_crawled} ok, "
            f"{p.fp_sites} fingerprinting ({p.prevalence:.1%}), "
            f"canvases/site mean {p.mean_canvases:.2f} median {p.median_canvases:.0f} "
            f"max {p.max_canvases}"
        )

    fraction = FingerprintDetector.fingerprintable_fraction(outcomes.values())
    print(f"fingerprintable fraction of extractions: {fraction:.1%}")
    print(f"render-twice sites: {render_twice_fraction(outcomes):.1%}")

    clusters = cluster_canvases(outcomes, populations)
    print(f"\ndistinct test canvases: {len(clusters)}")
    print(f"{'rank':>4s} {'top':>6s} {'tail':>6s}  sample script URL")
    for i, cluster in enumerate(rank_clusters(clusters, "top")[: args.top_clusters]):
        sample = sorted(cluster.script_urls)[0] if cluster.script_urls else "(inline)"
        print(f"{i:>4d} {cluster.site_count('top'):>6d} {cluster.site_count('tail'):>6d}  {sample}")

    serving = analyze_serving_context(outcomes, populations)
    print(
        f"\nfirst-party-served FP sites: top {serving.first_party_fraction('top'):.1%}, "
        f"tail {serving.first_party_fraction('tail'):.1%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
