"""Figure 1 and Figure 2 regeneration.

Figure 1: number of sites using the 50 most-frequent test canvases in the
top-20k population, with the tail-20k counts overlaid (the Shopify outlier
shows up as a tail bar towering over its top bar).

Figure 2: examples of small canvases excluded by the size heuristic,
rendered as ASCII pixel art from actual extracted data URLs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.canvas.encode import parse_data_url, png_decode
from repro.core.pipeline import StudyResult

__all__ = ["figure1_data", "render_figure1", "render_figure2"]


def figure1_data(result: StudyResult, n: int = 50) -> List[Dict]:
    """The figure's series: per popularity rank, top and tail site counts."""
    return [
        {"rank": i, "top_sites": top, "tail_sites": tail}
        for i, (top, tail) in enumerate(result.reach.top50[:n])
    ]


def render_figure1(result: StudyResult, n: int = 50, width: int = 60) -> str:
    """ASCII rendering of Figure 1 (one row per canvas-popularity rank)."""
    data = figure1_data(result, n)
    if not data:
        return "(no clusters)"
    peak = max(max(d["top_sites"], d["tail_sites"]) for d in data) or 1
    lines = [
        "Figure 1: sites using the top most-frequent test canvases",
        f"(#=top-20k sites, o=tail-20k sites; scale: {peak} sites = {width} cols)",
        "",
    ]
    for d in data:
        top_bar = "#" * max(1 if d["top_sites"] else 0, round(d["top_sites"] / peak * width))
        tail_bar = "o" * max(1 if d["tail_sites"] else 0, round(d["tail_sites"] / peak * width))
        lines.append(f"{d['rank']:>3d} |{top_bar:<{width}s}| {d['top_sites']:>5d}")
        lines.append(f"    |{tail_bar:<{width}s}| {d['tail_sites']:>5d}")
    return "\n".join(lines)


def figure1_png(result: StudyResult, n: int = 50, path: Optional[str] = None) -> bytes:
    """Render Figure 1 as a PNG bar chart — drawn with this repository's own
    Canvas 2D implementation (the measurement substrate drawing its own
    results).  Blue bars: top-20k site counts; orange: tail-20k overlay.
    """
    from repro.canvas import HTMLCanvasElement
    from repro.canvas.encode import parse_data_url

    data = figure1_data(result, n)
    width, height = 640, 360
    margin_left, margin_bottom, margin_top = 48, 36, 24
    plot_w = width - margin_left - 16
    plot_h = height - margin_bottom - margin_top

    canvas = HTMLCanvasElement(width, height)
    ctx = canvas.getContext("2d")
    ctx.fillStyle = "#ffffff"
    ctx.fillRect(0, 0, width, height)

    peak = max((max(d["top_sites"], d["tail_sites"]) for d in data), default=1) or 1
    slot = plot_w / max(1, len(data))
    bar_w = max(2.0, slot * 0.42)

    # Axes.
    ctx.fillStyle = "#333333"
    ctx.fillRect(margin_left, margin_top, 1, plot_h)
    ctx.fillRect(margin_left, margin_top + plot_h, plot_w, 1)
    ctx.font = "10px Arial"
    ctx.fillText(f"{peak}", 8, margin_top + 8)
    ctx.fillText("0", 8, margin_top + plot_h)
    ctx.fillText("canvas popularity rank in top sites", margin_left + 140, height - 10)

    for i, d in enumerate(data):
        x = margin_left + 4 + i * slot
        top_h = plot_h * d["top_sites"] / peak
        tail_h = plot_h * d["tail_sites"] / peak
        ctx.fillStyle = "#3b6fb3"
        ctx.fillRect(x, margin_top + plot_h - top_h, bar_w, top_h)
        ctx.fillStyle = "#e8853d"
        ctx.fillRect(x + bar_w, margin_top + plot_h - tail_h, bar_w, tail_h)

    url = canvas.toDataURL("image/png")
    _mime, payload = parse_data_url(url)
    if path is not None:
        with open(path, "wb") as fh:
            fh.write(payload)
    return payload


def render_figure2(result: StudyResult, max_examples: int = 2) -> str:
    """Figure 2: excluded small canvases, shown as ASCII pixel art."""
    from repro.core.detection import ExclusionReason

    # Prefer examples of distinct sizes, like the paper's 12x12 / 5x5 pair.
    examples: List[Tuple[str, int, int, str]] = []
    seen_sizes = set()
    for domain, outcome in sorted(result.outcomes.items()):
        for extraction, reason in outcome.excluded:
            if reason is not ExclusionReason.TOO_SMALL or extraction.mime != "image/png":
                continue
            size = (extraction.width, extraction.height)
            if size in seen_sizes:
                continue
            seen_sizes.add(size)
            examples.append((domain, extraction.width, extraction.height, extraction.data_url))
            break
        if len(examples) >= max_examples:
            break

    if not examples:
        return "Figure 2: (no small excluded canvases in this crawl)"

    blocks = ["Figure 2: example small canvases excluded from the analysis", ""]
    for domain, w, h, data_url in examples:
        blocks.append(f"({domain}, {w}x{h} px)")
        blocks.append(_ascii_pixels(data_url))
        blocks.append("")
    return "\n".join(blocks)


def _ascii_pixels(data_url: str) -> str:
    """Render a (small) PNG data URL as ASCII luminance art."""
    _mime, payload = parse_data_url(data_url)
    pixels = png_decode(payload)
    shades = " .:-=+*#%@"
    lines = []
    for row in pixels:
        chars = []
        for r, g, b, a in row:
            if a == 0:
                chars.append("  ")
            else:
                luma = (0.2126 * r + 0.7152 * g + 0.0722 * b) / 255.0
                # Opaque pixels always render visibly (index >= 1).
                chars.append(shades[max(1, min(9, int((1 - luma) * 9.99)))] * 2)
        lines.append("".join(chars))
    return "\n".join(lines)
