"""Full study report: every table, figure and in-text statistic, with a
paper-vs-measured diff against :mod:`repro.config`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.figures import render_figure1, render_figure2
from repro.analysis.tables import table1, table2, table3, table4
from repro.config import PAPER, PaperTargets
from repro.core.detection import FingerprintDetector
from repro.core.pipeline import StudyResult

__all__ = [
    "Comparison",
    "quarantine_table",
    "render_cache_table",
    "run_observability_table",
    "stage_timing_table",
    "study_comparisons",
    "study_report",
]


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured line."""

    key: str
    paper_value: float
    measured: float
    kind: str = "fraction"  # fraction | count | ratio

    def fmt(self, value: float) -> str:
        if self.kind == "fraction":
            return f"{value:.1%}"
        if self.kind == "count":
            return f"{value:,.0f}"
        return f"{value:.2f}"

    @property
    def line(self) -> str:
        return f"{self.key:44s} paper {self.fmt(self.paper_value):>10s}   measured {self.fmt(self.measured):>10s}"


def study_comparisons(result: StudyResult, paper: PaperTargets = PAPER) -> List[Comparison]:
    """Every headline number, paper vs measured.

    Rates are compared as rates (scale-invariant); absolute counts are only
    meaningful at full scale.
    """
    p = result.prevalence
    comparisons = [
        Comparison("prevalence (top)", paper.top_prevalence, p.top.prevalence),
        Comparison("prevalence (tail)", paper.tail_prevalence, p.tail.prevalence),
        Comparison(
            "mean fingerprintable canvases per FP site",
            paper.mean_canvases_per_fp_site,
            (p.top.mean_canvases * p.top.fp_sites + p.tail.mean_canvases * p.tail.fp_sites)
            / max(1, p.top.fp_sites + p.tail.fp_sites),
            kind="ratio",
        ),
        Comparison(
            "median canvases per FP site",
            paper.median_canvases_per_fp_site,
            _median(result.prevalence.combined_canvases_per_site),
            kind="ratio",
        ),
        Comparison(
            "fingerprintable fraction of extractions",
            paper.fingerprintable_fraction,
            FingerprintDetector.fingerprintable_fraction(result.outcomes.values()),
        ),
        Comparison("top-6 canvas share (top)", paper.top6_share_top, result.reach.top6_share_top),
        Comparison("top-6 canvas share (tail)", paper.top6_share_tail, result.reach.top6_share_tail),
        Comparison("tail/top canvas overlap", paper.tail_overlap_fraction, result.reach.tail_overlap_fraction),
        Comparison(
            "max single-canvas reach (top)",
            paper.top_canvas_max_sites / paper.top_sites_success,
            result.reach.max_reach_fraction_top,
        ),
        Comparison("render-twice check (FP sites)", paper.render_twice_fraction, result.render_twice),
        Comparison(
            "crawl success rate (top)",
            paper.top_sites_success / paper.top_sites_crawled,
            p.top.sites_successful / max(1, p.top.sites_crawled),
        ),
        Comparison(
            "crawl success rate (tail)",
            paper.tail_sites_success / paper.tail_sites_crawled,
            p.tail.sites_successful / max(1, p.tail.sites_crawled),
        ),
    ]

    fp = result.fp_sites
    fp_top, fp_tail = max(1, len(fp["top"])), max(1, len(fp["tail"]))
    comparisons += [
        Comparison(
            "vendor-attributed share (top)",
            paper.vendor_total_top / paper.top_fp_sites,
            result.vendor_totals.get("top", 0) / fp_top,
        ),
        Comparison(
            "vendor-attributed share (tail)",
            paper.vendor_total_tail / paper.tail_fp_sites,
            result.vendor_totals.get("tail", 0) / fp_tail,
        ),
    ]
    for vendor in paper.vendors:
        counts = result.vendor_counts.get(vendor.name, {})
        comparisons.append(
            Comparison(
                f"vendor share top: {vendor.name}",
                vendor.top / paper.top_fp_sites,
                counts.get("top", 0) / fp_top,
            )
        )

    if result.serving_context is not None:
        sc = result.serving_context
        comparisons += [
            Comparison("first-party-served sites (top)", paper.first_party_fraction[0], sc.first_party_fraction("top")),
            Comparison("first-party-served sites (tail)", paper.first_party_fraction[1], sc.first_party_fraction("tail")),
            Comparison("subdomain-served sites (top)", paper.subdomain_fraction[0], sc.subdomain_fraction("top")),
            Comparison("subdomain-served sites (tail)", paper.subdomain_fraction[1], sc.subdomain_fraction("tail")),
            Comparison("CDN-served sites (top)", paper.cdn_fraction[0], sc.cdn_fraction("top")),
            Comparison("CDN-served sites (tail)", paper.cdn_fraction[1], sc.cdn_fraction("tail")),
        ]

    if result.blocklist_context is not None:
        bc = result.blocklist_context
        totals = bc.totals
        paper_rows = {
            "EasyList": paper.easylist_canvases,
            "EasyPrivacy": paper.easyprivacy_canvases,
            "Disconnect": paper.disconnect_canvases,
            "Any": paper.any_blocklist_canvases,
            "All": paper.all_blocklists_canvases,
        }
        for name, counts in bc.rows().items():
            frac_top, frac_tail = counts.fraction(totals)
            paper_top, paper_tail = paper_rows[name]
            comparisons.append(
                Comparison(
                    f"blocklist coverage top: {name}",
                    paper_top / paper.total_canvases_top,
                    frac_top,
                )
            )
            comparisons.append(
                Comparison(
                    f"blocklist coverage tail: {name}",
                    paper_tail / paper.total_canvases_tail,
                    frac_tail,
                )
            )

    if result.adblock_rows:
        control = result.adblock_rows[0]
        paper_deltas = {
            "Adblock Plus": (paper.adblock_plus_canvases, paper.adblock_plus_sites),
            "UBlock Origin": (paper.ublock_canvases, paper.ublock_sites),
        }
        for row in result.adblock_rows[1:]:
            if row.label not in paper_deltas:
                continue
            (p_canvases, p_sites) = paper_deltas[row.label]
            paper_keep = p_canvases[0] / paper.total_canvases_top
            measured_keep = row.canvases["top"] / max(1, control.canvases["top"])
            comparisons.append(
                Comparison(f"canvases surviving {row.label} (top)", paper_keep, measured_keep)
            )
            paper_keep_sites = p_sites[0] / paper.top_fp_sites
            measured_keep_sites = row.sites["top"] / max(1, control.sites["top"])
            comparisons.append(
                Comparison(f"FP sites surviving {row.label} (top)", paper_keep_sites, measured_keep_sites)
            )

    return comparisons


def _median(values: List[int]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return float(ordered[mid]) if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def stage_timing_table(result: StudyResult) -> str:
    """Per-stage wall time and cache outcome of the pipeline run.

    Empty string when the result carries no timings (e.g. a result that was
    deserialized from disk, or built before the stage-graph pipeline).
    """
    timings = result.stage_timings
    if not timings:
        return ""
    total = sum(t.seconds for t in timings)
    lines = [f"{'stage':18s} {'wall':>9s}  outcome"]
    for t in timings:
        lines.append(f"{t.name:18s} {t.seconds:8.2f}s  {t.status}")
    hits = sum(1 for t in timings if t.cached)
    lines.append(
        f"{'total':18s} {total:8.2f}s  {hits}/{len(timings)} stages from cache"
    )
    return "\n".join(lines)


def render_cache_table(result: StudyResult) -> str:
    """Per-layer render-acceleration counters for the study.

    One row per cache layer (whole-canvas render cache, glyph atlas, text
    runs, path coverage masks, encode memoization): hit rate, lookup
    volume, and the rasterization/encode seconds the hits are estimated to
    have saved.  Empty string when the run recorded no counters (caches
    disabled, or a result deserialized from disk).
    """
    counters = result.perf_counters
    cache_rows = {
        name: row
        for name, row in counters.items()
        if (row.get("hits", 0) or row.get("misses", 0))
    }
    if not cache_rows:
        return ""
    lines = [f"{'cache layer':14s} {'hit rate':>9s} {'hits':>9s} {'misses':>9s} {'saved':>9s}"]
    for name in sorted(cache_rows):
        row = cache_rows[name]
        lines.append(
            f"{name:14s} {row.get('hit_rate', 0.0):8.1%} "
            f"{int(row.get('hits', 0)):9d} {int(row.get('misses', 0)):9d} "
            f"{row.get('saved_seconds', 0.0):8.2f}s"
        )
    timers = {
        name: row.get("miss_seconds", 0.0)
        for name, row in counters.items()
        if name not in cache_rows and row.get("miss_seconds", 0.0)
    }
    for name in sorted(timers):
        lines.append(f"{name:14s} {'-':>9s} {'-':>9s} {'-':>9s} {timers[name]:8.2f}s wall")
    return "\n".join(lines)


def run_observability_table(result: StudyResult) -> str:
    """Operational telemetry of the run, from ``StudyResult.metrics``.

    One-line rollups of the unified metrics delta: page loads and retries,
    network traffic and injected faults, stage-cache outcomes.  Empty string
    when the result carries no metrics (deserialized from disk, or built
    before the observability layer).
    """
    counters = dict(result.metrics.get("counters", {}))
    if not counters:
        return ""

    def total(base: str) -> int:
        return int(
            sum(v for name, v in counters.items() if name.startswith(f"{base}["))
        )

    lines = [
        f"page loads: {total('crawler.attempts_total')} attempts over "
        f"{total('crawler.pages')} sites "
        f"({total('crawler.retries')} retries, {total('crawler.recovered')} recovered)",
    ]
    watchdog = total("crawler.watchdog")
    if watchdog:
        lines.append(f"watchdog fires: {watchdog}")
    requests = int(counters.get("net.requests", 0))
    if requests:
        lines.append(
            f"network: {requests} requests, "
            f"{int(counters.get('net.bytes_fetched', 0)):,} bytes, "
            f"{int(counters.get('net.requests_failed', 0))} failed"
        )
    faults = {
        name.split(".", 2)[2]: int(v)
        for name, v in counters.items()
        if name.startswith("net.faults.")
    }
    if faults:
        lines.append(
            "injected faults: "
            + ", ".join(f"{kind}={n}" for kind, n in sorted(faults.items()))
        )
    hits = int(counters.get("stage.cache.hits", 0))
    misses = int(counters.get("stage.cache.misses", 0))
    if hits + misses:
        lines.append(f"stage cache: {hits} hit(s), {misses} miss(es)")
    checkpoints = int(counters.get("crawler.checkpoint_writes", 0))
    if checkpoints:
        lines.append(f"checkpoint writes: {checkpoints}")
    histograms = result.metrics.get("histograms", {})
    if histograms:
        from repro.obs.metrics import Histogram

        rows = []
        for name, data in sorted(histograms.items()):
            hist = Histogram.from_json(data)
            if hist.count:
                rows.append(
                    f"  {name:28s} n={hist.count:<7d} p50={hist.quantile(0.5) * 1000:7.1f}ms "
                    f"p95={hist.quantile(0.95) * 1000:7.1f}ms "
                    f"p99={hist.quantile(0.99) * 1000:7.1f}ms"
                )
        if rows:
            lines.append("latency percentiles (bucket-derived):")
            lines.extend(rows)
    respawns = int(counters.get("supervisor.respawns", 0))
    spawned = int(counters.get("supervisor.workers_spawned", 0))
    if respawns or spawned:
        deaths = {
            name.split("[", 1)[1].rstrip("]"): int(v)
            for name, v in counters.items()
            if name.startswith("supervisor.deaths[")
        }
        death_mix = (
            " (" + ", ".join(f"{sig}={n}" for sig, n in sorted(deaths.items())) + ")"
            if deaths
            else ""
        )
        lines.append(
            f"supervisor: {spawned} worker(s) spawned, {respawns} respawn(s)"
            f"{death_mix}, {int(counters.get('supervisor.splits', 0))} bisection(s), "
            f"{int(counters.get('supervisor.quarantined', 0))} quarantined"
        )
    return "\n".join(lines)


def profile_table(result: StudyResult) -> str:
    """Sampling-profiler self-time rollup for the study run.

    Top self-time by subsystem / stage / site / vendor script, from
    ``StudyResult.profile`` (``REPRO_OBS_PROFILE=1``; merged across every
    shard worker).  The render layers also print the *measured* wall
    seconds from the timed cache counters next to the sampled estimate —
    gross disagreement means the sampler under-observed the run (raise
    ``REPRO_OBS_PROFILE_HZ``).  Empty string when the profiler was off.
    """
    rollup = result.profile
    if not rollup or not rollup.get("samples"):
        return ""
    from repro import perf
    from repro.obs.inspect import profile_text

    lines = profile_text(rollup, top=5)
    measured = perf.layer_seconds(result.perf_counters)
    render_measured = sum(
        seconds for layer, seconds in measured.items() if not layer.startswith("js.")
    )
    sampled = {
        str(row.get("name")): float(row.get("seconds", 0.0))
        for row in rollup.get("by_subsystem", ())
    }
    if render_measured:
        lines.append(
            f"  cross-check: render measured {render_measured:.2f}s (timed) vs "
            f"{sampled.get('render', 0.0):.2f}s (sampled)"
        )
    return "\n".join(lines)


def quarantine_table(result: StudyResult) -> str:
    """Supervisor quarantine accounting: which sites were skipped and why.

    Empty string for unsupervised or fault-free runs.  The coverage-loss
    line makes the degraded-mode cost explicit: prevalence and reach were
    computed over ``planned - quarantined`` sites, and each quarantined row
    names the site so the loss is auditable, never silent.
    """
    quarantined = result.quarantined
    if not quarantined:
        return ""
    by_domain = result.control.by_domain()
    planned = len(result.control.observations)
    lines = [
        f"coverage loss: {len(quarantined)}/{planned} planned site(s) "
        f"({len(quarantined) / max(1, planned):.2%}) quarantined by the shard "
        f"supervisor; all analyses computed over the remaining sites",
    ]
    for domain in sorted(quarantined):
        observation = by_domain.get(domain)
        rank = observation.rank if observation is not None else "?"
        population = observation.population if observation is not None else "?"
        lines.append(
            f"  {domain:32s} rank {rank!s:>6s} ({population:4s})  {quarantined[domain]}"
        )
    return "\n".join(lines)


def static_analysis_table(result: StudyResult) -> str:
    """Static/dynamic cross-validation from the ``static`` stage.

    Cross-tabulates every site's most severe static script classification
    against the dynamic detector's verdict (the agreement matrix), then
    lists what static analysis sees that execution cannot: fingerprinting
    classifications recovered on supervisor-quarantined sites the crawler
    never finished, and static attribution for scripts that died before
    reaching a canvas readout.  Empty string when the result carries no
    static report (stage not run, or deserialized from an older run).
    """
    report = result.static_verdicts
    if report is None or not report.total_scripts:
        return ""
    lines = [
        f"{report.total_scripts} distinct scripts analyzed "
        f"({report.skippable_scripts} provably canvas-inert and skippable)",
        "script classes: "
        + ", ".join(
            f"{name}={count}" for name, count in sorted(report.class_counts.items())
        ),
    ]
    if report.agreement:
        lines.append(
            f"{'site static class':22s} {'dynamic fp':>10s} {'dynamic clean':>13s}"
        )
        for name in sorted(report.agreement):
            row = report.agreement[name]
            lines.append(
                f"{name:22s} {row.get('dynamic-fp', 0):10d} "
                f"{row.get('dynamic-clean', 0):13d}"
            )
        lines.append(f"static/dynamic agreement: {report.agreement_rate():.1%}")
    if report.static_only:
        lines.append("execution-free recoveries on quarantined sites:")
        for domain, reason, classification in report.static_only:
            lines.append(f"  {domain:32s} {classification:22s} ({reason})")
    if report.dead_scripts:
        lines.append("static attribution for scripts that died before a readout:")
        for domain, url, classification in report.dead_scripts:
            lines.append(f"  {domain:24s} {url} -> {classification}")
    return "\n".join(lines)


def study_report(result: StudyResult, paper: PaperTargets = PAPER, include_figures: bool = True) -> str:
    """Render the complete study: tables, figures, paper-vs-measured."""
    sections: List[str] = []

    p = result.prevalence
    sections.append(
        "== Crawl summary ==\n"
        f"top:  {p.top.sites_successful}/{p.top.sites_crawled} crawled successfully, "
        f"{p.top.fp_sites} fingerprinting ({p.top.prevalence:.1%})\n"
        f"tail: {p.tail.sites_successful}/{p.tail.sites_crawled} crawled successfully, "
        f"{p.tail.fp_sites} fingerprinting ({p.tail.prevalence:.1%})\n"
        f"unique fingerprinting canvases: top {result.reach.unique_canvases_top}, "
        f"tail {result.reach.unique_canvases_tail}"
    )
    if result.cross_machine_consistent is not None:
        status = "identical" if result.cross_machine_consistent else "DIFFERENT"
        sections[-1] += f"\ncross-machine canvas groupings (Intel vs M1): {status}"

    health = result.control.health()
    paper_rate = (paper.top_sites_success + paper.tail_sites_success) / max(
        1, paper.top_sites_crawled + paper.tail_sites_crawled
    )
    sections.append(
        "== Crawl health ==\n"
        + health.summary()
        + f"\npaper's crawl kept {paper.top_sites_success:,}/{paper.top_sites_crawled:,} top and "
        f"{paper.tail_sites_success:,}/{paper.tail_sites_crawled:,} tail sites "
        f"({paper_rate:.1%} overall)"
    )

    timing = stage_timing_table(result)
    if timing:
        sections.append("== Pipeline stage timings ==\n" + timing)

    acceleration = render_cache_table(result)
    if acceleration:
        sections.append("== Render-cache acceleration ==\n" + acceleration)

    observability = run_observability_table(result)
    if observability:
        sections.append("== Run observability ==\n" + observability)

    profile = profile_table(result)
    if profile:
        sections.append("== Profile (sampled self-time) ==\n" + profile)

    quarantine = quarantine_table(result)
    if quarantine:
        sections.append("== Quarantined sites ==\n" + quarantine)

    static = static_analysis_table(result)
    if static:
        sections.append("== Static/dynamic cross-validation ==\n" + static)

    _, t1 = table1(result)
    sections.append("== Table 1: sites linked to each vendor ==\n" + t1)

    _, t3 = table3(result.signatures)
    sections.append("== Table 3: attribution methods ==\n" + t3)

    if result.adblock_rows:
        _, t2 = table2(result.adblock_rows)
        sections.append("== Table 2: ad blocker impact ==\n" + t2)

    if result.blocklist_context is not None:
        _, t4 = table4(result.blocklist_context)
        sections.append("== Table 4: blocklist coverage of canvases ==\n" + t4)

    if include_figures:
        sections.append(render_figure1(result, n=20))
        sections.append(render_figure2(result))

    comparisons = study_comparisons(result, paper)
    sections.append(
        "== Paper vs measured ==\n" + "\n".join(c.line for c in comparisons)
    )
    return "\n\n".join(sections)
