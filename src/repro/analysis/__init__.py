"""Reporting: regenerates every table and figure of the paper."""

from repro.analysis.figures import figure1_data, render_figure1, render_figure2
from repro.analysis.tables import table1, table2, table3, table4
from repro.analysis.report import study_report

__all__ = [
    "figure1_data",
    "render_figure1",
    "render_figure2",
    "table1",
    "table2",
    "table3",
    "table4",
    "study_report",
]
