"""Tree-walking interpreter for the ECMAScript subset.

The interpreter owns a global environment into which the browser injects
host objects (``document``, ``window``, ``navigator`` …).  It tracks the URL
of the script currently executing so host hooks (canvas instrumentation) can
attribute API calls to scripts, and enforces a step budget so a buggy
synthetic script cannot hang a crawl.
"""

from __future__ import annotations

import hashlib
import math
import time
from typing import Any, Dict, List, Optional

from repro import perf
from repro.js import compiler as _compiler
from repro.js import nodes as N
from repro.js import ops
from repro.js.errors import JSRuntimeError, JSThrow
from repro.js.parser import parse
from repro.js.values import (
    NULL,
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    js_equals_loose,
    js_equals_strict,
    js_to_number,
    js_to_string,
    js_truthy,
    js_type_of,
)

__all__ = ["Interpreter", "Environment"]


class Environment:
    """A lexical scope."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Environment"] = None) -> None:
        self.vars: Dict[str, Any] = {}
        self.parent = parent

    def declare(self, name: str, value: Any) -> None:
        self.vars[name] = value

    def lookup(self, name: str) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise KeyError(name)

    def assign(self, name: str, value: Any) -> bool:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return True
            env = env.parent
        return False

    def has(self, name: str) -> bool:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                return True
            env = env.parent
        return False


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class Interpreter:
    """Evaluates parsed programs against a shared global environment."""

    #: Default maximum number of AST nodes evaluated per `run` call.
    DEFAULT_STEP_BUDGET = 5_000_000

    def __init__(
        self,
        step_budget: int = DEFAULT_STEP_BUDGET,
        ast_cache: Optional[Dict[Any, N.Program]] = None,
        js_compile: Optional[bool] = None,
    ) -> None:
        self.globals = Environment()
        self.step_budget = step_budget
        self._steps = 0
        #: Whether `run` executes through the closure compiler (exactly
        #: transparent; None = honour the REPRO_JS_COMPILE environment knob).
        self.compile_mode = _compiler.compile_enabled() if js_compile is None else bool(js_compile)
        #: Lazily created compiled-execution state (see compiler.Runtime).
        self._rt: Optional[_compiler.Runtime] = None
        #: Stack of script URLs; the top is the script currently executing.
        self._script_stack: List[str] = []
        #: Parsed-program cache keyed by (script_url, source hash).  May be
        #: shared across interpreters (a browser parses each script URL once).
        self._ast_cache: Dict[Any, N.Program] = ast_cache if ast_cache is not None else {}
        self.console_log: List[str] = []
        from repro.js.builtins import install_globals

        install_globals(self)

    # -- public API ------------------------------------------------------------

    @property
    def current_script(self) -> Optional[str]:
        """URL of the script currently executing (for attribution hooks)."""
        return self._script_stack[-1] if self._script_stack else None

    @property
    def steps_executed(self) -> int:
        """AST-node steps charged by the last `run` (either engine)."""
        if self.compile_mode and self._rt is not None:
            return self._rt.steps
        return self._steps

    def define_global(self, name: str, value: Any) -> None:
        self.globals.declare(name, value)

    def native(self, name: str, fn) -> NativeFunction:
        """Wrap a Python callable ``fn(interp, this, args)`` as a global."""
        nf = NativeFunction(fn, name)
        self.define_global(name, nf)
        return nf

    def run(self, source: str, script_url: str = "<inline>", cache_key: Any = None) -> Any:
        """Parse and execute ``source`` attributed to ``script_url``."""
        # Content-digest key: builtin hash() is randomized per process
        # (PYTHONHASHSEED) and collision-prone, which would make AST-cache
        # keys unstable across shard workers and allow two different sources
        # served under one URL to collide.
        if cache_key is not None:
            key = cache_key
        else:
            digest = hashlib.sha256(source.encode("utf-8", "surrogatepass")).hexdigest()
            key = (script_url, digest)
        if self.compile_mode:
            # A compiled-cache hit skips parsing entirely; on a miss the AST
            # cache is still consulted/populated so parse work is shared.
            compiled = _compiler.get_or_compile(source, script_url, self._ast_cache, key)
            started = time.perf_counter()
            try:
                return _compiler.run_compiled(self, compiled, script_url)
            finally:
                perf.PERF.add_time("js.exec", time.perf_counter() - started)
        program = self._ast_cache.get(key)
        if program is None:
            program = parse(source, script_url)
            self._ast_cache[key] = program
        started = time.perf_counter()
        try:
            return self.run_program(program, script_url)
        finally:
            perf.PERF.add_time("js.exec", time.perf_counter() - started)

    def run_program(self, program: N.Program, script_url: str = "<inline>") -> Any:
        self._steps = 0
        self._script_stack.append(script_url)
        try:
            # Classic scripts execute in the global scope, so top-level
            # declarations persist across scripts on the same page.
            result: Any = UNDEFINED
            env = self.globals
            self._hoist(program.body, env)
            for stmt in program.body:
                result = self.exec_statement(stmt, env)
            return result
        except JSThrow as exc:
            raise JSRuntimeError(
                f"uncaught exception: {js_to_string(exc.value)}", exc.line, script_url, exc.col
            ) from exc
        finally:
            self._script_stack.pop()

    def call_function(self, fn: Any, this: Any = None, args: Optional[List[Any]] = None) -> Any:
        """Invoke a JS or native function from host code."""
        return self._call(fn, this if this is not None else UNDEFINED, list(args or []), line=0)

    # -- statements -------------------------------------------------------------

    def exec_statement(self, node: N.Node, env: Environment) -> Any:
        self._tick(node)
        method = getattr(self, "_exec_" + type(node).__name__, None)
        if method is None:
            raise JSRuntimeError(
                f"cannot execute {type(node).__name__}", node.line, self.current_script, node.col
            )
        return method(node, env)

    def _hoist(self, body: List[N.Node], env: Environment) -> None:
        """Hoist function declarations (and `var` names) in a body."""
        for stmt in body:
            if isinstance(stmt, N.FunctionDeclaration):
                env.declare(
                    stmt.name,
                    JSFunction(stmt.params, stmt.body, env, name=stmt.name),
                )
            elif isinstance(stmt, N.VariableDeclaration) and stmt.kind == "var":
                for d in stmt.declarations:
                    if not env.has(d.name):
                        env.declare(d.name, UNDEFINED)

    def _exec_Program(self, node: N.Program, env: Environment) -> Any:
        result: Any = UNDEFINED
        for stmt in node.body:
            result = self.exec_statement(stmt, env)
        return result

    def _exec_Block(self, node: N.Block, env: Environment) -> Any:
        inner = Environment(env)
        self._hoist(node.body, inner)
        result: Any = UNDEFINED
        for stmt in node.body:
            result = self.exec_statement(stmt, inner)
        return result

    def _exec_EmptyStatement(self, node: N.EmptyStatement, env: Environment) -> Any:
        return UNDEFINED

    def _exec_ExpressionStatement(self, node: N.ExpressionStatement, env: Environment) -> Any:
        return self.eval(node.expression, env)

    def _exec_VariableDeclaration(self, node: N.VariableDeclaration, env: Environment) -> Any:
        for decl in node.declarations:
            value = self.eval(decl.init, env) if decl.init is not None else UNDEFINED
            env.declare(decl.name, value)
        return UNDEFINED

    def _exec_FunctionDeclaration(self, node: N.FunctionDeclaration, env: Environment) -> Any:
        env.declare(node.name, JSFunction(node.params, node.body, env, name=node.name))
        return UNDEFINED

    def _exec_ReturnStatement(self, node: N.ReturnStatement, env: Environment) -> Any:
        value = self.eval(node.argument, env) if node.argument is not None else UNDEFINED
        raise _Return(value)

    def _exec_IfStatement(self, node: N.IfStatement, env: Environment) -> Any:
        if js_truthy(self.eval(node.test, env)):
            return self.exec_statement(node.consequent, env)
        if node.alternate is not None:
            return self.exec_statement(node.alternate, env)
        return UNDEFINED

    def _exec_ForStatement(self, node: N.ForStatement, env: Environment) -> Any:
        loop_env = Environment(env)
        if node.init is not None:
            self.exec_statement(node.init, loop_env)
        while node.test is None or js_truthy(self.eval(node.test, loop_env)):
            try:
                self.exec_statement(node.body, loop_env)
            except _Break:
                break
            except _Continue:
                pass
            if node.update is not None:
                self.eval(node.update, loop_env)
        return UNDEFINED

    def _exec_ForOfStatement(self, node: N.ForOfStatement, env: Environment) -> Any:
        iterable = self.eval(node.iterable, env)
        if isinstance(iterable, JSArray):
            items = list(iterable.elements)
        elif isinstance(iterable, str):
            items = list(iterable)
        else:
            raise JSRuntimeError("value is not iterable", node.line, self.current_script, node.col)
        for item in items:
            loop_env = Environment(env)
            loop_env.declare(node.name, item)
            try:
                self.exec_statement(node.body, loop_env)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _exec_WhileStatement(self, node: N.WhileStatement, env: Environment) -> Any:
        while js_truthy(self.eval(node.test, env)):
            try:
                self.exec_statement(node.body, env)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _exec_DoWhileStatement(self, node: N.DoWhileStatement, env: Environment) -> Any:
        while True:
            try:
                self.exec_statement(node.body, env)
            except _Break:
                break
            except _Continue:
                pass
            if not js_truthy(self.eval(node.test, env)):
                break
        return UNDEFINED

    def _exec_BreakStatement(self, node: N.BreakStatement, env: Environment) -> Any:
        raise _Break()

    def _exec_ContinueStatement(self, node: N.ContinueStatement, env: Environment) -> Any:
        raise _Continue()

    def _exec_ThrowStatement(self, node: N.ThrowStatement, env: Environment) -> Any:
        raise JSThrow(self.eval(node.argument, env), node.line, node.col)

    def _exec_SwitchStatement(self, node: N.SwitchStatement, env: Environment) -> Any:
        value = self.eval(node.discriminant, env)
        switch_env = Environment(env)
        matched = False
        try:
            for case in node.cases:
                if not matched and case.test is not None:
                    if js_equals_strict(value, self.eval(case.test, switch_env)):
                        matched = True
                if matched:
                    for stmt in case.body:
                        self.exec_statement(stmt, switch_env)
            if not matched:
                # Fall back to the default clause (and fall through after it).
                run = False
                for case in node.cases:
                    if case.test is None:
                        run = True
                    if run:
                        for stmt in case.body:
                            self.exec_statement(stmt, switch_env)
        except _Break:
            pass
        return UNDEFINED

    def _exec_TryStatement(self, node: N.TryStatement, env: Environment) -> Any:
        try:
            self._exec_Block(node.block, env)
        except JSThrow as exc:
            if node.handler is not None:
                handler_env = Environment(env)
                if node.param:
                    handler_env.declare(node.param, exc.value)
                self._exec_Block(node.handler, handler_env)
            else:
                raise
        finally:
            if node.finalizer is not None:
                self._exec_Block(node.finalizer, env)
        return UNDEFINED

    # -- expressions ------------------------------------------------------------

    def eval(self, node: N.Node, env: Environment) -> Any:
        self._tick(node)
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is None:
            raise JSRuntimeError(
                f"cannot evaluate {type(node).__name__}", node.line, self.current_script, node.col
            )
        return method(node, env)

    def _eval_NumberLiteral(self, node: N.NumberLiteral, env: Environment) -> Any:
        return node.value

    def _eval_StringLiteral(self, node: N.StringLiteral, env: Environment) -> Any:
        return node.value

    def _eval_BooleanLiteral(self, node: N.BooleanLiteral, env: Environment) -> Any:
        return node.value

    def _eval_NullLiteral(self, node: N.NullLiteral, env: Environment) -> Any:
        return NULL

    def _eval_UndefinedLiteral(self, node: N.UndefinedLiteral, env: Environment) -> Any:
        return UNDEFINED

    def _eval_ThisExpression(self, node: N.ThisExpression, env: Environment) -> Any:
        try:
            return env.lookup("this")
        except KeyError:
            return UNDEFINED

    def _eval_Identifier(self, node: N.Identifier, env: Environment) -> Any:
        try:
            return env.lookup(node.name)
        except KeyError:
            raise JSRuntimeError(
                f"{node.name} is not defined", node.line, self.current_script, node.col
            ) from None

    def _eval_ArrayLiteral(self, node: N.ArrayLiteral, env: Environment) -> Any:
        return JSArray([self.eval(e, env) for e in node.elements])

    def _eval_ObjectLiteral(self, node: N.ObjectLiteral, env: Environment) -> Any:
        obj = JSObject()
        for key, value_node in node.properties:
            obj.set(key, self.eval(value_node, env))
        return obj

    def _eval_FunctionExpression(self, node: N.FunctionExpression, env: Environment) -> Any:
        this = None
        if node.is_arrow:
            try:
                this = env.lookup("this")
            except KeyError:
                this = UNDEFINED
        fn = JSFunction(node.params, node.body, env, name=node.name, is_arrow=node.is_arrow, this=this)
        if node.name and not node.is_arrow:
            # Named function expressions can refer to themselves.
            fn_env = Environment(env)
            fn_env.declare(node.name, fn)
            fn.env = fn_env
        return fn

    def _eval_UnaryOp(self, node: N.UnaryOp, env: Environment) -> Any:
        if node.op == "typeof":
            # typeof on an undefined identifier must not throw.
            if isinstance(node.operand, N.Identifier) and not env.has(node.operand.name):
                return "undefined"
            return js_type_of(self.eval(node.operand, env))
        if node.op == "delete":
            if isinstance(node.operand, N.MemberExpression):
                obj = self.eval(node.operand.obj, env)
                name = self._prop_name(node.operand, env)
                if isinstance(obj, JSObject):
                    return obj.delete(name)
            return True
        value = self.eval(node.operand, env)
        if node.op == "!":
            return not js_truthy(value)
        if node.op == "-":
            return -js_to_number(value)
        if node.op == "+":
            return js_to_number(value)
        if node.op == "~":
            return float(~_to_int32(js_to_number(value)))
        raise JSRuntimeError(
            f"unknown unary operator {node.op}", node.line, self.current_script, node.col
        )

    def _eval_UpdateExpression(self, node: N.UpdateExpression, env: Environment) -> Any:
        old = js_to_number(self._eval_reference(node.target, env))
        new = old + 1 if node.op == "++" else old - 1
        self._assign_reference(node.target, new, env)
        return new if node.prefix else old

    def _eval_BinaryOp(self, node: N.BinaryOp, env: Environment) -> Any:
        op = node.op
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if op == "+":
            if isinstance(left, str) or isinstance(right, str) or isinstance(left, JSObject) or isinstance(right, JSObject):
                return js_to_string(left) + js_to_string(right)
            return js_to_number(left) + js_to_number(right)
        if op == "-":
            return js_to_number(left) - js_to_number(right)
        if op == "*":
            return js_to_number(left) * js_to_number(right)
        if op == "/":
            denom = js_to_number(right)
            num = js_to_number(left)
            if denom == 0:
                if num == 0 or math.isnan(num):
                    return math.nan
                return math.inf if (num > 0) == (denom >= 0 and not _neg_zero(denom)) else -math.inf
            return num / denom
        if op == "%":
            denom = js_to_number(right)
            num = js_to_number(left)
            if denom == 0 or math.isnan(num) or math.isinf(num):
                return math.nan
            return math.fmod(num, denom)
        if op == "==":
            return js_equals_loose(left, right)
        if op == "!=":
            return not js_equals_loose(left, right)
        if op == "===":
            return js_equals_strict(left, right)
        if op == "!==":
            return not js_equals_strict(left, right)
        if op in ("<", ">", "<=", ">="):
            return _compare(left, right, op)
        if op == "&":
            return float(_to_int32(js_to_number(left)) & _to_int32(js_to_number(right)))
        if op == "|":
            return float(_to_int32(js_to_number(left)) | _to_int32(js_to_number(right)))
        if op == "^":
            return float(_to_int32(js_to_number(left)) ^ _to_int32(js_to_number(right)))
        if op == "<<":
            return float(_wrap_int32(_to_int32(js_to_number(left)) << (_to_uint32(js_to_number(right)) & 31)))
        if op == ">>":
            return float(_to_int32(js_to_number(left)) >> (_to_uint32(js_to_number(right)) & 31))
        if op == ">>>":
            return float(_to_uint32(js_to_number(left)) >> (_to_uint32(js_to_number(right)) & 31))
        if op == "in":
            if isinstance(right, JSObject):
                name = js_to_string(left)
                if isinstance(right, JSArray):
                    idx = name if not name.isdigit() else int(name)
                    if isinstance(idx, int):
                        return 0 <= idx < len(right.elements)
                return right.has(name)
            raise JSRuntimeError("'in' on non-object", node.line, self.current_script, node.col)
        if op == "instanceof":
            return isinstance(left, JSObject)  # approximation; subset has no prototypes
        raise JSRuntimeError(
            f"unknown binary operator {op}", node.line, self.current_script, node.col
        )

    def _eval_LogicalOp(self, node: N.LogicalOp, env: Environment) -> Any:
        left = self.eval(node.left, env)
        if node.op == "&&":
            return self.eval(node.right, env) if js_truthy(left) else left
        return left if js_truthy(left) else self.eval(node.right, env)

    def _eval_ConditionalExpression(self, node: N.ConditionalExpression, env: Environment) -> Any:
        if js_truthy(self.eval(node.test, env)):
            return self.eval(node.consequent, env)
        return self.eval(node.alternate, env)

    def _eval_AssignmentExpression(self, node: N.AssignmentExpression, env: Environment) -> Any:
        if node.op == "=":
            value = self.eval(node.value, env)
        else:
            current = self._eval_reference(node.target, env)
            operand = self.eval(node.value, env)
            binop = node.op[:-1]
            value = self._apply_compound(binop, current, operand, node)
        self._assign_reference(node.target, value, env)
        return value

    def _apply_compound(self, op: str, left: Any, right: Any, node: N.Node) -> Any:
        value = ops.apply_compound(op, left, right)
        if value is None:
            raise JSRuntimeError(
                f"unsupported compound op {op}=", node.line, self.current_script, node.col
            )
        return value

    def _eval_SequenceExpression(self, node: N.SequenceExpression, env: Environment) -> Any:
        result: Any = UNDEFINED
        for expr in node.expressions:
            result = self.eval(expr, env)
        return result

    def _eval_MemberExpression(self, node: N.MemberExpression, env: Environment) -> Any:
        obj = self.eval(node.obj, env)
        name = self._prop_name(node, env)
        return self.get_member(obj, name, node.line, node.col)

    def get_member(self, obj: Any, name: str, line: int = 0, col: int = 0) -> Any:
        """Property access including primitive method dispatch."""
        from repro.js import builtins

        if obj is UNDEFINED or obj is NULL:
            raise JSRuntimeError(
                f"cannot read property {name!r} of {js_to_string(obj)}", line, self.current_script, col
            )
        if isinstance(obj, str):
            return builtins.string_member(self, obj, name)
        if isinstance(obj, (int, float)) and not isinstance(obj, bool):
            return builtins.number_member(self, float(obj), name)
        if isinstance(obj, JSArray):
            method = builtins.array_member(self, obj, name)
            if method is not None:
                return method
            return obj.get(name)
        if isinstance(obj, JSObject):
            if isinstance(obj, (JSFunction, NativeFunction)):
                fn_member = builtins.function_member(self, obj, name)
                if fn_member is not None:
                    return fn_member
            return obj.get(name)
        if isinstance(obj, bool):
            return UNDEFINED
        raise JSRuntimeError(f"cannot read property {name!r}", line, self.current_script, col)

    def _eval_CallExpression(self, node: N.CallExpression, env: Environment) -> Any:
        if isinstance(node.callee, N.MemberExpression):
            this = self.eval(node.callee.obj, env)
            name = self._prop_name(node.callee, env)
            fn = self.get_member(this, name, node.line, node.col)
        else:
            this = UNDEFINED
            fn = self.eval(node.callee, env)
        args = [self.eval(a, env) for a in node.args]
        return self._call(fn, this, args, node.line, node.col)

    def _eval_NewExpression(self, node: N.NewExpression, env: Environment) -> Any:
        fn = self.eval(node.callee, env)
        args = [self.eval(a, env) for a in node.args]
        if isinstance(fn, NativeFunction):
            return fn.fn(self, UNDEFINED, args)
        if isinstance(fn, JSFunction):
            this = JSObject()
            result = self._call(fn, this, args, node.line, node.col)
            return result if isinstance(result, JSObject) else this
        raise JSRuntimeError("not a constructor", node.line, self.current_script, node.col)

    # -- helpers -------------------------------------------------------------------

    def _call(self, fn: Any, this: Any, args: List[Any], line: int, col: int = 0) -> Any:
        if isinstance(fn, NativeFunction):
            return fn.fn(self, this, args)
        if isinstance(fn, _compiler.CompiledFunction):
            # Compiled functions handed back to host code (callbacks, timers,
            # call/apply/bind) execute on their frames, not environments.
            return fn.invoke(_compiler.ensure_rt(self), this, args)
        if isinstance(fn, JSFunction):
            call_env = Environment(fn.env)
            if fn.is_arrow:
                call_env.declare("this", fn.lexical_this if fn.lexical_this is not None else UNDEFINED)
            else:
                call_env.declare("this", this)
            for i, param in enumerate(fn.params):
                call_env.declare(param, args[i] if i < len(args) else UNDEFINED)
            call_env.declare("arguments", JSArray(args))
            self._hoist(fn.body.body, call_env)
            try:
                for stmt in fn.body.body:
                    self.exec_statement(stmt, call_env)
            except _Return as ret:
                return ret.value
            return UNDEFINED
        raise JSRuntimeError(f"{js_to_string(fn)} is not a function", line, self.current_script, col)

    def _prop_name(self, node: N.MemberExpression, env: Environment) -> str:
        if node.computed:
            return js_to_string(self.eval(node.prop, env))
        return node.prop  # type: ignore[return-value]

    def _eval_reference(self, target: N.Node, env: Environment) -> Any:
        if isinstance(target, N.Identifier):
            return self._eval_Identifier(target, env)
        if isinstance(target, N.MemberExpression):
            return self._eval_MemberExpression(target, env)
        raise JSRuntimeError("invalid reference", target.line, self.current_script, target.col)

    def _assign_reference(self, target: N.Node, value: Any, env: Environment) -> None:
        if isinstance(target, N.Identifier):
            if not env.assign(target.name, value):
                # Implicit global, like sloppy-mode JS.
                self.globals.declare(target.name, value)
            return
        if isinstance(target, N.MemberExpression):
            obj = self.eval(target.obj, env)
            name = self._prop_name(target, env)
            if isinstance(obj, JSObject):
                obj.set(name, value)
                return
            raise JSRuntimeError(
                f"cannot set property {name!r} on {js_type_of(obj)}",
                target.line,
                self.current_script,
                target.col,
            )
        raise JSRuntimeError("invalid assignment target", target.line, self.current_script, target.col)

    def _tick(self, node: N.Node) -> None:
        self._steps += 1
        if self._steps > self.step_budget:
            raise JSRuntimeError("step budget exceeded", node.line, self.current_script, node.col)


# Operator arithmetic shared with the compiler (repro.js.ops).
_to_int32 = ops.to_int32
_wrap_int32 = ops.wrap_int32
_to_uint32 = ops.to_uint32
_neg_zero = ops.neg_zero
_compare = ops.compare
