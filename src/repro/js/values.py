"""JavaScript value model.

Mapping to Python values:

* numbers -> ``float`` (integral floats print without the trailing ``.0``,
  like JS), booleans -> ``bool``, strings -> ``str``
* ``undefined`` / ``null`` -> the :data:`UNDEFINED` / :data:`NULL` singletons
* objects -> :class:`JSObject`, arrays -> :class:`JSArray`
* user functions -> :class:`JSFunction` (closure over an environment)
* host functions -> :class:`NativeFunction` wrapping a Python callable
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "JSUndefined",
    "JSNull",
    "UNDEFINED",
    "NULL",
    "Shape",
    "ROOT_SHAPE",
    "JSObject",
    "JSArray",
    "JSFunction",
    "NativeFunction",
    "js_truthy",
    "js_to_string",
    "js_to_number",
    "js_type_of",
    "js_equals_strict",
    "js_equals_loose",
    "js_repr",
]


class JSUndefined:
    """The ``undefined`` value (singleton)."""

    _instance: Optional["JSUndefined"] = None

    def __new__(cls) -> "JSUndefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


class JSNull:
    """The ``null`` value (singleton)."""

    _instance: Optional["JSNull"] = None

    def __new__(cls) -> "JSNull":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"

    def __bool__(self) -> bool:
        return False


UNDEFINED = JSUndefined()
NULL = JSNull()


class Shape:
    """A hidden class: the ordered tuple of property keys an object holds.

    Two plain :class:`JSObject` instances that acquired the same keys in the
    same order share the same ``Shape`` instance, so the compiler's inline
    caches can validate a cached property lookup with a single identity
    check.  Shapes form a transition tree rooted at :data:`ROOT_SHAPE`;
    transitions are interned, which keeps the check an ``is`` comparison.
    """

    __slots__ = ("keys", "transitions")

    def __init__(self, keys: tuple = ()) -> None:
        self.keys = keys
        self.transitions: Dict[str, "Shape"] = {}

    def child(self, key: str) -> "Shape":
        nxt = self.transitions.get(key)
        if nxt is None:
            nxt = Shape(self.keys + (key,))
            self.transitions[key] = nxt
        return nxt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shape({', '.join(self.keys)})"


#: The shape of an object with no properties (transition-tree root).
ROOT_SHAPE = Shape()


def _shape_for(keys) -> Shape:
    shape = ROOT_SHAPE
    for key in keys:
        shape = shape.child(key)
    return shape


class JSObject:
    """A plain JavaScript object: ordered string-keyed properties.

    Host objects subclass this and override :meth:`get` / :meth:`set` to
    expose live attributes (e.g. ``canvas.width``).  The base class keeps
    ``shape`` in sync with the key set so compiled code can use shape-keyed
    inline caches; subclasses that override accessors are never fast-pathed
    (the caches check ``type(obj) is JSObject`` exactly), so a stale shape
    on an exotic host object is harmless.
    """

    #: Class name reported by host objects (used in error messages).
    js_class = "Object"

    def __init__(self, properties: Optional[Dict[str, Any]] = None) -> None:
        self.properties: Dict[str, Any] = dict(properties or {})
        self.shape: Shape = _shape_for(self.properties) if self.properties else ROOT_SHAPE

    def get(self, name: str) -> Any:
        return self.properties.get(name, UNDEFINED)

    def set(self, name: str, value: Any) -> None:
        props = self.properties
        if name not in props:
            self.shape = self.shape.child(name)
        props[name] = value

    def has(self, name: str) -> bool:
        return name in self.properties

    def delete(self, name: str) -> bool:
        props = self.properties
        if name in props:
            value = props.pop(name)
            self.shape = _shape_for(props)
            return value is not None
        return False

    def keys(self) -> List[str]:
        return list(self.properties.keys())

    def __repr__(self) -> str:
        return f"[object {self.js_class}]"


class JSArray(JSObject):
    """A JavaScript array backed by a Python list."""

    js_class = "Array"

    def __init__(self, elements: Optional[List[Any]] = None) -> None:
        super().__init__()
        self.elements: List[Any] = list(elements or [])

    def get(self, name: str) -> Any:
        if name == "length":
            return float(len(self.elements))
        idx = _array_index(name)
        if idx is not None:
            if 0 <= idx < len(self.elements):
                return self.elements[idx]
            return UNDEFINED
        return super().get(name)

    def set(self, name: str, value: Any) -> None:
        if name == "length":
            new_len = int(js_to_number(value))
            cur = len(self.elements)
            if new_len < cur:
                del self.elements[new_len:]
            else:
                self.elements.extend([UNDEFINED] * (new_len - cur))
            return
        idx = _array_index(name)
        if idx is not None:
            if idx >= len(self.elements):
                self.elements.extend([UNDEFINED] * (idx + 1 - len(self.elements)))
            self.elements[idx] = value
            return
        super().set(name, value)

    def __repr__(self) -> str:
        return f"[array length={len(self.elements)}]"


def _array_index(name: str) -> Optional[int]:
    if name.isdigit():
        return int(name)
    return None


class JSFunction(JSObject):
    """A user-defined function: parameters + body + defining environment."""

    js_class = "Function"

    def __init__(self, params, body, env, name: Optional[str] = None, is_arrow: bool = False, this=None):
        super().__init__()
        self.params = list(params)
        self.body = body
        self.env = env
        self.name = name or ""
        self.is_arrow = is_arrow
        #: Lexical ``this`` captured by arrows.
        self.lexical_this = this

    def __repr__(self) -> str:
        return f"[function {self.name or 'anonymous'}]"


class NativeFunction(JSObject):
    """A host function: ``fn(interpreter, this, args) -> value``."""

    js_class = "Function"

    def __init__(self, fn: Callable, name: str = "") -> None:
        super().__init__()
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "native")

    def __repr__(self) -> str:
        return f"[native {self.name}]"


# --- conversions -----------------------------------------------------------------


def js_truthy(value: Any) -> bool:
    """JavaScript ToBoolean."""
    if value is UNDEFINED or value is NULL or value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0 and not math.isnan(value)
    if isinstance(value, int):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    return True  # objects, arrays, functions


def js_to_string(value: Any) -> str:
    """JavaScript ToString."""
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return _number_to_string(float(value))
    if isinstance(value, str):
        return value
    if isinstance(value, JSArray):
        return ",".join("" if e is UNDEFINED or e is NULL else js_to_string(e) for e in value.elements)
    if isinstance(value, (JSFunction, NativeFunction)):
        return f"function {value.name}() {{ [code] }}"
    if isinstance(value, JSObject):
        return f"[object {value.js_class}]"
    return str(value)


def _number_to_string(x: float) -> str:
    if math.isnan(x):
        return "NaN"
    if math.isinf(x):
        return "Infinity" if x > 0 else "-Infinity"
    if x == int(x) and abs(x) < 1e21:
        return str(int(x))
    return repr(x)


def js_to_number(value: Any) -> float:
    """JavaScript ToNumber."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is UNDEFINED:
        return math.nan
    if value is NULL:
        return 0.0
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            if text.lower().startswith("0x"):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return math.nan
    if isinstance(value, JSArray):
        if not value.elements:
            return 0.0
        if len(value.elements) == 1:
            return js_to_number(value.elements[0])
        return math.nan
    return math.nan  # objects


def js_type_of(value: Any) -> str:
    """The ``typeof`` operator."""
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (JSFunction, NativeFunction)):
        return "function"
    return "object"


def js_equals_strict(a: Any, b: Any) -> bool:
    """The ``===`` operator."""
    ta, tb = js_type_of(a), js_type_of(b)
    if ta != tb:
        return False
    if ta == "number":
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return False
        return fa == fb
    if ta in ("string", "boolean", "undefined"):
        return a == b
    if a is NULL and b is NULL:
        return True
    return a is b  # objects/functions by identity


def js_equals_loose(a: Any, b: Any) -> bool:
    """The ``==`` operator (common coercion cases)."""
    if (a is NULL or a is UNDEFINED) and (b is NULL or b is UNDEFINED):
        return True
    if (a is NULL or a is UNDEFINED) or (b is NULL or b is UNDEFINED):
        return False
    ta, tb = js_type_of(a), js_type_of(b)
    if ta == tb:
        return js_equals_strict(a, b)
    if ta == "number" and tb == "string":
        return js_equals_strict(a, js_to_number(b))
    if ta == "string" and tb == "number":
        return js_equals_strict(js_to_number(a), b)
    if ta == "boolean":
        return js_equals_loose(js_to_number(a), b)
    if tb == "boolean":
        return js_equals_loose(a, js_to_number(b))
    if ta == "object" and tb in ("number", "string"):
        return js_equals_loose(js_to_string(a), b)
    if tb == "object" and ta in ("number", "string"):
        return js_equals_loose(a, js_to_string(b))
    return False


def js_repr(value: Any) -> str:
    """Debug representation (used by console.log capture)."""
    if isinstance(value, str):
        return value
    if isinstance(value, JSArray):
        return "[" + ", ".join(js_repr(e) for e in value.elements) + "]"
    if isinstance(value, (JSFunction, NativeFunction)):
        return repr(value)
    if isinstance(value, JSObject):
        inner = ", ".join(f"{k}: {js_repr(v)}" for k, v in value.properties.items())
        return "{" + inner + "}"
    return js_to_string(value)
