"""Closure compiler for the ECMAScript subset.

Lowers a parsed :class:`~repro.js.nodes.Program` once into a tree of plain
Python closures — a "compiled program" — that executes the same semantics
as :class:`~repro.js.interpreter.Interpreter` but without per-node dynamic
dispatch, environment-dict chain walks, or repeated AST traversal:

* **Slot-resolved scopes.**  Every point where the tree-walker allocates an
  ``Environment`` (function call, block, ``for`` loop header, ``for-of``
  iteration, ``switch`` body, ``catch`` clause, named function expression)
  becomes a *static scope* whose bindings are integer slots in a flat list
  frame (``frame[0]`` is the parent frame).  Identifier reads compile to a
  candidate list of ``(hops, slot)`` pairs resolved innermost-first, with
  the interpreter's global dict as the final fallback.  A :data:`_HOLE`
  sentinel marks a slot whose ``let``/``var`` has not executed yet, which
  reproduces the tree-walker's dict-membership semantics exactly (mid-block
  ``let``, conditional ``var`` hoisting, shadowing that only begins at the
  declaration statement).
* **Constant folding.**  Literal-only unary/binary subtrees are folded at
  compile time; the folded closure still charges the subtree's full step
  cost to the step budget (and folding is restricted to same-line subtrees)
  so budget exhaustion surfaces on the same line in both engines.
* **Inline caches.**  Property reads on plain ``JSObject`` instances use a
  per-site monomorphic cache keyed by the object's hidden class
  (:class:`~repro.js.values.Shape`): one identity check replaces the
  method-resolution ladder.  Host objects (subclasses overriding
  ``get``/``set``) never take the fast path.
* **Compiled-script cache.**  Compiled programs are interned in a
  module-global byte-budget LRU keyed by ``sha256(source)`` and
  :data:`ENGINE_VERSION`, shared by every page load in the process and
  pre-warmed by shard workers (:func:`prewarm`).  Counters flow through
  :data:`repro.perf.PERF` under ``js.cache`` / ``js.compile`` / ``js.ic``.

Transparency is the contract: for any script, compiled and tree-walk
execution must produce identical results, identical canvas observations,
identical error messages *and step counts*.  Every closure ticks exactly
once, mirroring ``Interpreter.eval`` / ``exec_statement``; quirks of the
tree-walker (double evaluation of member objects in compound assignment,
un-ticked ``try`` blocks, switch bodies without hoisting) are reproduced
deliberately.  ``REPRO_JS_COMPILE=0`` disables the whole layer.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import perf
from repro.js import nodes as N
from repro.js import ops
from repro.js.errors import JSRuntimeError, JSThrow
from repro.js.parser import parse
from repro.js.values import (
    NULL,
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    js_equals_loose,
    js_equals_strict,
    js_to_number,
    js_to_string,
    js_truthy,
    js_type_of,
)

__all__ = [
    "ENGINE_VERSION",
    "CompiledProgram",
    "CompiledFunction",
    "Runtime",
    "compile_enabled",
    "compile_program",
    "get_or_compile",
    "run_compiled",
    "prewarm",
    "script_cache",
]

#: Bumped whenever compilation output changes; part of the cache key so a
#: stale cached program can never execute under a newer engine.
ENGINE_VERSION = 1

#: Rough resident size charged to the cache per compiled AST node (closure
#: object + cells); only used for LRU budget accounting.
_NODE_BYTES = 400


class _Hole:
    """Sentinel for a frame slot whose declaration has not executed yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<hole>"


_HOLE = _Hole()


class _Return(Exception):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class Runtime:
    """Per-interpreter mutable state threaded through compiled closures."""

    __slots__ = ("interp", "gvars", "budget", "steps", "ic_hits", "ic_misses")

    def __init__(self, interp) -> None:
        self.interp = interp
        self.gvars: Dict[str, Any] = interp.globals.vars
        self.budget: int = interp.step_budget
        self.steps: int = 0
        self.ic_hits: int = 0
        self.ic_misses: int = 0


def ensure_rt(interp) -> Runtime:
    rt = getattr(interp, "_rt", None)
    if rt is None:
        rt = Runtime(interp)
        interp._rt = rt
    return rt


def _flush_ic(rt: Runtime) -> None:
    """Fold the runtime's IC tallies into PERF (called once per script run)."""
    if rt.ic_hits or rt.ic_misses:
        bucket = perf.PERF.layer("js.ic")
        bucket["hits"] += rt.ic_hits
        bucket["misses"] += rt.ic_misses
        rt.ic_hits = 0
        rt.ic_misses = 0


class _FnTemplate:
    """The compile-once part of a function: body closures and slot layout."""

    __slots__ = (
        "name",
        "params",
        "is_arrow",
        "nslots",
        "this_slot",
        "param_slots",
        "arguments_slot",
        "hoist",
        "body",
    )

    def __init__(self) -> None:
        self.name: str = ""
        self.params: List[str] = []
        self.is_arrow: bool = False
        self.nslots: int = 0
        self.this_slot: int = 0
        self.param_slots: List[int] = []
        self.arguments_slot: int = 0
        self.hoist: List[Callable] = []
        self.body: List[Callable] = []


class CompiledFunction(JSFunction):
    """A function closing over a frame instead of an ``Environment``.

    Subclasses :class:`JSFunction` so the value model (``typeof``,
    ``toString``, ``call``/``apply``/``bind`` members, JSON exclusion)
    treats it identically; :meth:`Interpreter._call` dispatches on the
    concrete type before the tree-walk path.
    """

    def __init__(self, template: _FnTemplate, frame: Optional[list], lexical_this: Any = None):
        JSFunction.__init__(
            self,
            template.params,
            None,
            None,
            name=template.name,
            is_arrow=template.is_arrow,
            this=lexical_this,
        )
        self.template = template
        self.frame = frame

    def invoke(self, rt: Runtime, this: Any, args: List[Any]) -> Any:
        t = self.template
        f = [self.frame] + [_HOLE] * t.nslots
        f[t.this_slot] = self.lexical_this if t.is_arrow else this
        na = len(args)
        i = 0
        for slot in t.param_slots:
            f[slot] = args[i] if i < na else UNDEFINED
            i += 1
        f[t.arguments_slot] = JSArray(args)
        for op in t.hoist:
            op(rt, f)
        try:
            for st in t.body:
                st(rt, f)
        except _Return as ret:
            return ret.value
        return UNDEFINED


class CompiledProgram:
    """Top-level hoist ops + statement closures for one script."""

    __slots__ = ("hoist", "body", "node_count", "nbytes")

    def __init__(self, hoist: List[Callable], body: List[Callable], node_count: int) -> None:
        self.hoist = hoist
        self.body = body
        self.node_count = node_count
        self.nbytes = node_count * _NODE_BYTES + 256


# --- static scopes -----------------------------------------------------------------


class _Scope:
    """Compile-time mirror of one runtime ``Environment``."""

    __slots__ = ("parent", "slots")

    def __init__(self, parent: Optional["_Scope"]) -> None:
        self.parent = parent
        self.slots: Dict[str, int] = {}

    def add(self, name: str) -> int:
        slot = self.slots.get(name)
        if slot is None:
            slot = len(self.slots) + 1  # slot 0 is the parent link
            self.slots[name] = slot
        return slot


def _resolve(scope: Optional[_Scope], name: str) -> Tuple[Tuple[int, int], ...]:
    """All frame slots ``name`` could bind to, as (hops, slot), innermost first."""
    out: List[Tuple[int, int]] = []
    hops = 0
    while scope is not None:
        slot = scope.slots.get(name)
        if slot is not None:
            out.append((hops, slot))
        scope = scope.parent
        hops += 1
    return tuple(out)


def _frame_at(f: list, hops: int) -> list:
    while hops:
        f = f[0]
        hops -= 1
    return f


def _direct_decls(stmts: List[N.Node]) -> List[str]:
    """Names declared directly into the scope executing ``stmts``.

    Mirrors the tree-walker: ``if``/``while``/``do-while`` bodies execute in
    the *same* environment, so declarations inside them land here; blocks,
    loops with headers, ``switch``, ``try`` parts and function bodies make
    their own environments and are not descended into.
    """
    names: List[str] = []

    def visit(st: N.Node) -> None:
        t = type(st)
        if t is N.VariableDeclaration:
            for d in st.declarations:
                names.append(d.name)
        elif t is N.FunctionDeclaration:
            names.append(st.name)
        elif t is N.IfStatement:
            visit(st.consequent)
            if st.alternate is not None:
                visit(st.alternate)
        elif t is N.WhileStatement or t is N.DoWhileStatement:
            visit(st.body)

    for st in stmts:
        visit(st)
    return names


# --- constant folding --------------------------------------------------------------

_FOLD_UNARY = ("!", "-", "+", "~")
_FOLD_BINARY = frozenset(
    ("+", "-", "*", "/", "%", "==", "!=", "===", "!==", "<", ">", "<=", ">=", "&", "|", "^", "<<", ">>", ">>>")
)


def _apply_binary_const(op: str, left: Any, right: Any) -> Any:
    """Binary-operator semantics on constants (mirrors ``_eval_BinaryOp``)."""
    if op == "+":
        if isinstance(left, str) or isinstance(right, str) or isinstance(left, JSObject) or isinstance(right, JSObject):
            return js_to_string(left) + js_to_string(right)
        return js_to_number(left) + js_to_number(right)
    if op == "-":
        return js_to_number(left) - js_to_number(right)
    if op == "*":
        return js_to_number(left) * js_to_number(right)
    if op == "/":
        return ops.js_div(left, right)
    if op == "%":
        return ops.js_mod(left, right)
    if op == "==":
        return js_equals_loose(left, right)
    if op == "!=":
        return not js_equals_loose(left, right)
    if op == "===":
        return js_equals_strict(left, right)
    if op == "!==":
        return not js_equals_strict(left, right)
    if op in ("<", ">", "<=", ">="):
        return ops.compare(left, right, op)
    if op == "&":
        return float(ops.to_int32(js_to_number(left)) & ops.to_int32(js_to_number(right)))
    if op == "|":
        return float(ops.to_int32(js_to_number(left)) | ops.to_int32(js_to_number(right)))
    if op == "^":
        return float(ops.to_int32(js_to_number(left)) ^ ops.to_int32(js_to_number(right)))
    if op == "<<":
        return float(ops.wrap_int32(ops.to_int32(js_to_number(left)) << (ops.to_uint32(js_to_number(right)) & 31)))
    if op == ">>":
        return float(ops.to_int32(js_to_number(left)) >> (ops.to_uint32(js_to_number(right)) & 31))
    return float(ops.to_uint32(js_to_number(left)) >> (ops.to_uint32(js_to_number(right)) & 31))


def _fold(node: N.Node) -> Optional[Tuple[Any, int]]:
    """Return ``(value, step_cost)`` for a literal-constant subtree, else None.

    Folding is restricted to subtrees whose nodes share one source line so a
    step-budget exhaustion raised by the folded closure (which charges the
    whole subtree's cost at once) names the same line the tree-walker would.
    """
    t = type(node)
    if t is N.NumberLiteral or t is N.StringLiteral or t is N.BooleanLiteral:
        return (node.value, 1)
    if t is N.NullLiteral:
        return (NULL, 1)
    if t is N.UndefinedLiteral:
        return (UNDEFINED, 1)
    if t is N.UnaryOp and node.op in _FOLD_UNARY:
        if node.operand.line != node.line:
            return None
        sub = _fold(node.operand)
        if sub is None:
            return None
        value, cost = sub
        op = node.op
        if op == "!":
            return (not js_truthy(value), cost + 1)
        if op == "-":
            return (-js_to_number(value), cost + 1)
        if op == "+":
            return (js_to_number(value), cost + 1)
        return (float(~ops.to_int32(js_to_number(value))), cost + 1)
    if t is N.BinaryOp and node.op in _FOLD_BINARY:
        if node.left.line != node.line or node.right.line != node.line:
            return None
        left = _fold(node.left)
        if left is None:
            return None
        right = _fold(node.right)
        if right is None:
            return None
        return (_apply_binary_const(node.op, left[0], right[0]), left[1] + right[1] + 1)
    return None


# --- shared runtime helpers --------------------------------------------------------


def _invoke(rt: Runtime, fn: Any, this: Any, args: List[Any], line: int, col: int) -> Any:
    tfn = type(fn)
    if tfn is NativeFunction:
        return fn.fn(rt.interp, this, args)
    if tfn is CompiledFunction:
        return fn.invoke(rt, this, args)
    if isinstance(fn, NativeFunction):
        return fn.fn(rt.interp, this, args)
    if isinstance(fn, CompiledFunction):
        return fn.invoke(rt, this, args)
    if isinstance(fn, JSFunction):
        return rt.interp._call(fn, this, args, line)
    raise JSRuntimeError(f"{js_to_string(fn)} is not a function", line, rt.interp.current_script, col)


def _member_set(rt: Runtime, obj: Any, name: str, value: Any, line: int, col: int) -> None:
    if isinstance(obj, JSObject):
        obj.set(name, value)
        return
    raise JSRuntimeError(
        f"cannot set property {name!r} on {js_type_of(obj)}", line, rt.interp.current_script, col
    )


def _make_member_getter(line: int, col: int):
    """A per-site property getter with a monomorphic (shape, name) cache.

    Fast paths cover exactly the cases whose semantics are closed-form:
    plain ``JSObject`` data lookups, array index/length, string
    index/length.  Everything else (host objects, primitive methods,
    functions) defers to ``Interpreter.get_member`` so behaviour — including
    fresh method-wrapper identity — is byte-compatible with the tree-walker.
    """
    cache: list = [None, None, False]

    def get(rt: Runtime, obj: Any, name: str) -> Any:
        tobj = type(obj)
        if tobj is JSObject:
            if cache[0] is obj.shape and cache[1] == name:
                rt.ic_hits += 1
                return obj.properties[name] if cache[2] else UNDEFINED
            rt.ic_misses += 1
            cache[0] = obj.shape
            cache[1] = name
            present = name in obj.properties
            cache[2] = present
            return obj.properties[name] if present else UNDEFINED
        if tobj is JSArray:
            if name == "length" or name.isdigit():
                return obj.get(name)
        elif tobj is str:
            if name == "length":
                return float(len(obj))
            if name.isdigit():
                idx = int(name)
                return obj[idx] if idx < len(obj) else UNDEFINED
        return rt.interp.get_member(obj, name, line, col)

    return get


# --- the compiler ------------------------------------------------------------------


class _Compiler:
    def __init__(self) -> None:
        self.node_count = 0
        self._templates: Dict[int, _FnTemplate] = {}

    # -- identifier access ---------------------------------------------------------

    def _read_ident(self, name: str, scope: Optional[_Scope], line: int, col: int, ticked: bool = True):
        """Closure evaluating an identifier (raises ReferenceError-alike)."""
        cands = _resolve(scope, name)
        self.node_count += 1

        def missing(rt: Runtime):
            raise JSRuntimeError(f"{name} is not defined", line, rt.interp.current_script, col) from None

        if not cands:
            if ticked:
                def read(rt, f):
                    rt.steps = s = rt.steps + 1
                    if s > rt.budget:
                        raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                    try:
                        return rt.gvars[name]
                    except KeyError:
                        return missing(rt)
            else:
                def read(rt, f):
                    try:
                        return rt.gvars[name]
                    except KeyError:
                        return missing(rt)
            return read

        if len(cands) == 1 and cands[0][0] == 0:
            slot = cands[0][1]
            if ticked:
                def read(rt, f):
                    rt.steps = s = rt.steps + 1
                    if s > rt.budget:
                        raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                    v = f[slot]
                    if v is not _HOLE:
                        return v
                    v = rt.gvars.get(name, _HOLE)
                    if v is not _HOLE:
                        return v
                    return missing(rt)
            else:
                def read(rt, f):
                    v = f[slot]
                    if v is not _HOLE:
                        return v
                    v = rt.gvars.get(name, _HOLE)
                    if v is not _HOLE:
                        return v
                    return missing(rt)
            return read

        def read(rt, f):
            if ticked:
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            for hops, slot in cands:
                v = _frame_at(f, hops)[slot]
                if v is not _HOLE:
                    return v
            v = rt.gvars.get(name, _HOLE)
            if v is not _HOLE:
                return v
            return missing(rt)

        return read

    def _write_ident(self, name: str, scope: Optional[_Scope]):
        """Closure implementing ``Environment.assign`` + implicit-global fallback."""
        cands = _resolve(scope, name)

        if not cands:
            def write(rt, f, value):
                rt.gvars[name] = value
            return write

        if len(cands) == 1 and cands[0][0] == 0:
            slot = cands[0][1]

            def write(rt, f, value):
                if f[slot] is not _HOLE:
                    f[slot] = value
                else:
                    rt.gvars[name] = value
            return write

        def write(rt, f, value):
            for hops, slot in cands:
                fr = _frame_at(f, hops)
                if fr[slot] is not _HOLE:
                    fr[slot] = value
                    return
            rt.gvars[name] = value

        return write

    def _has_ident(self, name: str, scope: Optional[_Scope]):
        """Closure implementing ``Environment.has`` over frames + globals."""
        cands = _resolve(scope, name)

        if not cands:
            def has(rt, f):
                return name in rt.gvars
            return has

        def has(rt, f):
            for hops, slot in cands:
                if _frame_at(f, hops)[slot] is not _HOLE:
                    return True
            return name in rt.gvars

        return has

    def _declare(self, name: str, scope: Optional[_Scope]):
        """Closure implementing ``Environment.declare`` in the current scope."""
        if scope is None:
            def store(rt, f, value):
                rt.gvars[name] = value
            return store
        slot = scope.slots[name]

        def store(rt, f, value):
            f[slot] = value
        return store

    def _this_getter(self, scope: Optional[_Scope]):
        """Un-ticked ``this`` resolution (lookup with UNDEFINED fallback)."""
        cands = _resolve(scope, "this")

        def getter(rt, f):
            for hops, slot in cands:
                v = _frame_at(f, hops)[slot]
                if v is not _HOLE:
                    return v
            return rt.gvars.get("this", UNDEFINED)

        return getter

    # -- hoisting ------------------------------------------------------------------

    def _fn_template_for(self, node, scope: Optional[_Scope]) -> _FnTemplate:
        template = self._templates.get(id(node))
        if template is None:
            template = self._function_template(node.params, node.body, node.name, False, scope)
            self._templates[id(node)] = template
        return template

    def _hoist_ops(self, body: List[N.Node], scope: Optional[_Scope]) -> List[Callable]:
        """Compile the hoisting pass (function declarations + ``var`` names)."""
        hoist: List[Callable] = []
        for stmt in body:
            if isinstance(stmt, N.FunctionDeclaration):
                template = self._fn_template_for(stmt, scope)
                if scope is None:
                    def op(rt, f, template=template, name=stmt.name):
                        rt.gvars[name] = CompiledFunction(template, None)
                else:
                    slot = scope.slots[stmt.name]

                    def op(rt, f, template=template, slot=slot):
                        f[slot] = CompiledFunction(template, f)
                hoist.append(op)
            elif isinstance(stmt, N.VariableDeclaration) and stmt.kind == "var":
                for d in stmt.declarations:
                    if scope is None:
                        def op(rt, f, name=d.name):
                            if name not in rt.gvars:
                                rt.gvars[name] = UNDEFINED
                    else:
                        has = self._has_ident(d.name, scope)
                        slot = scope.slots[d.name]

                        def op(rt, f, has=has, slot=slot):
                            if not has(rt, f):
                                f[slot] = UNDEFINED
                    hoist.append(op)
        return hoist

    # -- functions -----------------------------------------------------------------

    def _function_template(
        self,
        params: List[str],
        body: N.Block,
        name: Optional[str],
        is_arrow: bool,
        defn_scope: Optional[_Scope],
    ) -> _FnTemplate:
        fscope = _Scope(defn_scope)
        t = _FnTemplate()
        t.name = name or ""
        t.params = list(params)
        t.is_arrow = is_arrow
        t.this_slot = fscope.add("this")
        t.param_slots = [fscope.add(p) for p in params]
        t.arguments_slot = fscope.add("arguments")
        for nm in _direct_decls(body.body):
            fscope.add(nm)
        t.hoist = self._hoist_ops(body.body, fscope)
        t.body = [self._stmt(st, fscope) for st in body.body]
        t.nslots = len(fscope.slots)
        return t

    # -- statements ----------------------------------------------------------------

    def _stmt(self, node: N.Node, scope: Optional[_Scope]) -> Callable:
        self.node_count += 1
        method = getattr(self, "_stmt_" + type(node).__name__, None)
        if method is not None:
            return method(node, scope)
        line, col = node.line, node.col
        kind = type(node).__name__

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            raise JSRuntimeError(f"cannot execute {kind}", line, rt.interp.current_script, col)
        return st

    def _tick_only(self, line: int, col: int, result: Callable) -> Callable:
        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            return result(rt, f)
        return st

    def _stmt_EmptyStatement(self, node, scope):
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            return UNDEFINED
        return st

    def _stmt_ExpressionStatement(self, node, scope):
        expr = self._expr(node.expression, scope)
        return self._tick_only(node.line, node.col, expr)

    def _stmt_VariableDeclaration(self, node, scope):
        decls = []
        for d in node.declarations:
            init_c = self._expr(d.init, scope) if d.init is not None else None
            decls.append((init_c, self._declare(d.name, scope)))
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            for init_c, store in decls:
                store(rt, f, init_c(rt, f) if init_c is not None else UNDEFINED)
            return UNDEFINED
        return st

    def _stmt_FunctionDeclaration(self, node, scope):
        template = self._fn_template_for(node, scope)
        line, col = node.line, node.col
        if scope is None:
            name = node.name

            def st(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                rt.gvars[name] = CompiledFunction(template, None)
                return UNDEFINED
            return st
        slot = scope.slots[node.name]

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            f[slot] = CompiledFunction(template, f)
            return UNDEFINED
        return st

    def _stmt_ReturnStatement(self, node, scope):
        arg_c = self._expr(node.argument, scope) if node.argument is not None else None
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            raise _Return(arg_c(rt, f) if arg_c is not None else UNDEFINED)
        return st

    def _stmt_IfStatement(self, node, scope):
        test_c = self._expr(node.test, scope)
        cons_c = self._stmt(node.consequent, scope)
        alt_c = self._stmt(node.alternate, scope) if node.alternate is not None else None
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            if js_truthy(test_c(rt, f)):
                return cons_c(rt, f)
            if alt_c is not None:
                return alt_c(rt, f)
            return UNDEFINED
        return st

    def _stmt_Block(self, node, scope):
        return self._compile_block(node, scope, ticked=True)

    def _compile_block(self, node: N.Block, scope: Optional[_Scope], ticked: bool) -> Callable:
        inner = _Scope(scope)
        for nm in _direct_decls(node.body):
            inner.add(nm)
        hoist = self._hoist_ops(node.body, inner)
        stmts = [self._stmt(st, inner) for st in node.body]
        nslots = len(inner.slots)
        line, col = node.line, node.col

        def block(rt, f):
            if ticked:
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            nf = [f] + [_HOLE] * nslots
            for op in hoist:
                op(rt, nf)
            result = UNDEFINED
            for st in stmts:
                result = st(rt, nf)
            return result
        return block

    def _stmt_ForStatement(self, node, scope):
        lscope = _Scope(scope)
        if isinstance(node.init, N.VariableDeclaration):
            for d in node.init.declarations:
                lscope.add(d.name)
        for nm in _direct_decls([node.body]):
            lscope.add(nm)
        init_c = self._stmt(node.init, lscope) if node.init is not None else None
        # The body may add slots via nested compile order, so compile all
        # statements before reading nslots.
        test_c = self._expr(node.test, lscope) if node.test is not None else None
        update_c = self._expr(node.update, lscope) if node.update is not None else None
        body_c = self._stmt(node.body, lscope)
        nslots = len(lscope.slots)
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            lf = [f] + [_HOLE] * nslots
            if init_c is not None:
                init_c(rt, lf)
            while test_c is None or js_truthy(test_c(rt, lf)):
                try:
                    body_c(rt, lf)
                except _Break:
                    break
                except _Continue:
                    pass
                if update_c is not None:
                    update_c(rt, lf)
            return UNDEFINED
        return st

    def _stmt_ForOfStatement(self, node, scope):
        lscope = _Scope(scope)
        name_slot = lscope.add(node.name)
        for nm in _direct_decls([node.body]):
            lscope.add(nm)
        iter_c = self._expr(node.iterable, scope)
        body_c = self._stmt(node.body, lscope)
        nslots = len(lscope.slots)
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            iterable = iter_c(rt, f)
            if isinstance(iterable, JSArray):
                items = list(iterable.elements)
            elif isinstance(iterable, str):
                items = list(iterable)
            else:
                raise JSRuntimeError("value is not iterable", line, rt.interp.current_script, col)
            for item in items:
                lf = [f] + [_HOLE] * nslots
                lf[name_slot] = item
                try:
                    body_c(rt, lf)
                except _Break:
                    break
                except _Continue:
                    continue
            return UNDEFINED
        return st

    def _stmt_WhileStatement(self, node, scope):
        test_c = self._expr(node.test, scope)
        body_c = self._stmt(node.body, scope)
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            while js_truthy(test_c(rt, f)):
                try:
                    body_c(rt, f)
                except _Break:
                    break
                except _Continue:
                    continue
            return UNDEFINED
        return st

    def _stmt_DoWhileStatement(self, node, scope):
        test_c = self._expr(node.test, scope)
        body_c = self._stmt(node.body, scope)
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            while True:
                try:
                    body_c(rt, f)
                except _Break:
                    break
                except _Continue:
                    pass
                if not js_truthy(test_c(rt, f)):
                    break
            return UNDEFINED
        return st

    def _stmt_BreakStatement(self, node, scope):
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            raise _Break()
        return st

    def _stmt_ContinueStatement(self, node, scope):
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            raise _Continue()
        return st

    def _stmt_ThrowStatement(self, node, scope):
        arg_c = self._expr(node.argument, scope)
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            raise JSThrow(arg_c(rt, f), line, col)
        return st

    def _stmt_SwitchStatement(self, node, scope):
        sscope = _Scope(scope)
        for case in node.cases:
            for nm in _direct_decls(case.body):
                sscope.add(nm)
        disc_c = self._expr(node.discriminant, scope)
        cases = []
        for case in node.cases:
            test_c = self._expr(case.test, sscope) if case.test is not None else None
            cases.append((test_c, [self._stmt(st, sscope) for st in case.body]))
        nslots = len(sscope.slots)
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            value = disc_c(rt, f)
            sf = [f] + [_HOLE] * nslots
            matched = False
            try:
                for test_c, body in cases:
                    if not matched and test_c is not None:
                        if js_equals_strict(value, test_c(rt, sf)):
                            matched = True
                    if matched:
                        for s2 in body:
                            s2(rt, sf)
                if not matched:
                    run = False
                    for test_c, body in cases:
                        if test_c is None:
                            run = True
                        if run:
                            for s2 in body:
                                s2(rt, sf)
            except _Break:
                pass
            return UNDEFINED
        return st

    def _stmt_TryStatement(self, node, scope):
        # The tree-walker calls _exec_Block directly on the try/catch/finally
        # blocks, so those Block nodes are never ticked — mirror that.
        block_c = self._compile_block(node.block, scope, ticked=False)
        handler_c = None
        param_slot = None
        h_nslots = 0
        if node.handler is not None:
            hscope = _Scope(scope)
            if node.param:
                param_slot = hscope.add(node.param)
            handler_c = self._compile_block(node.handler, hscope, ticked=False)
            h_nslots = len(hscope.slots)
        finalizer_c = self._compile_block(node.finalizer, scope, ticked=False) if node.finalizer is not None else None
        line, col = node.line, node.col

        def st(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            try:
                block_c(rt, f)
            except JSThrow as exc:
                if handler_c is not None:
                    hf = [f] + [_HOLE] * h_nslots
                    if param_slot is not None:
                        hf[param_slot] = exc.value
                    handler_c(rt, hf)
                else:
                    raise
            finally:
                if finalizer_c is not None:
                    finalizer_c(rt, f)
            return UNDEFINED
        return st

    # -- expressions ---------------------------------------------------------------

    def _expr(self, node: N.Node, scope: Optional[_Scope]) -> Callable:
        self.node_count += 1
        folded = _fold(node)
        if folded is not None:
            value, cost = folded
            line, col = node.line, node.col

            def const(rt, f):
                rt.steps = s = rt.steps + cost
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return value
            return const
        method = getattr(self, "_expr_" + type(node).__name__, None)
        if method is not None:
            return method(node, scope)
        line, col = node.line, node.col
        kind = type(node).__name__

        def bad(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            raise JSRuntimeError(f"cannot evaluate {kind}", line, rt.interp.current_script, col)
        return bad

    def _expr_Identifier(self, node, scope):
        return self._read_ident(node.name, scope, node.line, node.col)

    def _expr_ThisExpression(self, node, scope):
        getter = self._this_getter(scope)
        return self._tick_only(node.line, node.col, getter)

    def _expr_ArrayLiteral(self, node, scope):
        elem_cs = [self._expr(e, scope) for e in node.elements]
        line, col = node.line, node.col

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            return JSArray([c(rt, f) for c in elem_cs])
        return e

    def _expr_ObjectLiteral(self, node, scope):
        prop_cs = [(key, self._expr(value, scope)) for key, value in node.properties]
        line, col = node.line, node.col

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            obj = JSObject()
            for key, vc in prop_cs:
                obj.set(key, vc(rt, f))
            return obj
        return e

    def _expr_FunctionExpression(self, node, scope):
        line, col = node.line, node.col
        if node.is_arrow:
            this_get = self._this_getter(scope)
            template = self._function_template(node.params, node.body, node.name, True, scope)

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return CompiledFunction(template, f, lexical_this=this_get(rt, f))
            return e
        if node.name:
            # Named function expressions see themselves through a one-slot
            # wrapper scope (mirrors the tree-walker's fn_env).
            wscope = _Scope(scope)
            wslot = wscope.add(node.name)
            template = self._function_template(node.params, node.body, node.name, False, wscope)

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                wrap = [f, _HOLE]
                fn = CompiledFunction(template, wrap)
                wrap[wslot] = fn
                return fn
            return e
        template = self._function_template(node.params, node.body, None, False, scope)

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            return CompiledFunction(template, f)
        return e

    def _prop_parts(self, node: N.MemberExpression, scope):
        """(name_closure, is_constant_name) for a member expression's property."""
        if node.computed:
            prop_c = self._expr(node.prop, scope)

            def name_of(rt, f):
                return js_to_string(prop_c(rt, f))
            return name_of, None
        name = node.prop

        def name_of(rt, f):
            return name
        return name_of, name

    def _expr_MemberExpression(self, node, scope):
        obj_c = self._expr(node.obj, scope)
        line, col = node.line, node.col
        if not node.computed:
            name = node.prop
            cache: list = [None, False]

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                obj = obj_c(rt, f)
                tobj = type(obj)
                if tobj is JSObject:
                    if cache[0] is obj.shape:
                        rt.ic_hits += 1
                        return obj.properties[name] if cache[1] else UNDEFINED
                    rt.ic_misses += 1
                    cache[0] = obj.shape
                    present = name in obj.properties
                    cache[1] = present
                    return obj.properties[name] if present else UNDEFINED
                if tobj is JSArray:
                    if name == "length":
                        return float(len(obj.elements))
                elif tobj is str:
                    if name == "length":
                        return float(len(obj))
                return rt.interp.get_member(obj, name, line, col)
            return e
        prop_c = self._expr(node.prop, scope)
        getter = _make_member_getter(line, col)

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            obj = obj_c(rt, f)
            return getter(rt, obj, js_to_string(prop_c(rt, f)))
        return e

    def _expr_CallExpression(self, node, scope):
        arg_cs = [self._expr(a, scope) for a in node.args]
        line, col = node.line, node.col
        if isinstance(node.callee, N.MemberExpression):
            callee = node.callee
            obj_c = self._expr(callee.obj, scope)
            name_of, const_name = self._prop_parts(callee, scope)
            getter = _make_member_getter(line, col)

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                this = obj_c(rt, f)
                fn = getter(rt, this, name_of(rt, f))
                args = [a(rt, f) for a in arg_cs]
                return _invoke(rt, fn, this, args, line, col)
            return e
        callee_c = self._expr(node.callee, scope)

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            fn = callee_c(rt, f)
            args = [a(rt, f) for a in arg_cs]
            return _invoke(rt, fn, UNDEFINED, args, line, col)
        return e

    def _expr_NewExpression(self, node, scope):
        callee_c = self._expr(node.callee, scope)
        arg_cs = [self._expr(a, scope) for a in node.args]
        line, col = node.line, node.col

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            fn = callee_c(rt, f)
            args = [a(rt, f) for a in arg_cs]
            if isinstance(fn, NativeFunction):
                return fn.fn(rt.interp, UNDEFINED, args)
            if isinstance(fn, CompiledFunction):
                this = JSObject()
                result = fn.invoke(rt, this, args)
                return result if isinstance(result, JSObject) else this
            if isinstance(fn, JSFunction):
                this = JSObject()
                result = rt.interp._call(fn, this, args, line)
                return result if isinstance(result, JSObject) else this
            raise JSRuntimeError("not a constructor", line, rt.interp.current_script, col)
        return e

    def _expr_UnaryOp(self, node, scope):
        line, col = node.line, node.col
        op = node.op
        if op == "typeof":
            if isinstance(node.operand, N.Identifier):
                has = self._has_ident(node.operand.name, scope)
                operand_c = self._expr(node.operand, scope)

                def e(rt, f):
                    rt.steps = s = rt.steps + 1
                    if s > rt.budget:
                        raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                    if not has(rt, f):
                        return "undefined"
                    return js_type_of(operand_c(rt, f))
                return e
            operand_c = self._expr(node.operand, scope)

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return js_type_of(operand_c(rt, f))
            return e
        if op == "delete":
            if isinstance(node.operand, N.MemberExpression):
                obj_c = self._expr(node.operand.obj, scope)
                name_of, _ = self._prop_parts(node.operand, scope)

                def e(rt, f):
                    rt.steps = s = rt.steps + 1
                    if s > rt.budget:
                        raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                    obj = obj_c(rt, f)
                    name = name_of(rt, f)
                    if isinstance(obj, JSObject):
                        return obj.delete(name)
                    return True
                return e

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return True
            return e
        operand_c = self._expr(node.operand, scope)
        if op == "!":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return not js_truthy(operand_c(rt, f))
            return e
        if op == "-":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return -js_to_number(operand_c(rt, f))
            return e
        if op == "+":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return js_to_number(operand_c(rt, f))
            return e
        if op == "~":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return float(~ops.to_int32(js_to_number(operand_c(rt, f))))
            return e

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            operand_c(rt, f)
            raise JSRuntimeError(f"unknown unary operator {op}", line, rt.interp.current_script, col)
        return e

    def _expr_UpdateExpression(self, node, scope):
        line, col = node.line, node.col
        delta = 1.0 if node.op == "++" else -1.0
        prefix = node.prefix
        target = node.target
        if isinstance(target, N.Identifier):
            read_nt = self._read_ident(target.name, scope, target.line, target.col, ticked=False)
            write = self._write_ident(target.name, scope)

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                old = js_to_number(read_nt(rt, f))
                new = old + delta
                write(rt, f, new)
                return new if prefix else old
            return e
        if isinstance(target, N.MemberExpression):
            obj_c = self._expr(target.obj, scope)
            name_of, _ = self._prop_parts(target, scope)
            getter = _make_member_getter(target.line, target.col)
            tline, tcol = target.line, target.col

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                # The tree-walker evaluates the object (and a computed
                # property) once for the read and again for the write —
                # side effects and step charges both happen twice.
                old = js_to_number(getter(rt, obj_c(rt, f), name_of(rt, f)))
                new = old + delta
                _member_set(rt, obj_c(rt, f), name_of(rt, f), new, tline, tcol)
                return new if prefix else old
            return e

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            raise JSRuntimeError("invalid reference", target.line, rt.interp.current_script, target.col)
        return e

    def _expr_BinaryOp(self, node, scope):
        lc = self._expr(node.left, scope)
        rc = self._expr(node.right, scope)
        line, col = node.line, node.col
        op = node.op
        if op == "+":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                right = rc(rt, f)
                tl = type(left)
                tr = type(right)
                if tl is float and tr is float:
                    return left + right
                if tl is str and tr is str:
                    return left + right
                if isinstance(left, str) or isinstance(right, str) or isinstance(left, JSObject) or isinstance(right, JSObject):
                    return js_to_string(left) + js_to_string(right)
                return js_to_number(left) + js_to_number(right)
            return e
        if op == "-":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                right = rc(rt, f)
                if type(left) is float and type(right) is float:
                    return left - right
                return js_to_number(left) - js_to_number(right)
            return e
        if op == "*":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                right = rc(rt, f)
                if type(left) is float and type(right) is float:
                    return left * right
                return js_to_number(left) * js_to_number(right)
            return e
        if op == "/":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                right = rc(rt, f)
                if type(left) is float and type(right) is float and right != 0:
                    return left / right
                return ops.js_div(left, right)
            return e
        if op == "%":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return ops.js_mod(lc(rt, f), rc(rt, f))
            return e
        if op == "==":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return js_equals_loose(lc(rt, f), rc(rt, f))
            return e
        if op == "!=":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return not js_equals_loose(lc(rt, f), rc(rt, f))
            return e
        if op == "===":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                right = rc(rt, f)
                if type(left) is float and type(right) is float:
                    return left == right
                return js_equals_strict(left, right)
            return e
        if op == "!==":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                right = rc(rt, f)
                if type(left) is float and type(right) is float:
                    return left != right
                return not js_equals_strict(left, right)
            return e
        if op in ("<", ">", "<=", ">="):
            def e(rt, f, op=op):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                right = rc(rt, f)
                if type(left) is float and type(right) is float:
                    if op == "<":
                        return left < right
                    if op == ">":
                        return left > right
                    if op == "<=":
                        return left <= right
                    return left >= right
                return ops.compare(left, right, op)
            return e
        if op in ("&", "|", "^"):
            def e(rt, f, op=op):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                a = ops.to_int32(js_to_number(lc(rt, f)))
                b = ops.to_int32(js_to_number(rc(rt, f)))
                if op == "&":
                    return float(a & b)
                if op == "|":
                    return float(a | b)
                return float(a ^ b)
            return e
        if op == "<<":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return float(
                    ops.wrap_int32(ops.to_int32(js_to_number(lc(rt, f))) << (ops.to_uint32(js_to_number(rc(rt, f))) & 31))
                )
            return e
        if op == ">>":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return float(ops.to_int32(js_to_number(lc(rt, f))) >> (ops.to_uint32(js_to_number(rc(rt, f))) & 31))
            return e
        if op == ">>>":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                return float(ops.to_uint32(js_to_number(lc(rt, f))) >> (ops.to_uint32(js_to_number(rc(rt, f))) & 31))
            return e
        if op == "in":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                right = rc(rt, f)
                if isinstance(right, JSObject):
                    name = js_to_string(left)
                    if isinstance(right, JSArray):
                        idx = name if not name.isdigit() else int(name)
                        if isinstance(idx, int):
                            return 0 <= idx < len(right.elements)
                    return right.has(name)
                raise JSRuntimeError("'in' on non-object", line, rt.interp.current_script, col)
            return e
        if op == "instanceof":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                rc(rt, f)
                return isinstance(left, JSObject)  # approximation; subset has no prototypes
            return e

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            lc(rt, f)
            rc(rt, f)
            raise JSRuntimeError(f"unknown binary operator {op}", line, rt.interp.current_script, col)
        return e

    def _expr_LogicalOp(self, node, scope):
        lc = self._expr(node.left, scope)
        rc = self._expr(node.right, scope)
        line, col = node.line, node.col
        if node.op == "&&":
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                left = lc(rt, f)
                return rc(rt, f) if js_truthy(left) else left
            return e

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            left = lc(rt, f)
            return left if js_truthy(left) else rc(rt, f)
        return e

    def _expr_ConditionalExpression(self, node, scope):
        test_c = self._expr(node.test, scope)
        cons_c = self._expr(node.consequent, scope)
        alt_c = self._expr(node.alternate, scope)
        line, col = node.line, node.col

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            if js_truthy(test_c(rt, f)):
                return cons_c(rt, f)
            return alt_c(rt, f)
        return e

    def _expr_AssignmentExpression(self, node, scope):
        line, col = node.line, node.col
        target = node.target
        value_c = self._expr(node.value, scope)
        if node.op == "=":
            if isinstance(target, N.Identifier):
                write = self._write_ident(target.name, scope)

                def e(rt, f):
                    rt.steps = s = rt.steps + 1
                    if s > rt.budget:
                        raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                    value = value_c(rt, f)
                    write(rt, f, value)
                    return value
                return e
            if not isinstance(target, N.MemberExpression):
                # Mirrors _assign_reference: the value still evaluates first.
                def e(rt, f):
                    rt.steps = s = rt.steps + 1
                    if s > rt.budget:
                        raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                    value_c(rt, f)
                    raise JSRuntimeError(
                        "invalid assignment target", target.line, rt.interp.current_script, target.col
                    )
                return e
            obj_c = self._expr(target.obj, scope)
            name_of, _ = self._prop_parts(target, scope)
            tline, tcol = target.line, target.col

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                value = value_c(rt, f)
                _member_set(rt, obj_c(rt, f), name_of(rt, f), value, tline, tcol)
                return value
            return e
        binop = node.op[:-1]
        compound = ops.COMPOUND_OPS.get(binop)
        if not isinstance(target, (N.Identifier, N.MemberExpression)):
            # Mirrors _eval_reference: raises before the operand evaluates.
            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                raise JSRuntimeError("invalid reference", target.line, rt.interp.current_script, target.col)
            return e
        if isinstance(target, N.Identifier):
            read_nt = self._read_ident(target.name, scope, target.line, target.col, ticked=False)
            write = self._write_ident(target.name, scope)

            def e(rt, f):
                rt.steps = s = rt.steps + 1
                if s > rt.budget:
                    raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
                current = read_nt(rt, f)
                operand = value_c(rt, f)
                if compound is None:
                    raise JSRuntimeError(
                        f"unsupported compound op {binop}=", line, rt.interp.current_script, col
                    )
                value = compound(current, operand)
                write(rt, f, value)
                return value
            return e
        obj_c = self._expr(target.obj, scope)
        name_of, _ = self._prop_parts(target, scope)
        getter = _make_member_getter(target.line, target.col)
        tline, tcol = target.line, target.col

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            # Object and computed property evaluate twice (read + write),
            # matching the tree-walker's _eval_reference/_assign_reference.
            current = getter(rt, obj_c(rt, f), name_of(rt, f))
            operand = value_c(rt, f)
            if compound is None:
                raise JSRuntimeError(f"unsupported compound op {binop}=", line, rt.interp.current_script, col)
            value = compound(current, operand)
            _member_set(rt, obj_c(rt, f), name_of(rt, f), value, tline, tcol)
            return value
        return e

    def _expr_SequenceExpression(self, node, scope):
        expr_cs = [self._expr(e, scope) for e in node.expressions]
        line, col = node.line, node.col

        def e(rt, f):
            rt.steps = s = rt.steps + 1
            if s > rt.budget:
                raise JSRuntimeError("step budget exceeded", line, rt.interp.current_script, col)
            result = UNDEFINED
            for c in expr_cs:
                result = c(rt, f)
            return result
        return e


# --- program compilation and the shared cache --------------------------------------


def compile_program(program: N.Program) -> CompiledProgram:
    """Lower a parsed program into closures executing in the global scope."""
    c = _Compiler()
    hoist = c._hoist_ops(program.body, None)
    body = [c._stmt(st, None) for st in program.body]
    return CompiledProgram(hoist, body, c.node_count)


#: Compiled programs shared across every page load in the process, keyed by
#: (sha256(source), ENGINE_VERSION).  The script URL is deliberately not in
#: the key: attribution is dynamic (``Interpreter.current_script``), so one
#: vendor script served under many URLs compiles once.
_SCRIPT_CACHE = perf.ByteBudgetLRU("js.cache", "js_cache_bytes")


def script_cache() -> perf.ByteBudgetLRU:
    return _SCRIPT_CACHE


def _source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8", "surrogatepass")).hexdigest()


def compile_enabled(env: Optional[Dict[str, str]] = None) -> bool:
    """Whether compiled execution is on (``REPRO_JS_COMPILE=0`` disables)."""
    env = os.environ if env is None else env
    raw = env.get("REPRO_JS_COMPILE")
    if raw is None:
        return True
    return raw.strip().lower() not in ("0", "false", "off", "no")


def get_or_compile(
    source: str,
    script_url: str = "<inline>",
    ast_cache: Optional[Dict[Any, N.Program]] = None,
    ast_key: Any = None,
) -> CompiledProgram:
    """Fetch the compiled form of ``source`` from the shared cache, compiling on miss."""
    key = (_source_digest(source), ENGINE_VERSION)
    compiled = _SCRIPT_CACHE.get(key)
    if compiled is not None:
        return compiled
    started = time.perf_counter()
    program = None
    if ast_cache is not None:
        if ast_key is None:
            ast_key = (script_url, key[0])
        program = ast_cache.get(ast_key)
        if program is None:
            program = parse(source, script_url)
            ast_cache[ast_key] = program
    else:
        program = parse(source, script_url)
    compiled = compile_program(program)
    elapsed = time.perf_counter() - started
    perf.PERF.miss("js.compile", elapsed)
    _SCRIPT_CACHE.put(key, compiled, compiled.nbytes, elapsed)
    return compiled


def prewarm(sources) -> int:
    """Compile ``sources`` into the shared cache; returns how many were new.

    Called by shard workers before their first page load so every vendor
    script is already compiled when pages start executing.  Already-cached
    sources are skipped without touching hit counters (re-warming a pooled
    worker must not inflate the hit rate).
    """
    if not compile_enabled():
        return 0
    warmed = 0
    for source in sources or ():
        key = (_source_digest(source), ENGINE_VERSION)
        if _SCRIPT_CACHE.contains(key):
            continue
        started = time.perf_counter()
        compiled = compile_program(parse(source, "<prewarm>"))
        elapsed = time.perf_counter() - started
        perf.PERF.miss("js.compile", elapsed)
        _SCRIPT_CACHE.put(key, compiled, compiled.nbytes, elapsed)
        warmed += 1
    return warmed


def run_compiled(interp, compiled: CompiledProgram, script_url: str = "<inline>") -> Any:
    """Execute a compiled program against ``interp``'s global environment.

    Mirrors ``Interpreter.run_program``: resets the step counter, maintains
    the script-attribution stack, and converts an uncaught ``JSThrow`` into
    the same ``JSRuntimeError`` the tree-walker raises.
    """
    rt = ensure_rt(interp)
    rt.budget = interp.step_budget
    rt.steps = 0
    interp._script_stack.append(script_url)
    try:
        for op in compiled.hoist:
            op(rt, None)
        result: Any = UNDEFINED
        for st in compiled.body:
            result = st(rt, None)
        return result
    except JSThrow as exc:
        raise JSRuntimeError(
            f"uncaught exception: {js_to_string(exc.value)}", exc.line, script_url, exc.col
        ) from exc
    finally:
        interp._script_stack.pop()
        _flush_ic(rt)
