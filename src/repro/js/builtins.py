"""Built-in objects and primitive method dispatch for the JS engine.

Provides ``Math``, ``JSON`` (stringify/parse for the value subset),
``console``, ``parseInt``/``parseFloat``/``isNaN``, the ``String``/``Number``
/ ``Array`` / ``Object`` namespace functions, and the instance methods of
strings, numbers, arrays and functions that the synthetic web's scripts use.
"""

from __future__ import annotations

import json as _json
import math
from typing import Any, List, Optional

from repro.js.errors import JSThrow
from repro.js.values import (
    NULL,
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    js_equals_strict,
    js_to_number,
    js_to_string,
    js_truthy,
)

__all__ = [
    "install_globals",
    "string_member",
    "number_member",
    "array_member",
    "function_member",
]


def _nf(name):
    """Decorator: mark a Python function as a native with a JS name."""

    def wrap(fn):
        return NativeFunction(fn, name)

    return wrap


# --- global installation -----------------------------------------------------------


def install_globals(interp) -> None:
    """Populate the interpreter's global environment."""
    g = interp.define_global

    g("NaN", math.nan)
    g("Infinity", math.inf)
    g("globalThis", JSObject())

    g("Math", _make_math(interp))
    g("JSON", _make_json())
    g("console", _make_console(interp))
    g("Object", _make_object_ns())
    g("Array", _make_array_ns())
    g("String", _make_string_ns())
    g("Number", _make_number_ns())
    g("Error", NativeFunction(_error_ctor, "Error"))
    g("TypeError", NativeFunction(_error_ctor, "TypeError"))

    g("parseInt", NativeFunction(_parse_int, "parseInt"))
    g("parseFloat", NativeFunction(_parse_float, "parseFloat"))
    g("isNaN", NativeFunction(lambda i, t, a: math.isnan(js_to_number(a[0] if a else UNDEFINED)), "isNaN"))
    g(
        "isFinite",
        NativeFunction(lambda i, t, a: math.isfinite(js_to_number(a[0] if a else UNDEFINED)), "isFinite"),
    )
    g("btoa", NativeFunction(_btoa, "btoa"))
    g("atob", NativeFunction(_atob, "atob"))
    g("encodeURIComponent", NativeFunction(_encode_uri_component, "encodeURIComponent"))


def _make_math(interp) -> JSObject:
    m = JSObject()
    m.set("PI", math.pi)
    m.set("E", math.e)
    m.set("LN2", math.log(2))
    m.set("SQRT2", math.sqrt(2))

    def unary(name, fn):
        m.set(name, NativeFunction(lambda i, t, a, f=fn: _safe_float(f, a), name))

    unary("abs", abs)
    unary("floor", math.floor)
    unary("ceil", math.ceil)
    unary("sqrt", lambda x: math.sqrt(x) if x >= 0 else math.nan)
    unary("sin", math.sin)
    unary("cos", math.cos)
    unary("tan", math.tan)
    unary("atan", math.atan)
    unary("log", lambda x: math.log(x) if x > 0 else (-math.inf if x == 0 else math.nan))
    unary("exp", math.exp)
    unary("round", lambda x: math.floor(x + 0.5))
    unary("trunc", math.trunc)
    unary("sign", lambda x: math.copysign(1.0, x) if x != 0 else 0.0)

    m.set(
        "pow",
        NativeFunction(
            lambda i, t, a: float(
                math.pow(js_to_number(a[0] if a else UNDEFINED), js_to_number(a[1] if len(a) > 1 else UNDEFINED))
            )
            if a
            else math.nan,
            "pow",
        ),
    )
    m.set(
        "max",
        NativeFunction(lambda i, t, a: max((js_to_number(x) for x in a), default=-math.inf), "max"),
    )
    m.set(
        "min",
        NativeFunction(lambda i, t, a: min((js_to_number(x) for x in a), default=math.inf), "min"),
    )
    m.set(
        "atan2",
        NativeFunction(lambda i, t, a: math.atan2(js_to_number(a[0]), js_to_number(a[1])), "atan2"),
    )
    m.set(
        "hypot",
        NativeFunction(lambda i, t, a: math.hypot(*(js_to_number(x) for x in a)), "hypot"),
    )

    # Math.random is deterministic per interpreter: a seeded LCG the browser
    # reseeds per page load.  Fingerprinting canvases never depend on it, but
    # benign scripts do use it.
    state = {"x": 0x2545F4914F6CDD1D}

    def random(i, t, a):
        state["x"] = (state["x"] * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        return (state["x"] >> 11) / float(1 << 53)

    m.set("random", NativeFunction(random, "random"))
    return m


def _safe_float(fn, args: List[Any]) -> float:
    x = js_to_number(args[0] if args else UNDEFINED)
    if math.isnan(x):
        return math.nan
    try:
        return float(fn(x))
    except (ValueError, OverflowError):
        return math.nan


def _make_console(interp) -> JSObject:
    console = JSObject()

    def log(i, t, a):
        from repro.js.values import js_repr

        interp.console_log.append(" ".join(js_repr(x) for x in a))
        return UNDEFINED

    console.set("log", NativeFunction(log, "log"))
    console.set("warn", NativeFunction(log, "warn"))
    console.set("error", NativeFunction(log, "error"))
    console.set("debug", NativeFunction(log, "debug"))
    return console


def _make_json() -> JSObject:
    ns = JSObject()

    def stringify(i, t, a):
        value = a[0] if a else UNDEFINED
        if value is UNDEFINED:
            return UNDEFINED
        return _json.dumps(_to_python(value), separators=(",", ":"))

    def parse(i, t, a):
        text = js_to_string(a[0] if a else UNDEFINED)
        try:
            return _from_python(_json.loads(text))
        except (_json.JSONDecodeError, ValueError):
            raise JSThrow("SyntaxError: invalid JSON")

    ns.set("stringify", NativeFunction(stringify, "stringify"))
    ns.set("parse", NativeFunction(parse, "parse"))
    return ns


def _to_python(value: Any) -> Any:
    if value is UNDEFINED or value is NULL:
        return None
    if isinstance(value, JSArray):
        return [_to_python(v) for v in value.elements]
    if isinstance(value, (JSFunction, NativeFunction)):
        return None
    if isinstance(value, JSObject):
        return {k: _to_python(v) for k, v in value.properties.items() if not isinstance(v, (JSFunction, NativeFunction))}
    if isinstance(value, float) and value == int(value) and math.isfinite(value):
        return int(value)
    return value


def _from_python(value: Any) -> Any:
    if value is None:
        return NULL
    if isinstance(value, list):
        return JSArray([_from_python(v) for v in value])
    if isinstance(value, dict):
        obj = JSObject()
        for k, v in value.items():
            obj.set(str(k), _from_python(v))
        return obj
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


def _make_object_ns() -> JSObject:
    ns = NativeFunction(lambda i, t, a: JSObject(), "Object")

    def keys(i, t, a):
        obj = a[0] if a else UNDEFINED
        if isinstance(obj, JSArray):
            return JSArray([str(n) for n in range(len(obj.elements))])
        if isinstance(obj, JSObject):
            return JSArray(list(obj.keys()))
        return JSArray([])

    def values(i, t, a):
        obj = a[0] if a else UNDEFINED
        if isinstance(obj, JSArray):
            return JSArray(list(obj.elements))
        if isinstance(obj, JSObject):
            return JSArray([obj.get(k) for k in obj.keys()])
        return JSArray([])

    def assign(i, t, a):
        if not a or not isinstance(a[0], JSObject):
            return a[0] if a else UNDEFINED
        target = a[0]
        for src in a[1:]:
            if isinstance(src, JSObject):
                for k in src.keys():
                    target.set(k, src.get(k))
        return target

    ns.set("keys", NativeFunction(keys, "keys"))
    ns.set("values", NativeFunction(values, "values"))
    ns.set("assign", NativeFunction(assign, "assign"))
    return ns


def _make_array_ns() -> JSObject:
    ns = NativeFunction(
        lambda i, t, a: JSArray([UNDEFINED] * int(js_to_number(a[0]))) if len(a) == 1 and isinstance(a[0], float) else JSArray(list(a)),
        "Array",
    )
    ns.set("isArray", NativeFunction(lambda i, t, a: isinstance(a[0] if a else UNDEFINED, JSArray), "isArray"))

    def array_from(i, t, a):
        src = a[0] if a else UNDEFINED
        if isinstance(src, JSArray):
            items = list(src.elements)
        elif isinstance(src, str):
            items = list(src)
        else:
            items = []
        if len(a) > 1:
            items = [i.call_function(a[1], UNDEFINED, [item, float(idx)]) for idx, item in enumerate(items)]
        return JSArray(items)

    ns.set("from", NativeFunction(array_from, "from"))
    return ns


def _make_string_ns() -> JSObject:
    ns = NativeFunction(lambda i, t, a: js_to_string(a[0]) if a else "", "String")
    ns.set(
        "fromCharCode",
        NativeFunction(lambda i, t, a: "".join(chr(int(js_to_number(x)) & 0xFFFF) for x in a), "fromCharCode"),
    )
    return ns


def _make_number_ns() -> JSObject:
    ns = NativeFunction(lambda i, t, a: js_to_number(a[0]) if a else 0.0, "Number")
    ns.set("MAX_SAFE_INTEGER", float(2**53 - 1))
    ns.set("isInteger", NativeFunction(
        lambda i, t, a: isinstance(a[0], float) and math.isfinite(a[0]) and a[0] == int(a[0]) if a else False,
        "isInteger",
    ))
    ns.set("isNaN", NativeFunction(
        lambda i, t, a: isinstance(a[0], float) and math.isnan(a[0]) if a else False, "isNaN"
    ))
    return ns


def _error_ctor(i, t, a):
    err = JSObject()
    err.js_class = "Error"
    err.set("message", js_to_string(a[0]) if a else "")
    err.set("name", "Error")
    return err


def _parse_int(i, t, a):
    text = js_to_string(a[0] if a else UNDEFINED).strip()
    radix = int(js_to_number(a[1])) if len(a) > 1 and js_truthy(a[1]) else 10
    sign = 1
    if text.startswith(("-", "+")):
        if text[0] == "-":
            sign = -1
        text = text[1:]
    if radix == 16 and text.lower().startswith("0x"):
        text = text[2:]
    elif radix == 10 and text.lower().startswith("0x"):
        radix = 16
        text = text[2:]
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:radix]
    end = 0
    for ch in text.lower():
        if ch not in digits:
            break
        end += 1
    if end == 0:
        return math.nan
    return float(sign * int(text[:end], radix))


def _parse_float(i, t, a):
    text = js_to_string(a[0] if a else UNDEFINED).strip()
    import re

    m = re.match(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", text)
    if not m:
        return math.nan
    return float(m.group(0))


def _btoa(i, t, a):
    import base64

    text = js_to_string(a[0] if a else UNDEFINED)
    try:
        raw = text.encode("latin-1")
    except UnicodeEncodeError:
        raise JSThrow("InvalidCharacterError: btoa on non-latin1 string")
    return base64.b64encode(raw).decode("ascii")


def _atob(i, t, a):
    import base64

    text = js_to_string(a[0] if a else UNDEFINED)
    try:
        return base64.b64decode(text.encode("ascii")).decode("latin-1")
    except Exception:
        raise JSThrow("InvalidCharacterError: atob on invalid base64")


def _encode_uri_component(i, t, a):
    from urllib.parse import quote

    return quote(js_to_string(a[0] if a else UNDEFINED), safe="!'()*-._~")


# --- primitive member dispatch ---------------------------------------------------


def string_member(interp, s: str, name: str) -> Any:
    """Member access on a string primitive."""
    if name == "length":
        return float(len(s))
    if name.isdigit():
        idx = int(name)
        return s[idx] if 0 <= idx < len(s) else UNDEFINED

    def method(fn):
        return NativeFunction(fn, name)

    if name == "charCodeAt":
        return method(lambda i, t, a: float(ord(s[int(js_to_number(a[0] if a else 0.0))])) if 0 <= int(js_to_number(a[0] if a else 0.0)) < len(s) else math.nan)
    if name == "charAt":
        return method(lambda i, t, a: s[int(js_to_number(a[0] if a else 0.0))] if 0 <= int(js_to_number(a[0] if a else 0.0)) < len(s) else "")
    if name == "codePointAt":
        return method(lambda i, t, a: float(ord(s[int(js_to_number(a[0] if a else 0.0))])) if 0 <= int(js_to_number(a[0] if a else 0.0)) < len(s) else UNDEFINED)
    if name == "indexOf":
        return method(lambda i, t, a: float(s.find(js_to_string(a[0] if a else UNDEFINED), int(js_to_number(a[1])) if len(a) > 1 else 0)))
    if name == "lastIndexOf":
        return method(lambda i, t, a: float(s.rfind(js_to_string(a[0] if a else UNDEFINED))))
    if name == "includes":
        return method(lambda i, t, a: js_to_string(a[0] if a else UNDEFINED) in s)
    if name == "startsWith":
        return method(lambda i, t, a: s.startswith(js_to_string(a[0] if a else UNDEFINED)))
    if name == "endsWith":
        return method(lambda i, t, a: s.endswith(js_to_string(a[0] if a else UNDEFINED)))
    if name == "slice":
        return method(lambda i, t, a: _slice_str(s, a))
    if name == "substring":
        return method(lambda i, t, a: _substring(s, a))
    if name == "substr":
        return method(lambda i, t, a: _substr(s, a))
    if name == "toLowerCase":
        return method(lambda i, t, a: s.lower())
    if name == "toUpperCase":
        return method(lambda i, t, a: s.upper())
    if name == "trim":
        return method(lambda i, t, a: s.strip())
    if name == "split":
        return method(lambda i, t, a: _split(s, a))
    if name == "replace":
        return method(lambda i, t, a: s.replace(js_to_string(a[0]), js_to_string(a[1]), 1) if len(a) >= 2 else s)
    if name == "replaceAll":
        return method(lambda i, t, a: s.replace(js_to_string(a[0]), js_to_string(a[1])) if len(a) >= 2 else s)
    if name == "repeat":
        return method(lambda i, t, a: s * int(js_to_number(a[0] if a else 0.0)))
    if name == "padStart":
        return method(lambda i, t, a: s.rjust(int(js_to_number(a[0] if a else 0.0)), js_to_string(a[1]) if len(a) > 1 else " "))
    if name == "padEnd":
        return method(lambda i, t, a: s.ljust(int(js_to_number(a[0] if a else 0.0)), js_to_string(a[1]) if len(a) > 1 else " "))
    if name == "concat":
        return method(lambda i, t, a: s + "".join(js_to_string(x) for x in a))
    if name == "toString":
        return method(lambda i, t, a: s)
    return UNDEFINED


def _slice_str(s: str, a: List[Any]) -> str:
    start = int(js_to_number(a[0])) if a else 0
    end = int(js_to_number(a[1])) if len(a) > 1 and a[1] is not UNDEFINED else len(s)
    return s[slice(*_norm_range(start, end, len(s)))]


def _substring(s: str, a: List[Any]) -> str:
    start = max(0, min(len(s), int(js_to_number(a[0])) if a else 0))
    end = max(0, min(len(s), int(js_to_number(a[1])) if len(a) > 1 and a[1] is not UNDEFINED else len(s)))
    if start > end:
        start, end = end, start
    return s[start:end]


def _substr(s: str, a: List[Any]) -> str:
    start = int(js_to_number(a[0])) if a else 0
    if start < 0:
        start = max(0, len(s) + start)
    length = int(js_to_number(a[1])) if len(a) > 1 else len(s) - start
    return s[start : start + max(0, length)]


def _norm_range(start: int, end: int, n: int):
    if start < 0:
        start = max(0, n + start)
    if end < 0:
        end = max(0, n + end)
    return min(start, n), min(end, n)


def _split(s: str, a: List[Any]) -> JSArray:
    if not a or a[0] is UNDEFINED:
        return JSArray([s])
    sep = js_to_string(a[0])
    if sep == "":
        return JSArray(list(s))
    return JSArray(s.split(sep))


def number_member(interp, x: float, name: str) -> Any:
    def method(fn):
        return NativeFunction(fn, name)

    if name == "toFixed":
        return method(lambda i, t, a: f"{x:.{int(js_to_number(a[0] if a else 0.0))}f}")
    if name == "toString":
        return method(lambda i, t, a: _num_to_radix(x, int(js_to_number(a[0]))) if a else js_to_string(x))
    if name == "toPrecision":
        return method(lambda i, t, a: f"{x:.{int(js_to_number(a[0]))}g}" if a else js_to_string(x))
    if name == "valueOf":
        return method(lambda i, t, a: x)
    return UNDEFINED


def _num_to_radix(x: float, radix: int) -> str:
    if radix == 10:
        return js_to_string(x)
    n = int(x)
    if n == 0:
        return "0"
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"
    sign = "-" if n < 0 else ""
    n = abs(n)
    out = []
    while n:
        out.append(digits[n % radix])
        n //= radix
    return sign + "".join(reversed(out))


def array_member(interp, arr: JSArray, name: str) -> Optional[Any]:
    """Array instance methods; returns None when ``name`` is not a method."""

    def method(fn):
        return NativeFunction(fn, name)

    if name == "push":
        def push(i, t, a):
            arr.elements.extend(a)
            return float(len(arr.elements))
        return method(push)
    if name == "pop":
        return method(lambda i, t, a: arr.elements.pop() if arr.elements else UNDEFINED)
    if name == "shift":
        return method(lambda i, t, a: arr.elements.pop(0) if arr.elements else UNDEFINED)
    if name == "unshift":
        def unshift(i, t, a):
            arr.elements[:0] = a
            return float(len(arr.elements))
        return method(unshift)
    if name == "join":
        return method(
            lambda i, t, a: (js_to_string(a[0]) if a and a[0] is not UNDEFINED else ",").join(
                "" if e is UNDEFINED or e is NULL else js_to_string(e) for e in arr.elements
            )
        )
    if name == "indexOf":
        def index_of(i, t, a):
            target = a[0] if a else UNDEFINED
            for idx, e in enumerate(arr.elements):
                if js_equals_strict(e, target):
                    return float(idx)
            return -1.0
        return method(index_of)
    if name == "includes":
        def includes(i, t, a):
            target = a[0] if a else UNDEFINED
            return any(js_equals_strict(e, target) for e in arr.elements)
        return method(includes)
    if name == "slice":
        def do_slice(i, t, a):
            n = len(arr.elements)
            start = int(js_to_number(a[0])) if a and a[0] is not UNDEFINED else 0
            end = int(js_to_number(a[1])) if len(a) > 1 and a[1] is not UNDEFINED else n
            lo, hi = _norm_range(start, end, n)
            return JSArray(arr.elements[lo:hi])
        return method(do_slice)
    if name == "concat":
        def concat(i, t, a):
            out = list(arr.elements)
            for x in a:
                if isinstance(x, JSArray):
                    out.extend(x.elements)
                else:
                    out.append(x)
            return JSArray(out)
        return method(concat)
    if name == "reverse":
        def reverse(i, t, a):
            arr.elements.reverse()
            return arr
        return method(reverse)
    if name == "map":
        def do_map(i, t, a):
            fn = a[0]
            return JSArray([i.call_function(fn, UNDEFINED, [e, float(idx), arr]) for idx, e in enumerate(arr.elements)])
        return method(do_map)
    if name == "filter":
        def do_filter(i, t, a):
            fn = a[0]
            return JSArray([e for idx, e in enumerate(arr.elements) if js_truthy(i.call_function(fn, UNDEFINED, [e, float(idx), arr]))])
        return method(do_filter)
    if name == "forEach":
        def for_each(i, t, a):
            fn = a[0]
            for idx, e in enumerate(list(arr.elements)):
                i.call_function(fn, UNDEFINED, [e, float(idx), arr])
            return UNDEFINED
        return method(for_each)
    if name == "reduce":
        def reduce(i, t, a):
            fn = a[0]
            items = list(arr.elements)
            if len(a) > 1:
                acc = a[1]
                start = 0
            else:
                if not items:
                    raise JSThrow("TypeError: reduce of empty array with no initial value")
                acc = items[0]
                start = 1
            for idx in range(start, len(items)):
                acc = i.call_function(fn, UNDEFINED, [acc, items[idx], float(idx), arr])
            return acc
        return method(reduce)
    if name == "some":
        def some(i, t, a):
            fn = a[0]
            return any(js_truthy(i.call_function(fn, UNDEFINED, [e, float(idx), arr])) for idx, e in enumerate(arr.elements))
        return method(some)
    if name == "every":
        def every(i, t, a):
            fn = a[0]
            return all(js_truthy(i.call_function(fn, UNDEFINED, [e, float(idx), arr])) for idx, e in enumerate(arr.elements))
        return method(every)
    if name == "sort":
        def sort(i, t, a):
            import functools

            if a and a[0] is not UNDEFINED:
                fn = a[0]
                arr.elements.sort(
                    key=functools.cmp_to_key(
                        lambda x, y: (lambda r: -1 if r < 0 else (1 if r > 0 else 0))(
                            js_to_number(i.call_function(fn, UNDEFINED, [x, y]))
                        )
                    )
                )
            else:
                arr.elements.sort(key=js_to_string)
            return arr
        return method(sort)
    if name == "splice":
        def splice(i, t, a):
            n = len(arr.elements)
            start = int(js_to_number(a[0])) if a else 0
            if start < 0:
                start = max(0, n + start)
            start = min(start, n)
            count = int(js_to_number(a[1])) if len(a) > 1 else n - start
            count = max(0, min(count, n - start))
            removed = arr.elements[start : start + count]
            arr.elements[start : start + count] = list(a[2:])
            return JSArray(removed)
        return method(splice)
    if name == "find":
        def find(i, t, a):
            fn = a[0]
            for idx, e in enumerate(arr.elements):
                if js_truthy(i.call_function(fn, UNDEFINED, [e, float(idx), arr])):
                    return e
            return UNDEFINED
        return method(find)
    if name == "toString":
        return method(lambda i, t, a: js_to_string(arr))
    return None


def function_member(interp, fn, name: str) -> Optional[Any]:
    """Members on function objects (call/apply/bind/name)."""
    if name == "call":
        return NativeFunction(lambda i, t, a: i.call_function(fn, a[0] if a else UNDEFINED, a[1:]), "call")
    if name == "apply":
        def apply(i, t, a):
            this = a[0] if a else UNDEFINED
            args = list(a[1].elements) if len(a) > 1 and isinstance(a[1], JSArray) else []
            return i.call_function(fn, this, args)
        return NativeFunction(apply, "apply")
    if name == "bind":
        def bind(i, t, a):
            bound_this = a[0] if a else UNDEFINED
            bound_args = a[1:]
            return NativeFunction(
                lambda i2, t2, a2: i2.call_function(fn, bound_this, list(bound_args) + list(a2)),
                f"bound {getattr(fn, 'name', '')}",
            )
        return NativeFunction(bind, "bind")
    if name == "name":
        return getattr(fn, "name", "")
    return None
