"""AST node definitions for the ECMAScript subset.

Plain dataclasses; every node carries the source line and column for error
reporting (``col`` is 1-based, 0 meaning unknown — e.g. synthetic nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Node",
    "Program",
    "NumberLiteral",
    "StringLiteral",
    "BooleanLiteral",
    "NullLiteral",
    "UndefinedLiteral",
    "Identifier",
    "ThisExpression",
    "ArrayLiteral",
    "ObjectLiteral",
    "FunctionExpression",
    "UnaryOp",
    "UpdateExpression",
    "BinaryOp",
    "LogicalOp",
    "ConditionalExpression",
    "AssignmentExpression",
    "CallExpression",
    "NewExpression",
    "MemberExpression",
    "SequenceExpression",
    "ExpressionStatement",
    "VariableDeclaration",
    "VariableDeclarator",
    "FunctionDeclaration",
    "ReturnStatement",
    "IfStatement",
    "ForStatement",
    "ForOfStatement",
    "WhileStatement",
    "DoWhileStatement",
    "BreakStatement",
    "ContinueStatement",
    "Block",
    "ThrowStatement",
    "TryStatement",
    "SwitchStatement",
    "SwitchCase",
    "EmptyStatement",
]


@dataclass
class Node:
    line: int = field(default=0, repr=False)
    col: int = field(default=0, repr=False)


# --- expressions ---------------------------------------------------------------


@dataclass
class NumberLiteral(Node):
    value: float = 0.0


@dataclass
class StringLiteral(Node):
    value: str = ""


@dataclass
class BooleanLiteral(Node):
    value: bool = False


@dataclass
class NullLiteral(Node):
    pass


@dataclass
class UndefinedLiteral(Node):
    pass


@dataclass
class Identifier(Node):
    name: str = ""


@dataclass
class ThisExpression(Node):
    pass


@dataclass
class ArrayLiteral(Node):
    elements: List[Node] = field(default_factory=list)


@dataclass
class ObjectLiteral(Node):
    #: (key, value) pairs; keys are plain strings.
    properties: List[Tuple[str, Node]] = field(default_factory=list)


@dataclass
class FunctionExpression(Node):
    params: List[str] = field(default_factory=list)
    body: "Block" = None
    name: Optional[str] = None
    is_arrow: bool = False
    #: Arrow with expression body: the body block holds one return statement.


@dataclass
class UnaryOp(Node):
    op: str = ""
    operand: Node = None


@dataclass
class UpdateExpression(Node):
    op: str = ""  # "++" or "--"
    target: Node = None
    prefix: bool = False


@dataclass
class BinaryOp(Node):
    op: str = ""
    left: Node = None
    right: Node = None


@dataclass
class LogicalOp(Node):
    op: str = ""  # "&&" or "||"
    left: Node = None
    right: Node = None


@dataclass
class ConditionalExpression(Node):
    test: Node = None
    consequent: Node = None
    alternate: Node = None


@dataclass
class AssignmentExpression(Node):
    op: str = "="  # "=", "+=", ...
    target: Node = None
    value: Node = None


@dataclass
class CallExpression(Node):
    callee: Node = None
    args: List[Node] = field(default_factory=list)


@dataclass
class NewExpression(Node):
    callee: Node = None
    args: List[Node] = field(default_factory=list)


@dataclass
class MemberExpression(Node):
    obj: Node = None
    #: Property name for dot access; expression node for computed access.
    prop: Union[str, Node] = ""
    computed: bool = False


@dataclass
class SequenceExpression(Node):
    expressions: List[Node] = field(default_factory=list)


# --- statements ---------------------------------------------------------------


@dataclass
class Block(Node):
    body: List[Node] = field(default_factory=list)


@dataclass
class Program(Node):
    body: List[Node] = field(default_factory=list)


@dataclass
class ExpressionStatement(Node):
    expression: Node = None


@dataclass
class VariableDeclarator(Node):
    name: str = ""
    init: Optional[Node] = None


@dataclass
class VariableDeclaration(Node):
    kind: str = "var"  # var | let | const
    declarations: List[VariableDeclarator] = field(default_factory=list)


@dataclass
class FunctionDeclaration(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: Block = None


@dataclass
class ReturnStatement(Node):
    argument: Optional[Node] = None


@dataclass
class IfStatement(Node):
    test: Node = None
    consequent: Node = None
    alternate: Optional[Node] = None


@dataclass
class ForStatement(Node):
    init: Optional[Node] = None
    test: Optional[Node] = None
    update: Optional[Node] = None
    body: Node = None


@dataclass
class ForOfStatement(Node):
    kind: str = "var"
    name: str = ""
    iterable: Node = None
    body: Node = None


@dataclass
class WhileStatement(Node):
    test: Node = None
    body: Node = None


@dataclass
class DoWhileStatement(Node):
    body: Node = None
    test: Node = None


@dataclass
class BreakStatement(Node):
    pass


@dataclass
class ContinueStatement(Node):
    pass


@dataclass
class ThrowStatement(Node):
    argument: Node = None


@dataclass
class TryStatement(Node):
    block: Block = None
    param: Optional[str] = None
    handler: Optional[Block] = None
    finalizer: Optional[Block] = None


@dataclass
class SwitchCase(Node):
    #: None for the ``default`` clause.
    test: Optional[Node] = None
    body: List[Node] = field(default_factory=list)


@dataclass
class SwitchStatement(Node):
    discriminant: Node = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class EmptyStatement(Node):
    pass
