"""Operator semantics shared by the tree-walking interpreter and the compiler.

Both execution engines (:mod:`repro.js.interpreter` and
:mod:`repro.js.compiler`) must produce bit-identical results, so the
arithmetic that is easy to get subtly wrong twice lives here once: int32
coercions, JS division/modulo edge cases, relational comparison, and the
compound-assignment variants (which historically differ from the plain
binary operators — ``+=`` ignores objects, ``/=`` returns NaN on a zero
divisor where ``/`` returns a signed infinity; both engines must preserve
those quirks exactly).
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.js.values import js_to_number, js_to_string

__all__ = [
    "to_int32",
    "wrap_int32",
    "to_uint32",
    "neg_zero",
    "compare",
    "js_div",
    "js_mod",
    "COMPOUND_OPS",
    "apply_compound",
]


def to_int32(x: float) -> int:
    if math.isnan(x) or math.isinf(x):
        return 0
    n = int(x) & 0xFFFFFFFF
    return n - 0x100000000 if n >= 0x80000000 else n


def wrap_int32(n: int) -> int:
    n &= 0xFFFFFFFF
    return n - 0x100000000 if n >= 0x80000000 else n


def to_uint32(x: float) -> int:
    if math.isnan(x) or math.isinf(x):
        return 0
    return int(x) & 0xFFFFFFFF


def neg_zero(x: float) -> bool:
    return x == 0.0 and math.copysign(1.0, x) < 0


def compare(left: Any, right: Any, op: str) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        a, b = left, right
    else:
        a, b = js_to_number(left), js_to_number(right)
        if isinstance(a, float) and math.isnan(a):
            return False
        if isinstance(b, float) and math.isnan(b):
            return False
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    return a >= b


def js_div(left: Any, right: Any) -> float:
    """The binary ``/`` operator (signed-infinity semantics on zero divisor)."""
    denom = js_to_number(right)
    num = js_to_number(left)
    if denom == 0:
        if num == 0 or math.isnan(num):
            return math.nan
        return math.inf if (num > 0) == (denom >= 0 and not neg_zero(denom)) else -math.inf
    return num / denom


def js_mod(left: Any, right: Any) -> float:
    """The binary ``%`` operator."""
    denom = js_to_number(right)
    num = js_to_number(left)
    if denom == 0 or math.isnan(num) or math.isinf(num):
        return math.nan
    return math.fmod(num, denom)


def _compound_add(left: Any, right: Any) -> Any:
    if isinstance(left, str) or isinstance(right, str):
        return js_to_string(left) + js_to_string(right)
    return js_to_number(left) + js_to_number(right)


def _compound_sub(left: Any, right: Any) -> float:
    return js_to_number(left) - js_to_number(right)


def _compound_mul(left: Any, right: Any) -> float:
    return js_to_number(left) * js_to_number(right)


def _compound_div(left: Any, right: Any) -> float:
    denom = js_to_number(right)
    return js_to_number(left) / denom if denom != 0 else math.nan


def _compound_mod(left: Any, right: Any) -> float:
    denom = js_to_number(right)
    return math.fmod(js_to_number(left), denom) if denom != 0 else math.nan


def _compound_and(left: Any, right: Any) -> float:
    return float(to_int32(js_to_number(left)) & to_int32(js_to_number(right)))


def _compound_or(left: Any, right: Any) -> float:
    return float(to_int32(js_to_number(left)) | to_int32(js_to_number(right)))


def _compound_xor(left: Any, right: Any) -> float:
    return float(to_int32(js_to_number(left)) ^ to_int32(js_to_number(right)))


#: Compound-assignment arithmetic (``x op= y``), keyed by the bare operator.
#:
#: Deliberately NOT the same as the plain binary operators: ``+=`` only
#: checks for strings (objects coerce through ToNumber), and ``/=`` / ``%=``
#: collapse every zero-divisor case to NaN.  The compiler pre-dispatches on
#: the operator at compile time; the interpreter goes through
#: :func:`apply_compound`.
COMPOUND_OPS = {
    "+": _compound_add,
    "-": _compound_sub,
    "*": _compound_mul,
    "/": _compound_div,
    "%": _compound_mod,
    "&": _compound_and,
    "|": _compound_or,
    "^": _compound_xor,
}


def apply_compound(op: str, left: Any, right: Any) -> Optional[Any]:
    """Apply a compound-assignment operator, or return None if unsupported."""
    fn = COMPOUND_OPS.get(op)
    if fn is None:
        return None
    return fn(left, right)
