"""Errors raised by the JavaScript engine."""

from __future__ import annotations

from typing import Optional

__all__ = ["JSError", "JSSyntaxError", "JSRuntimeError", "JSThrow"]


class JSError(Exception):
    """Base class for all engine errors.

    ``message`` deliberately excludes the source location; the formatted
    exception text appends ``script:line:col`` (column omitted when the
    engine does not know it, e.g. for synthetic nodes).
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        script: Optional[str] = None,
        col: Optional[int] = None,
    ):
        self.message = message
        self.line = line
        self.script = script
        self.col = col if col else None
        where = ""
        if script and line is not None:
            where = f" at {script}:{line}"
            if self.col is not None:
                where += f":{self.col}"
        elif script:
            where = f" in {script}"
        elif line is not None:
            where = f" at line {line}"
            if self.col is not None:
                where += f":{self.col}"
        super().__init__(message + where)


class JSSyntaxError(JSError):
    """Lexing or parsing failure."""


class JSRuntimeError(JSError):
    """Evaluation failure (TypeError/ReferenceError analogues)."""


class JSThrow(Exception):
    """Internal control-flow carrier for JS ``throw`` values.

    Converted to :class:`JSRuntimeError` when it escapes uncaught.
    """

    def __init__(self, value, line: Optional[int] = None, col: Optional[int] = None):
        self.value = value
        self.line = line
        self.col = col if col else None
        super().__init__(f"uncaught JS exception: {value!r}")
