"""Errors raised by the JavaScript engine."""

from __future__ import annotations

from typing import Optional

__all__ = ["JSError", "JSSyntaxError", "JSRuntimeError", "JSThrow"]


class JSError(Exception):
    """Base class for all engine errors."""

    def __init__(self, message: str, line: Optional[int] = None, script: Optional[str] = None):
        self.message = message
        self.line = line
        self.script = script
        where = ""
        if script:
            where += f" in {script}"
        if line is not None:
            where += f" at line {line}"
        super().__init__(message + where)


class JSSyntaxError(JSError):
    """Lexing or parsing failure."""


class JSRuntimeError(JSError):
    """Evaluation failure (TypeError/ReferenceError analogues)."""


class JSThrow(Exception):
    """Internal control-flow carrier for JS ``throw`` values.

    Converted to :class:`JSRuntimeError` when it escapes uncaught.
    """

    def __init__(self, value, line: Optional[int] = None):
        self.value = value
        self.line = line
        super().__init__(f"uncaught JS exception: {value!r}")
