"""Abstract interpretation of one script: canvas reachability, def-use
driven taint, effect sets, and termination facts.

One forward pass per function body over the CFG's *live* statements (dead
code contributes nothing), with a small abstract-value lattice:

* allocation-site tracking for canvases (``document.createElement('canvas')``)
  and their 2d contexts, so per-canvas facts — literal dimensions, text vs
  geometry draws, ``save``/``restore`` animation markers — attach to the
  right object even through local aliases;
* taint from canvas readouts (``toDataURL`` / ``getImageData``) propagated
  through expressions, local bindings and interprocedural returns (function
  summaries are computed on demand in the environment captured at the
  definition site, memoized per function node);
* effect sets: which global/window names the script writes and reads — the
  facts the crawl-time triage needs to prove a skipped script invisible to
  its page — plus the host calls it performs and whether it can throw.

Everything is conservative in the direction that matters for its consumer:
reachability and readouts over-approximate (a callback that is stored but
never provably called is still analyzed), while the triage facts
(throw-freedom, termination, host purity) under-approximate — a construct
the analyzer does not recognize simply disqualifies the script from being
skipped, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.js import nodes as N
from repro.js.static.cfg import FunctionCFG, build_cfg

__all__ = ["Analysis", "CanvasAlloc", "ReadoutSite", "analyze_program"]

#: Canvas-API member names that make a script canvas-relevant when they
#: appear in live code (the reachability lattice's generators).
CANVAS_APIS = {
    "getContext", "toDataURL", "getImageData", "fillText", "strokeText",
    "measureText", "requestAnimationFrame",
}

#: Context methods that draw text / geometry (the §3.2 heuristics care
#: whether a fingerprintable readout follows a non-trivial drawing).
TEXT_DRAWS = {"fillText", "strokeText"}
GEOMETRY_DRAWS = {
    "arc", "fill", "rect", "fillRect", "strokeRect", "beginPath", "closePath",
    "bezierCurveTo", "quadraticCurveTo", "ellipse", "lineTo", "moveTo", "stroke",
}
ANIMATION_MARKS = {"save", "restore"}

#: Lossy encodings: a readout in these formats is not stable enough to
#: fingerprint with (mirrors the dynamic detector's lossy-format exclusion).
LOSSY_FORMATS = {"image/jpeg", "image/webp"}

#: Below this square size the entropy is too low (MIN_CANVAS_SIZE mirror).
MIN_CANVAS_SIZE = 16

#: Host globals every page realm defines before any script runs
#: (``Browser.load`` + ``install_globals``): reading them cannot throw.
HOST_GLOBALS = {
    "window", "document", "navigator", "screen", "location", "performance",
    "setTimeout", "addEventListener", "globalThis", "localStorage",
    "sessionStorage",
}
BUILTIN_GLOBALS = {
    "NaN", "Infinity", "undefined", "Math", "JSON", "console", "Object",
    "Array", "String", "Number", "Error", "TypeError", "parseInt",
    "parseFloat", "isNaN", "isFinite", "btoa", "atob", "encodeURIComponent",
}

#: Host member calls that are pure and total: allowed inside a
#: triage-skippable script.  ``Math.*`` is special-cased in code.
PURE_HOST_CALLS = {"performance.now", "JSON.stringify", "JSON.parse"}
PURE_FREE_CALLS = {"parseInt", "parseFloat", "isNaN", "isFinite"}

#: Pure methods on script-local strings/arrays/objects (no callbacks).
PURE_LOCAL_METHODS = {
    "push", "pop", "join", "indexOf", "lastIndexOf", "slice", "concat",
    "charCodeAt", "charAt", "substring", "substr", "toLowerCase",
    "toUpperCase", "split", "trim", "toString", "toFixed", "length",
}

#: Sinks a tainted canvas readout can escape through.
SINK_GLOBAL = "global"
SINK_STORAGE = "storage"
SINK_NETWORK = "network"

_STEP_CAP = 200_000
_LOOP_BOUND_CAP = 4_096


@dataclass
class CanvasAlloc:
    """One ``document.createElement('canvas')`` allocation site."""

    width: Optional[float] = 300.0   # HTML default canvas size
    height: Optional[float] = 150.0
    text: bool = False
    geometry: bool = False
    animated: bool = False

    @property
    def small(self) -> bool:
        return (
            self.width is not None
            and self.height is not None
            and (self.width < MIN_CANVAS_SIZE or self.height < MIN_CANVAS_SIZE)
        )


@dataclass
class ReadoutSite:
    """One live ``toDataURL`` / ``getImageData`` call."""

    api: str
    alloc: Optional[CanvasAlloc]
    lossy: bool = False
    line: int = 0

    def excluded(self, script_animated: bool) -> List[str]:
        """Which §3.2 exclusions fire for this readout, statically."""
        reasons = []
        if self.lossy:
            reasons.append("lossy-format")
        if self.alloc is not None:
            if self.alloc.small:
                reasons.append("small-canvas")
            if self.alloc.animated:
                reasons.append("animation")
        elif script_animated:
            reasons.append("animation")
        return reasons

    def draws(self, script_level: "Analysis") -> Tuple[bool, bool]:
        if self.alloc is not None:
            return self.alloc.text, self.alloc.geometry
        return script_level.text_draws, script_level.geometry_draws


class AV:
    """An abstract value: kind + canvas allocation + taint + literal."""

    __slots__ = ("kind", "literal", "alloc", "fn", "fn_env", "host", "tainted",
                 "taint_src", "safe", "props", "length")

    def __init__(self, kind="top", literal=None, alloc=None, fn=None,
                 fn_env=None, host=None, tainted=False, taint_src=None,
                 safe=False, props=None, length=None):
        self.kind = kind            # top|num|str|bool|undef|null|canvas|context
        #                           # |imagedata|fn|obj|arr|host
        self.literal = literal
        self.alloc = alloc
        self.fn = fn
        self.fn_env = fn_env
        self.host = host            # tuple path for host roots, e.g. ("document",)
        self.tainted = tainted
        self.taint_src = taint_src  # "toDataURL" | "getImageData"
        self.safe = safe            # member access on this value cannot throw
        self.props = props          # known properties of object literals
        self.length = length        # known length of array literals

    def with_taint(self, other: "AV") -> "AV":
        if other.tainted and not self.tainted:
            self.tainted = True
            self.taint_src = self.taint_src or other.taint_src
        return self


def _top(safe=False) -> AV:
    return AV("top", safe=safe)


class Env:
    """A lexical scope: name -> AV, chained to the enclosing scope."""

    def __init__(self, parent: Optional["Env"] = None):
        self.vars: Dict[str, AV] = {}
        self.parent = parent

    def lookup(self, name: str) -> Optional[AV]:
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        return None

    def assign(self, name: str, value: AV) -> bool:
        """Assign to an existing binding; False when the name is free."""
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return True
            env = env.parent
        return False

    def root(self) -> "Env":
        env = self
        while env.parent is not None:
            env = env.parent
        return env


@dataclass
class Analysis:
    """Everything one pass over a script produces."""

    api_profile: Set[str] = field(default_factory=set)
    readouts: List[ReadoutSite] = field(default_factory=list)
    taint_paths: Set[Tuple[str, str]] = field(default_factory=set)
    global_writes: Set[str] = field(default_factory=set)
    global_reads: Set[str] = field(default_factory=set)
    reads_top: bool = False
    host_calls: Set[str] = field(default_factory=set)
    throw_reasons: List[str] = field(default_factory=list)
    nonterm_reasons: List[str] = field(default_factory=list)
    step_bound: int = 0
    loops: bool = False
    text_draws: bool = False
    geometry_draws: bool = False
    animated: bool = False
    canvas_mention: bool = False

    def may_throw(self) -> bool:
        return bool(self.throw_reasons)

    def terminating(self) -> bool:
        return not self.nonterm_reasons and self.step_bound <= _STEP_CAP


class _Analyzer:
    def __init__(self, program: N.Program):
        self.program = program
        self.result = Analysis()
        self._summaries: Dict[int, AV] = {}
        self._in_progress: Set[int] = set()
        self._pending_fns: List[Tuple[N.Node, Env]] = []
        self._analyzed_fns: Set[int] = set()
        self._try_depth = 0

    # -- entry -----------------------------------------------------------------

    def run(self) -> Analysis:
        global_env = Env()
        self._hoist(self.program.body, global_env, is_global=True)
        self._exec_body(self.program.body, global_env)
        # Callbacks that were stored but never provably invoked still run in
        # a real page (event handlers, timers): analyze them so their reads,
        # writes and canvas traffic count.  Analyzing one can discover more.
        seen = 0
        while seen < len(self._pending_fns):
            fn, env = self._pending_fns[seen]
            seen += 1
            if id(fn) not in self._analyzed_fns:
                self._call_function(AV("fn", fn=fn, fn_env=env, safe=True), [])
        return self.result

    # -- scaffolding -----------------------------------------------------------

    def _hoist(self, body: Sequence[N.Node], env: Env, is_global: bool) -> None:
        """Declare var/function names of one function scope (not nested fns)."""

        def walk(stmts: Sequence[N.Node]) -> None:
            for stmt in stmts:
                if isinstance(stmt, N.VariableDeclaration):
                    for decl in stmt.declarations:
                        env.vars.setdefault(decl.name, AV("undef", safe=False))
                        if is_global:
                            self.result.global_writes.add(decl.name)
                elif isinstance(stmt, N.FunctionDeclaration):
                    env.vars[stmt.name] = AV("fn", fn=stmt, fn_env=env, safe=True)
                    if is_global:
                        self.result.global_writes.add(stmt.name)
                elif isinstance(stmt, N.Block):
                    walk(stmt.body)
                elif isinstance(stmt, N.IfStatement):
                    walk([s for s in (stmt.consequent, stmt.alternate) if s])
                elif isinstance(stmt, (N.WhileStatement, N.DoWhileStatement, N.ForStatement, N.ForOfStatement)):
                    if isinstance(stmt, N.ForStatement) and isinstance(stmt.init, N.VariableDeclaration):
                        walk([stmt.init])
                    if isinstance(stmt, N.ForOfStatement):
                        env.vars.setdefault(stmt.name, AV("top"))
                    walk([stmt.body] if stmt.body else [])
                elif isinstance(stmt, N.TryStatement):
                    walk(stmt.block.body if stmt.block else [])
                    if stmt.handler:
                        walk(stmt.handler.body)
                    if stmt.finalizer:
                        walk(stmt.finalizer.body)
                elif isinstance(stmt, N.SwitchStatement):
                    for case in stmt.cases:
                        walk(case.body)

        walk(body)

    def _exec_body(self, body: Sequence[N.Node], env: Env) -> AV:
        """Run one function body over its CFG's live statements; returns the
        merged abstract return value."""
        cfg = build_cfg(list(body))
        if cfg.has_loops:
            self.result.loops = True
        self._bound_loops(cfg)
        ret = AV("undef", safe=False)
        ret = self._exec_stmts(body, env, cfg, ret)
        if cfg.has_loops:
            # Second pass stabilizes loop-carried facts (taint through an
            # accumulator, dims set inside the loop): the lattice only ever
            # gains facts, so two passes reach the fixpoint for this
            # flow-insensitive domain.
            ret = self._exec_stmts(body, env, cfg, ret)
        return ret

    def _bound_loops(self, cfg: FunctionCFG) -> None:
        for loop in cfg.loop_statements:
            bound = self._literal_bound(loop)
            if bound is None:
                self.result.nonterm_reasons.append(
                    f"unbounded loop at line {loop.line}"
                )
                self.result.step_bound = _STEP_CAP + 1
            else:
                self.result.step_bound += bound * 8

    @staticmethod
    def _literal_bound(loop: N.Node) -> Optional[int]:
        """Iteration bound of a literally-bounded counting loop, else None."""
        if not isinstance(loop, N.ForStatement):
            return None
        init, test, update = loop.init, loop.test, loop.update
        if not isinstance(test, N.BinaryOp) or test.op not in ("<", "<="):
            return None
        if not isinstance(test.left, N.Identifier) or not isinstance(test.right, N.NumberLiteral):
            return None
        name = test.left.name
        start = None
        if isinstance(init, N.VariableDeclaration):
            for decl in init.declarations:
                if decl.name == name and isinstance(decl.init, N.NumberLiteral):
                    start = decl.init.value
        elif (
            isinstance(init, N.AssignmentExpression)
            and isinstance(init.target, N.Identifier)
            and init.target.name == name
            and isinstance(init.value, N.NumberLiteral)
        ):
            start = init.value.value
        if start is None:
            return None
        increments = (
            isinstance(update, N.UpdateExpression)
            and isinstance(update.target, N.Identifier)
            and update.target.name == name
            and update.op == "++"
        ) or (
            isinstance(update, N.AssignmentExpression)
            and update.op == "+="
            and isinstance(update.target, N.Identifier)
            and update.target.name == name
            and isinstance(update.value, N.NumberLiteral)
            and update.value.value > 0
        )
        if not increments:
            return None
        span = int(test.right.value - start) + 1
        if span <= 0:
            return 0
        return min(span, _LOOP_BOUND_CAP)

    def _exec_stmts(self, body: Sequence[N.Node], env: Env, cfg: FunctionCFG, ret: AV) -> AV:
        for stmt in body:
            ret = self._exec_stmt(stmt, env, cfg, ret)
        return ret

    # -- statements ------------------------------------------------------------

    def _exec_stmt(self, stmt: N.Node, env: Env, cfg: FunctionCFG, ret: AV) -> AV:
        if stmt is None or not cfg.is_live(stmt):
            return ret
        self.result.step_bound += 1

        if isinstance(stmt, N.ExpressionStatement):
            self._eval(stmt.expression, env)
        elif isinstance(stmt, N.VariableDeclaration):
            for decl in stmt.declarations:
                value = self._eval(decl.init, env) if decl.init is not None else AV("undef", safe=False)
                env.vars[decl.name] = value
        elif isinstance(stmt, N.FunctionDeclaration):
            env.vars[stmt.name] = AV("fn", fn=stmt, fn_env=env, safe=True)
        elif isinstance(stmt, N.ReturnStatement):
            if stmt.argument is not None:
                value = self._eval(stmt.argument, env)
                if value.tainted or ret.kind == "undef":
                    ret = value if not ret.tainted else ret.with_taint(value)
                ret.with_taint(value)
        elif isinstance(stmt, N.IfStatement):
            self._eval(stmt.test, env)
            # Both arms execute over one shared env: the union of their
            # effects over-approximates either path.
            ret = self._exec_stmt(stmt.consequent, env, cfg, ret)
            if stmt.alternate is not None:
                ret = self._exec_stmt(stmt.alternate, env, cfg, ret)
        elif isinstance(stmt, N.Block):
            ret = self._exec_stmts(stmt.body, env, cfg, ret)
        elif isinstance(stmt, N.ForStatement):
            if isinstance(stmt.init, N.VariableDeclaration):
                ret = self._exec_stmt(stmt.init, env, cfg, ret)
            elif stmt.init is not None:
                self._eval(stmt.init, env)
            if stmt.test is not None:
                self._eval(stmt.test, env)
            ret = self._exec_stmt(stmt.body, env, cfg, ret)
            if stmt.update is not None:
                self._eval(stmt.update, env)
        elif isinstance(stmt, N.ForOfStatement):
            iterable = self._eval(stmt.iterable, env)
            if iterable.kind not in ("arr", "str"):
                self._throw_risk(f"for-of over unproven iterable at line {stmt.line}")
            element = _top(safe=False)
            element.with_taint(iterable)
            env.vars[stmt.name] = element
            ret = self._exec_stmt(stmt.body, env, cfg, ret)
        elif isinstance(stmt, (N.WhileStatement, N.DoWhileStatement)):
            self._eval(stmt.test, env)
            ret = self._exec_stmt(stmt.body, env, cfg, ret)
        elif isinstance(stmt, N.ThrowStatement):
            self._eval(stmt.argument, env)
            if self._try_depth == 0:
                self._throw_risk(f"explicit throw at line {stmt.line}")
        elif isinstance(stmt, N.TryStatement):
            contained = stmt.handler is not None
            if contained:
                self._try_depth += 1
            try:
                if stmt.block is not None:
                    ret = self._exec_stmts(stmt.block.body, env, cfg, ret)
            finally:
                if contained:
                    self._try_depth -= 1
            if stmt.handler is not None:
                env.vars[stmt.param or "__err"] = _top(safe=False)
                ret = self._exec_stmts(stmt.handler.body, env, cfg, ret)
            if stmt.finalizer is not None:
                ret = self._exec_stmts(stmt.finalizer.body, env, cfg, ret)
        elif isinstance(stmt, N.SwitchStatement):
            self._eval(stmt.discriminant, env)
            for case in stmt.cases:
                if case.test is not None:
                    self._eval(case.test, env)
                ret = self._exec_stmts(case.body, env, cfg, ret)
        # Break/Continue/Empty: nothing to evaluate.
        return ret

    # -- expressions -----------------------------------------------------------

    def _eval(self, node: Optional[N.Node], env: Env) -> AV:
        if node is None:
            return AV("undef", safe=False)
        self.result.step_bound += 1
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            self._throw_risk(f"unmodelled expression {type(node).__name__}")
            self.result.reads_top = True
            return _top()
        return method(node, env)

    def _eval_NumberLiteral(self, node, env):
        return AV("num", literal=node.value, safe=True)

    def _eval_StringLiteral(self, node, env):
        return AV("str", literal=node.value, safe=True)

    def _eval_BooleanLiteral(self, node, env):
        return AV("bool", literal=node.value, safe=True)

    def _eval_NullLiteral(self, node, env):
        return AV("null", safe=False)

    def _eval_UndefinedLiteral(self, node, env):
        return AV("undef", safe=False)

    def _eval_ThisExpression(self, node, env):
        # Top-level `this` is the window; treat as the host window object.
        return AV("host", host=("window",), safe=True)

    def _eval_Identifier(self, node, env):
        name = node.name
        if name in CANVAS_APIS:
            self.result.canvas_mention = True
        found = env.lookup(name)
        if found is not None:
            return found
        if name == "requestAnimationFrame":
            self.result.animated = True
            self.result.api_profile.add(name)
        if name in HOST_GLOBALS or name in BUILTIN_GLOBALS:
            return AV("host", host=(name,), safe=True)
        # Free read of a name no layer defines: another script's global (or a
        # ReferenceError at runtime).
        self.result.global_reads.add(name)
        self._throw_risk(f"free read of '{name}'")
        return _top(safe=False)

    def _eval_ArrayLiteral(self, node, env):
        out = AV("arr", safe=True, length=len(node.elements))
        for element in node.elements:
            out.with_taint(self._eval(element, env))
        return out

    def _eval_ObjectLiteral(self, node, env):
        props: Dict[str, AV] = {}
        out = AV("obj", safe=True)
        for key, value in node.properties:
            value_av = self._eval(value, env)
            props[key] = value_av
            out.with_taint(value_av)
        out.props = props
        return out

    def _eval_FunctionExpression(self, node, env):
        fn = AV("fn", fn=node, fn_env=env, safe=True)
        self._pending_fns.append((node, env))
        return fn

    def _eval_SequenceExpression(self, node, env):
        value = AV("undef", safe=False)
        for expression in node.expressions:
            value = self._eval(expression, env)
        return value

    def _eval_UnaryOp(self, node, env):
        if node.op == "typeof" and isinstance(node.operand, N.Identifier):
            # `typeof missing` never throws: record the read, skip the risk.
            name = node.operand.name
            if env.lookup(name) is None and name not in HOST_GLOBALS and name not in BUILTIN_GLOBALS:
                self.result.global_reads.add(name)
            return AV("str", safe=True)
        operand = self._eval(node.operand, env)
        out = AV("bool" if node.op == "!" else "num", safe=True)
        return out.with_taint(operand)

    def _eval_UpdateExpression(self, node, env):
        self._assign_target(node.target, AV("num", safe=True), env, reads=True)
        return AV("num", safe=True)

    def _eval_BinaryOp(self, node, env):
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if node.op in ("<", ">", "<=", ">=", "==", "===", "!=", "!==", "instanceof", "in"):
            out = AV("bool", safe=True)
        elif node.op == "+" and (left.kind == "str" or right.kind == "str"):
            if left.literal is not None and right.literal is not None:
                out = AV("str", literal=f"{left.literal}{right.literal}", safe=True)
            else:
                out = AV("str", safe=True)
        else:
            out = AV("num", safe=True)
            if left.literal is not None and right.literal is not None and node.op in ("+", "-", "*"):
                try:
                    value = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                             "*": lambda a, b: a * b}[node.op](left.literal, right.literal)
                    out.literal = value
                except TypeError:
                    pass
        return out.with_taint(left).with_taint(right)

    def _eval_LogicalOp(self, node, env):
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        out = _top(safe=left.safe and right.safe)
        return out.with_taint(left).with_taint(right)

    def _eval_ConditionalExpression(self, node, env):
        self._eval(node.test, env)
        a = self._eval(node.consequent, env)
        b = self._eval(node.alternate, env)
        out = _top(safe=a.safe and b.safe)
        return out.with_taint(a).with_taint(b)

    def _eval_AssignmentExpression(self, node, env):
        value = self._eval(node.value, env)
        self._assign_target(node.target, value, env, reads=node.op != "=")
        return value

    def _eval_NewExpression(self, node, env):
        for arg in node.args:
            self._eval(arg, env)
        callee = node.callee
        self._throw_risk(f"new expression at line {node.line}")
        if isinstance(callee, N.Identifier):
            if callee.name == "Image":
                return AV("host", host=("image",), safe=True)
            if callee.name == "XMLHttpRequest":
                return AV("host", host=("xhr",), safe=True)
        return _top(safe=False)

    def _eval_MemberExpression(self, node, env):
        base = self._eval(node.obj, env)
        if node.computed:
            index = self._eval(node.prop, env)
            if base.kind == "host":
                # window[expr]: could read any global on the page.
                self.result.reads_top = True
                self._throw_risk("computed member on a host object")
                return _top(safe=False)
            if base.kind not in ("arr", "str", "obj", "imagedata"):
                self._throw_risk("computed member on unproven base")
            out = _top(safe=False)
            out.with_taint(base).with_taint(index)
            return out
        prop = node.prop
        if prop in CANVAS_APIS:
            self.result.canvas_mention = True
        if not base.safe:
            self._throw_risk(f"member '.{prop}' on unproven base at line {node.line}")
        if base.kind == "host":
            return self._host_member(base, prop)
        if base.kind in ("canvas", "context"):
            # Method values on canvases are handled at call sites; a bare
            # property read (width, height) is a plain number.
            return AV("num" if prop in ("width", "height") else "top", safe=True)
        if base.kind == "obj" and base.props is not None and prop in base.props:
            return base.props[prop]
        if base.kind in ("arr", "str") and prop == "length":
            out = AV("num", literal=base.length, safe=True)
            return out.with_taint(base)
        out = _top(safe=False)
        return out.with_taint(base)

    def _host_member(self, base: AV, prop: str) -> AV:
        path = base.host + (prop,)
        if base.host == ("window",):
            # One namespace with the globals: window.x and bare x are the
            # same pool as far as cross-script visibility goes.
            self.result.global_reads.add(prop)
            if prop in HOST_GLOBALS or prop in BUILTIN_GLOBALS:
                return AV("host", host=(prop,), safe=True)
            return _top(safe=False)
        return AV("host", host=path, safe=True)

    def _eval_CallExpression(self, node, env):
        args = [self._eval(arg, env) for arg in node.args]

        callee = node.callee
        if isinstance(callee, N.Identifier):
            return self._call_free(callee.name, args, env, node)
        if isinstance(callee, N.MemberExpression) and not callee.computed:
            base = self._eval(callee.obj, env)
            return self._call_member(base, callee.prop, args, node)
        if isinstance(callee, N.FunctionExpression):
            fn = self._eval(callee, env)
            return self._call_function(fn, args)
        value = self._eval(callee, env)
        if value.kind == "fn":
            return self._call_function(value, args)
        self._throw_risk(f"call of unproven callee at line {node.line}")
        return _top(safe=False)

    def _call_free(self, name: str, args: List[AV], env: Env, node) -> AV:
        found = env.lookup(name)
        if found is not None:
            if found.kind == "fn":
                return self._call_function(found, args)
            self._throw_risk(f"call of unproven '{name}'")
            return _top(safe=False)
        if name == "requestAnimationFrame":
            self.result.animated = True
            self.result.api_profile.add(name)
            self.result.host_calls.add(name)
            for arg in args:
                if arg.kind == "fn":
                    self._call_function(arg, [])
            return AV("num", safe=True)
        if name in ("setTimeout", "addEventListener", "fetch"):
            self.result.host_calls.add(name)
            if name == "fetch":
                self._record_sinks(args, SINK_NETWORK)
            for arg in args:
                if arg.kind == "fn":
                    self._call_function(arg, [])
            return _top(safe=True)
        if name in PURE_FREE_CALLS:
            self.result.host_calls.add(name)
            out = AV("num", safe=True)
            for arg in args:
                out.with_taint(arg)
            return out
        if name in BUILTIN_GLOBALS or name in HOST_GLOBALS:
            self.result.host_calls.add(name)
            out = _top(safe=True)
            for arg in args:
                out.with_taint(arg)
            return out
        self.result.global_reads.add(name)
        self._throw_risk(f"call of free '{name}'")
        return _top(safe=False)

    def _call_member(self, base: AV, prop: str, args: List[AV], node) -> AV:
        if prop in CANVAS_APIS:
            self.result.canvas_mention = True

        if base.kind == "canvas":
            return self._canvas_call(base, prop, args, node)
        if base.kind == "context":
            return self._context_call(base, prop, args, node)

        if base.kind == "host":
            return self._host_call(base, prop, args, node)

        if base.kind in ("arr", "str", "obj", "num", "imagedata"):
            if prop not in PURE_LOCAL_METHODS:
                self._throw_risk(f"method '.{prop}' on local value at line {node.line}")
            for arg in args:
                if arg.kind == "fn":
                    self._call_function(arg, [])
            out = _top(safe=True)
            out.with_taint(base)
            for arg in args:
                out.with_taint(arg)
            return out

        if base.kind == "fn" and prop in ("call", "apply"):
            return self._call_function(base, args[1:] if args else [])

        self._throw_risk(f"method '.{prop}' on unproven base at line {node.line}")
        out = _top(safe=False)
        out.with_taint(base)
        for arg in args:
            out.with_taint(arg)
        return out

    def _canvas_call(self, base: AV, prop: str, args: List[AV], node) -> AV:
        self.result.api_profile.add(prop)
        if prop == "getContext":
            return AV("context", alloc=base.alloc, safe=True)
        if prop == "toDataURL":
            fmt = args[0].literal if args and args[0].kind == "str" else None
            site = ReadoutSite(
                api="toDataURL",
                alloc=base.alloc,
                lossy=fmt in LOSSY_FORMATS,
                line=node.line,
            )
            self.result.readouts.append(site)
            return AV("str", tainted=True, taint_src="toDataURL", safe=True)
        return AV("top", safe=True)

    def _context_call(self, base: AV, prop: str, args: List[AV], node) -> AV:
        alloc = base.alloc
        if prop in TEXT_DRAWS or prop == "measureText":
            self.result.api_profile.add(prop)
            self.result.text_draws = True
            if alloc is not None:
                alloc.text = True
        elif prop in GEOMETRY_DRAWS:
            self.result.geometry_draws = True
            if alloc is not None:
                alloc.geometry = True
        elif prop in ANIMATION_MARKS:
            self.result.api_profile.add(prop)
            self.result.animated = True
            if alloc is not None:
                alloc.animated = True
        if prop == "getImageData":
            self.result.api_profile.add(prop)
            site = ReadoutSite(api="getImageData", alloc=alloc, line=node.line)
            self.result.readouts.append(site)
            return AV(
                "imagedata", tainted=True, taint_src="getImageData", safe=True
            )
        return AV("top", safe=True)

    def _host_call(self, base: AV, prop: str, args: List[AV], node) -> AV:
        path = ".".join(base.host + (prop,))
        self.result.host_calls.add(path)

        if base.host == ("document",) and prop == "createElement":
            if args and args[0].kind == "str":
                if args[0].literal == "canvas":
                    self.result.canvas_mention = True
                    self.result.api_profile.add("createElement('canvas')")
                    return AV("canvas", alloc=CanvasAlloc(), safe=True)
                return AV("host", host=("domnode",), safe=True)
            # createElement(expr): could mint a canvas.
            self.result.canvas_mention = True
            return _top(safe=True)

        if base.host[0] == "Math":
            out = AV("num", safe=True)
            for arg in args:
                out.with_taint(arg)
            return out
        if path in PURE_HOST_CALLS:
            out = AV("num" if path == "performance.now" else "top", safe=True)
            for arg in args:
                out.with_taint(arg)
            return out

        if path in ("localStorage.setItem", "sessionStorage.setItem"):
            self._record_sinks(args, SINK_STORAGE)
        elif path in ("navigator.sendBeacon", "xhr.send", "xhr.open", "window.fetch"):
            self._record_sinks(args, SINK_NETWORK)
        elif base.host == ("window",) or prop in ("setTimeout", "addEventListener", "requestAnimationFrame"):
            if prop == "requestAnimationFrame":
                self.result.animated = True
                self.result.api_profile.add(prop)

        for arg in args:
            if arg.kind == "fn":
                self._call_function(arg, [])
        return _top(safe=True)

    def _call_function(self, fn: AV, args: List[AV]) -> AV:
        node = fn.fn
        if node is None:
            return _top(safe=False)
        key = id(node)
        self._analyzed_fns.add(key)
        if key in self._in_progress:
            self.result.nonterm_reasons.append("recursive call")
            return _top(safe=False)
        if key in self._summaries:
            summary = self._summaries[key]
            out = _top(safe=summary.safe)
            out.kind = summary.kind
            out.alloc = summary.alloc
            out.with_taint(summary)
            for arg in args:
                out.with_taint(arg)
            return out

        self._in_progress.add(key)
        try:
            local = Env(parent=fn.fn_env)
            params = node.params or []
            for index, param in enumerate(params):
                local.vars[param] = args[index] if index < len(args) else AV("undef", safe=False)
            body = node.body.body if node.body is not None else []
            self._hoist(body, local, is_global=False)
            ret = self._exec_body(body, local)
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = ret
        return ret

    # -- assignment targets ----------------------------------------------------

    def _assign_target(self, target: N.Node, value: AV, env: Env, reads: bool) -> None:
        if isinstance(target, N.Identifier):
            name = target.name
            if reads:
                self._eval(target, env)
            if not env.assign(name, value):
                # Free assignment: creates/overwrites a page global.
                env.root().vars[name] = value
                self.result.global_writes.add(name)
                if value.tainted:
                    self.result.taint_paths.add((value.taint_src or "readout", SINK_GLOBAL))
            return
        if isinstance(target, N.MemberExpression):
            base = self._eval(target.obj, env)
            if target.computed:
                self._eval(target.prop, env)
                if base.kind == "host":
                    self.result.reads_top = True
                    self._throw_risk("computed write on a host object")
                elif base.kind not in ("arr", "obj"):
                    self._throw_risk("computed write on unproven base")
                base.with_taint(value)
                return
            prop = target.prop
            if base.kind == "canvas" and prop in ("width", "height") and base.alloc is not None:
                if value.kind == "num" and value.literal is not None:
                    setattr(base.alloc, prop, float(value.literal))
                else:
                    setattr(base.alloc, prop, None)
                return
            if base.kind == "host":
                if base.host == ("window",):
                    self.result.global_writes.add(prop)
                    if value.tainted:
                        self.result.taint_paths.add(
                            (value.taint_src or "readout", SINK_GLOBAL)
                        )
                elif base.host == ("document",) and prop == "cookie":
                    self.result.host_calls.add("document.cookie=")
                    if value.tainted:
                        self.result.taint_paths.add(
                            (value.taint_src or "readout", SINK_STORAGE)
                        )
                elif base.host == ("image",) and prop == "src":
                    self.result.host_calls.add("image.src=")
                    if value.tainted:
                        self.result.taint_paths.add(
                            (value.taint_src or "readout", SINK_NETWORK)
                        )
                elif base.host[0] in ("localStorage", "sessionStorage"):
                    self.result.host_calls.add(f"{base.host[0]}.{prop}=")
                    if value.tainted:
                        self.result.taint_paths.add(
                            (value.taint_src or "readout", SINK_STORAGE)
                        )
                else:
                    self.result.host_calls.add(".".join(base.host + (prop,)) + "=")
                return
            if base.kind == "obj" and base.props is not None:
                base.props[prop] = value
            if base.kind == "context" and base.alloc is None and value.tainted:
                pass
            base.with_taint(value)
            return
        # Unmodelled target (shouldn't happen with this parser).
        self._throw_risk("unmodelled assignment target")

    def _record_sinks(self, args: List[AV], sink: str) -> None:
        for arg in args:
            if arg.tainted:
                self.result.taint_paths.add((arg.taint_src or "readout", sink))

    def _throw_risk(self, reason: str) -> None:
        if self._try_depth == 0:
            self.result.throw_reasons.append(reason)


def analyze_program(program: N.Program) -> Analysis:
    """Analyze one parsed script; see the module docstring for the contract."""
    return _Analyzer(program).run()
