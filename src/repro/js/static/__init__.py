"""Static analysis over parsed scripts: CFGs, canvas reachability, taint.

Public surface:

* :func:`verdict_for_source` — the cached :class:`StaticVerdict` for one
  script body (parse → CFG → abstract interpretation → classify).
* :func:`analyze_program` / :func:`build_cfg` — the underlying passes, for
  tests and tooling.

See ``docs/static-analysis.md`` for the lattice, the triage safety
argument, and the verdict schema.
"""

from repro.js.static.analyzer import Analysis, CanvasAlloc, ReadoutSite, analyze_program
from repro.js.static.cfg import BasicBlock, FunctionCFG, build_cfg
from repro.js.static.verdict import (
    ANALYZER_VERSION,
    CLASS_BENIGN,
    CLASS_FP_LIKELY,
    CLASS_INERT,
    CLASS_PARSE_ERROR,
    CLASS_UNKNOWN,
    StaticVerdict,
    classify,
    verdict_for_source,
)

__all__ = [
    "Analysis",
    "CanvasAlloc",
    "ReadoutSite",
    "analyze_program",
    "BasicBlock",
    "FunctionCFG",
    "build_cfg",
    "ANALYZER_VERSION",
    "CLASS_BENIGN",
    "CLASS_FP_LIKELY",
    "CLASS_INERT",
    "CLASS_PARSE_ERROR",
    "CLASS_UNKNOWN",
    "StaticVerdict",
    "classify",
    "verdict_for_source",
]
