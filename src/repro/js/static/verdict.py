"""Static verdicts: classification, signatures, and the content-addressed
verdict cache.

A :class:`StaticVerdict` is the whole static subsystem's output for one
script *source* — it depends on nothing but the bytes, so it is cached in a
byte-budget LRU keyed by ``(sha256(source), ANALYZER_VERSION)`` beside the
compiled-program cache, and two scripts served at different URLs with the
same body share one entry.

The fingerprinting-likelihood class mirrors the dynamic detector's §3.2
heuristics statically: a readout in a lossy encoding, from a canvas whose
literal dimensions fall below ``MIN_CANVAS_SIZE``, or from an animated
canvas (``save``/``restore`` / ``requestAnimationFrame``) is excluded, and
only an unexcluded readout following text or geometry drawing makes a
script ``fingerprinting-likely``.
"""

from __future__ import annotations

import hashlib
import re
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import perf
from repro.js import nodes as N
from repro.js.errors import JSError, JSThrow
from repro.js.parser import parse
from repro.js.static.analyzer import Analysis, analyze_program

__all__ = [
    "ANALYZER_VERSION",
    "CLASS_PARSE_ERROR",
    "CLASS_INERT",
    "CLASS_BENIGN",
    "CLASS_UNKNOWN",
    "CLASS_FP_LIKELY",
    "StaticVerdict",
    "classify",
    "verdict_for_source",
]

#: Bumped whenever the analyzer's semantics change: part of the cache key,
#: so stale verdicts can never survive an analyzer upgrade.
ANALYZER_VERSION = "1"

CLASS_PARSE_ERROR = "parse-error"
CLASS_INERT = "inert"
CLASS_BENIGN = "canvas-benign"
CLASS_UNKNOWN = "canvas-unknown"
CLASS_FP_LIKELY = "fingerprinting-likely"

#: Host calls a triage-skippable script may perform (pure, total, and
#: invisible to every other script on the page).  ``Math.*`` is matched by
#: prefix.
_SKIP_PURE_CALLS = {
    "performance.now", "JSON.stringify", "JSON.parse",
    "parseInt", "parseFloat", "isNaN", "isFinite",
}

_BANNER_RE = re.compile(r"/\*!?(.*?)\*/", re.DOTALL)
_STRING_RE = re.compile(r"'([^'\n]{12,})'|\"([^\"\n]{12,})\"")
_MAX_CONSTANTS = 8


@dataclass(frozen=True)
class StaticVerdict:
    """Everything the static pass can say about one script source."""

    sha: str
    classification: str
    api_profile: Tuple[str, ...] = ()
    taint_paths: Tuple[Tuple[str, str], ...] = ()
    signature: Tuple[str, ...] = ()
    readout_count: int = 0
    excluded: Tuple[str, ...] = ()
    skippable: bool = False
    skip_blockers: Tuple[str, ...] = ()
    global_writes: Tuple[str, ...] = ()
    global_reads: Tuple[str, ...] = ()
    reads_top: bool = False
    step_bound: int = 0
    parse_error: Optional[str] = None

    def to_row(self) -> Dict[str, object]:
        """A JSON-friendly flat row for datasets and reducers."""
        return {
            "sha": self.sha,
            "classification": self.classification,
            "api_profile": list(self.api_profile),
            "taint_paths": [list(p) for p in self.taint_paths],
            "signature": list(self.signature),
            "readout_count": self.readout_count,
            "excluded": list(self.excluded),
            "skippable": self.skippable,
            "parse_error": self.parse_error,
        }


def _signature(source: str) -> Tuple[str, ...]:
    """Constant-string signature: the banner comment (vendor SDKs ship
    copyright headers) plus the longest embedded string constants."""
    parts = []
    banner = _BANNER_RE.search(source)
    if banner is not None:
        text = " ".join(banner.group(1).split())
        if text:
            parts.append(text[:160])
    constants = []
    for match in _STRING_RE.finditer(source):
        constants.append(match.group(1) or match.group(2))
    constants = sorted(set(constants), key=lambda s: (-len(s), s))[:_MAX_CONSTANTS]
    return tuple(parts + constants)


def _skip_blockers(analysis: Analysis) -> Tuple[str, ...]:
    """Why this script may NOT be skipped by the crawl-time triage.

    Empty means the triage proved the script (a) cannot reach any canvas
    API, (b) cannot throw, (c) terminates within the step cap, and (d)
    performs only pure whitelisted host calls — so the only trace it leaves
    is its global writes, which the triage tracks separately.
    """
    blockers = []
    if analysis.canvas_mention:
        blockers.append("mentions a canvas API")
    if analysis.may_throw():
        blockers.append(f"may throw: {analysis.throw_reasons[0]}")
    if not analysis.terminating():
        reason = analysis.nonterm_reasons[0] if analysis.nonterm_reasons else "step bound exceeded"
        blockers.append(f"unproven termination: {reason}")
    impure = sorted(
        call for call in analysis.host_calls
        if call not in _SKIP_PURE_CALLS and not call.startswith("Math.")
    )
    if impure:
        blockers.append(f"impure host calls: {', '.join(impure[:4])}")
    if analysis.reads_top:
        blockers.append("reads an unbounded set of globals")
    return tuple(blockers)


def classify(analysis: Analysis) -> Tuple[str, Tuple[str, ...]]:
    """Map one analysis to a likelihood class + the exclusions that fired."""
    if not analysis.canvas_mention:
        return CLASS_INERT, ()
    if not analysis.readouts:
        if analysis.text_draws or analysis.geometry_draws:
            return CLASS_BENIGN, ("no-readout",)
        return CLASS_UNKNOWN, ()
    live = []
    excluded = []
    for site in analysis.readouts:
        reasons = site.excluded(analysis.animated)
        if reasons:
            excluded.extend(reasons)
        else:
            live.append(site)
    if not live:
        return CLASS_BENIGN, tuple(sorted(set(excluded)))
    for site in live:
        text, geometry = site.draws(analysis)
        if text or geometry:
            return CLASS_FP_LIKELY, tuple(sorted(set(excluded)))
    return CLASS_UNKNOWN, tuple(sorted(set(excluded)))


def _build_verdict(source: str, sha: str, script_url: str) -> StaticVerdict:
    try:
        program = parse(source, script=script_url)
        analysis = analyze_program(program)
    except (JSError, JSThrow, RecursionError) as exc:
        return StaticVerdict(
            sha=sha,
            classification=CLASS_PARSE_ERROR,
            signature=_signature(source),
            skip_blockers=("parse error",),
            reads_top=True,
            parse_error=f"{type(exc).__name__}: {exc}"[:200],
        )
    classification, excluded = classify(analysis)
    blockers = _skip_blockers(analysis)
    return StaticVerdict(
        sha=sha,
        classification=classification,
        api_profile=tuple(sorted(analysis.api_profile)),
        taint_paths=tuple(sorted(analysis.taint_paths)),
        signature=_signature(source),
        readout_count=len(analysis.readouts),
        excluded=excluded,
        skippable=not blockers,
        skip_blockers=blockers,
        global_writes=tuple(sorted(analysis.global_writes)),
        global_reads=tuple(sorted(analysis.global_reads)),
        reads_top=analysis.reads_top,
        step_bound=analysis.step_bound,
    )


#: Content-addressed verdict cache, beside the compiled-program cache.
_VERDICT_CACHE = perf.ByteBudgetLRU("js.static", "static_cache_bytes")


def _verdict_nbytes(verdict: StaticVerdict) -> int:
    size = 200
    for value in (verdict.api_profile, verdict.signature, verdict.global_writes,
                  verdict.global_reads, verdict.excluded, verdict.skip_blockers):
        size += sum(len(s) + 16 for s in value)
    size += sum(len(a) + len(b) + 16 for a, b in verdict.taint_paths)
    return size


def verdict_for_source(source: str, script_url: str = "<anonymous>") -> StaticVerdict:
    """The cached static verdict for one script body."""
    sha = hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()
    key = (sha, ANALYZER_VERSION)
    cached = _VERDICT_CACHE.get(key)
    if cached is not None:
        return cached
    started = time.perf_counter()
    verdict = _build_verdict(source, sha, script_url)
    _VERDICT_CACHE.put(
        key, verdict, _verdict_nbytes(verdict), time.perf_counter() - started
    )
    return verdict
