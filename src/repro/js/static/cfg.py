"""Per-function control-flow graphs over the parsed ES-subset AST.

The builder lowers one function body (or the top-level program) into basic
blocks of consecutive statements connected by explicit edges, then computes
graph reachability from the entry block.  Downstream passes only ever ask
two questions, so the public surface is small:

* ``FunctionCFG.is_live(stmt)`` — can this statement execute on *some* path
  from function entry?  Code after an unconditional ``return``/``throw``
  (or a ``break``/``continue``) is dead, and dead code must not contribute
  to a script's API profile, effect sets, or step bound.
* ``FunctionCFG.has_loops`` / ``loop_statements`` — does any back edge
  exist, and through which loop statements?  The triage pass refuses to
  prove termination for anything but literally-bounded loops.

Structured control flow only (the parser has no ``goto`` and no labels), so
the builder is a recursive descent over statement lists carrying a stack of
``(break_target, continue_target)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.js import nodes as N

__all__ = ["BasicBlock", "FunctionCFG", "build_cfg"]


@dataclass
class BasicBlock:
    """A run of statements with a single entry and explicit successor edges."""

    index: int
    statements: List[N.Node] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    def add_edge(self, target: int) -> None:
        if target not in self.successors:
            self.successors.append(target)


class FunctionCFG:
    """The control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        #: id(stmt) for every statement on some path from entry.
        self.live: Set[int] = set()
        #: Loop statements (For/ForOf/While/DoWhile) that are themselves live.
        self.loop_statements: List[N.Node] = []

    # -- construction ----------------------------------------------------------

    def new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    # -- queries ---------------------------------------------------------------

    @property
    def has_loops(self) -> bool:
        return bool(self.loop_statements)

    def is_live(self, stmt: N.Node) -> bool:
        return id(stmt) in self.live

    def live_statements(self) -> List[N.Node]:
        out: List[N.Node] = []
        for block in self.blocks:
            for stmt in block.statements:
                if id(stmt) in self.live:
                    out.append(stmt)
        return out


class _Builder:
    """Recursive-descent lowering of statement lists into ``FunctionCFG``."""

    def __init__(self) -> None:
        self.cfg = FunctionCFG()
        self.exit = self.cfg.new_block()  # block 0: the function exit
        #: (break_target_index, continue_target_index) innermost-last.
        self.loop_stack: List[Tuple[int, Optional[int]]] = []

    def build(self, body: List[N.Node]) -> FunctionCFG:
        entry = self.cfg.new_block()
        last = self.lower_list(body, entry)
        if last is not None:
            last.add_edge(self.exit.index)
        self._mark_reachable(entry.index)
        return self.cfg

    # Each lower_* takes the current block and returns the block control
    # falls through to afterwards, or None when the path terminated
    # (return/throw/break/continue): subsequent statements start a fresh,
    # *unconnected* block, which reachability then classifies as dead.

    def lower_list(self, stmts: List[N.Node], current: BasicBlock) -> Optional[BasicBlock]:
        for stmt in stmts:
            if current is None:
                # Dead continuation: give trailing statements their own
                # disconnected block so they exist in the graph (and are
                # provably dead) rather than silently vanishing.
                current = self.cfg.new_block()
            current = self.lower_stmt(stmt, current)
        return current

    def lower_stmt(self, stmt: N.Node, current: BasicBlock) -> Optional[BasicBlock]:
        current.statements.append(stmt)

        if isinstance(stmt, (N.ReturnStatement, N.ThrowStatement)):
            current.add_edge(self.exit.index)
            return None

        if isinstance(stmt, N.BreakStatement):
            if self.loop_stack:
                current.add_edge(self.loop_stack[-1][0])
            else:  # stray break: treat as function exit, stays conservative
                current.add_edge(self.exit.index)
            return None

        if isinstance(stmt, N.ContinueStatement):
            if self.loop_stack and self.loop_stack[-1][1] is not None:
                current.add_edge(self.loop_stack[-1][1])
            else:
                current.add_edge(self.exit.index)
            return None

        if isinstance(stmt, N.Block):
            return self.lower_list(stmt.body, current)

        if isinstance(stmt, N.IfStatement):
            after = self.cfg.new_block()
            then_block = self.cfg.new_block()
            current.add_edge(then_block.index)
            then_end = self.lower_stmt(stmt.consequent, then_block)
            if then_end is not None:
                then_end.add_edge(after.index)
            if stmt.alternate is not None:
                else_block = self.cfg.new_block()
                current.add_edge(else_block.index)
                else_end = self.lower_stmt(stmt.alternate, else_block)
                if else_end is not None:
                    else_end.add_edge(after.index)
            else:
                current.add_edge(after.index)
            return after

        if isinstance(stmt, (N.WhileStatement, N.ForStatement, N.ForOfStatement)):
            self.cfg.loop_statements.append(stmt)
            head = self.cfg.new_block()
            body = self.cfg.new_block()
            after = self.cfg.new_block()
            current.add_edge(head.index)
            head.add_edge(body.index)
            head.add_edge(after.index)  # zero-iteration path (or loop exit)
            self.loop_stack.append((after.index, head.index))
            body_end = self.lower_stmt(stmt.body, body) if stmt.body is not None else body
            self.loop_stack.pop()
            if body_end is not None:
                body_end.add_edge(head.index)  # the back edge
            return after

        if isinstance(stmt, N.DoWhileStatement):
            self.cfg.loop_statements.append(stmt)
            body = self.cfg.new_block()
            after = self.cfg.new_block()
            current.add_edge(body.index)  # do-while runs the body at least once
            self.loop_stack.append((after.index, body.index))
            body_end = self.lower_stmt(stmt.body, body) if stmt.body is not None else body
            self.loop_stack.pop()
            if body_end is not None:
                body_end.add_edge(body.index)
                body_end.add_edge(after.index)
            return after

        if isinstance(stmt, N.SwitchStatement):
            after = self.cfg.new_block()
            self.loop_stack.append((after.index, None))
            previous_end: Optional[BasicBlock] = None
            saw_default = False
            for case in stmt.cases:
                case_block = self.cfg.new_block()
                current.add_edge(case_block.index)
                saw_default = saw_default or case.test is None
                if previous_end is not None:  # fall-through from prior case
                    previous_end.add_edge(case_block.index)
                previous_end = self.lower_list(case.body, case_block)
            self.loop_stack.pop()
            if previous_end is not None:
                previous_end.add_edge(after.index)
            if not saw_default:
                current.add_edge(after.index)  # no case matched
            return after

        if isinstance(stmt, N.TryStatement):
            after = self.cfg.new_block()
            try_block = self.cfg.new_block()
            current.add_edge(try_block.index)
            try_end = self.lower_list(stmt.block.body if stmt.block else [], try_block)
            if try_end is not None:
                try_end.add_edge(after.index)
            if stmt.handler is not None:
                handler_block = self.cfg.new_block()
                # Any statement in the try may throw: the handler is
                # reachable from the try head, conservatively.
                try_block.add_edge(handler_block.index)
                handler_end = self.lower_list(stmt.handler.body, handler_block)
                if handler_end is not None:
                    handler_end.add_edge(after.index)
            if stmt.finalizer is not None:
                final_block = self.cfg.new_block()
                after.add_edge(final_block.index)
                final_end = self.lower_list(stmt.finalizer.body, final_block)
                after = self.cfg.new_block()
                if final_end is not None:
                    final_end.add_edge(after.index)
            return after

        # Plain statements (expressions, declarations, empty): fall through.
        return current

    def _mark_reachable(self, entry_index: int) -> None:
        seen: Set[int] = set()
        stack = [entry_index]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            block = self.cfg.blocks[index]
            for stmt in block.statements:
                self.cfg.live.add(id(stmt))
            stack.extend(block.successors)
        # A loop statement only counts if its header was reachable.
        self.cfg.loop_statements = [
            loop for loop in self.cfg.loop_statements if id(loop) in self.cfg.live
        ]


def build_cfg(body: List[N.Node]) -> FunctionCFG:
    """Build the CFG of one function body (a list of statements)."""
    return _Builder().build(body)
