"""Token model for the JavaScript lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

__all__ = ["TokenType", "Token", "KEYWORDS", "PUNCTUATORS"]


class TokenType(enum.Enum):
    NUMBER = "number"
    STRING = "string"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "var",
        "let",
        "const",
        "function",
        "return",
        "if",
        "else",
        "for",
        "of",
        "in",
        "while",
        "do",
        "break",
        "continue",
        "true",
        "false",
        "null",
        "undefined",
        "typeof",
        "new",
        "try",
        "catch",
        "finally",
        "throw",
        "switch",
        "case",
        "default",
        "delete",
        "instanceof",
        "this",
    }
)

#: Longest-match-first list of punctuators.
PUNCTUATORS = (
    "===",
    "!==",
    ">>>",
    "...",
    "=>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "!",
    "?",
    ":",
    ".",
    "&",
    "|",
    "^",
    "~",
)


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Union[str, float, int]
    line: int
    #: 1-based column of the token's first character (0 = unknown, e.g.
    #: synthetic tokens produced by template-literal desugaring).
    col: int = 0

    def is_punct(self, *values: str) -> bool:
        return self.type is TokenType.PUNCT and self.value in values

    def is_keyword(self, *values: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.value!r}, line={self.line}, col={self.col})"
