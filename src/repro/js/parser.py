"""Recursive-descent parser for the ECMAScript subset.

Produces the AST in :mod:`repro.js.nodes`.  Operator precedence follows
JavaScript; semicolons are required except before ``}`` and EOF (a pragmatic
subset of automatic semicolon insertion sufficient for the scripts in the
synthetic web).
"""

from __future__ import annotations

from typing import List, Optional

from repro.js import nodes as N
from repro.js.errors import JSSyntaxError
from repro.js.lexer import tokenize
from repro.js.tokens import Token, TokenType

__all__ = ["parse", "Parser"]

# Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "instanceof": 7,
    "in": 7,
    "<<": 8,
    ">>": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")


def parse(source: str, script: str = "<anonymous>") -> N.Program:
    """Parse ``source`` into a :class:`~repro.js.nodes.Program`."""
    return Parser(tokenize(source, script), script).parse_program()


class Parser:
    def __init__(self, tokens: List[Token], script: str = "<anonymous>") -> None:
        self._tokens = tokens
        self._pos = 0
        self._script = script

    # -- token helpers ------------------------------------------------------------

    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.type is not TokenType.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> JSSyntaxError:
        return JSSyntaxError(message, self._tok.line, self._script, col=self._tok.col)

    def _expect_punct(self, value: str) -> Token:
        if not self._tok.is_punct(value):
            raise self._error(f"expected {value!r}, found {self._tok.value!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        if self._tok.type is not TokenType.IDENT:
            raise self._error(f"expected identifier, found {self._tok.value!r}")
        return self._advance().value  # type: ignore[return-value]

    def _eat_semicolon(self) -> None:
        if self._tok.is_punct(";"):
            self._advance()
            return
        # ASI subset: allow before } and at EOF.
        if self._tok.is_punct("}") or self._tok.type is TokenType.EOF:
            return
        raise self._error(f"expected ';', found {self._tok.value!r}")

    # -- program / statements ----------------------------------------------------

    def parse_program(self) -> N.Program:
        body: List[N.Node] = []
        while self._tok.type is not TokenType.EOF:
            body.append(self.parse_statement())
        return N.Program(line=1, col=1, body=body)

    def parse_statement(self) -> N.Node:
        tok = self._tok
        if tok.is_punct("{"):
            return self.parse_block()
        if tok.is_punct(";"):
            self._advance()
            return N.EmptyStatement(line=tok.line, col=tok.col)
        if tok.is_keyword("var", "let", "const"):
            decl = self.parse_variable_declaration()
            self._eat_semicolon()
            return decl
        if tok.is_keyword("function"):
            return self.parse_function_declaration()
        if tok.is_keyword("return"):
            self._advance()
            arg: Optional[N.Node] = None
            if not (self._tok.is_punct(";", "}") or self._tok.type is TokenType.EOF):
                arg = self.parse_expression()
            self._eat_semicolon()
            return N.ReturnStatement(line=tok.line, col=tok.col, argument=arg)
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("while"):
            return self.parse_while()
        if tok.is_keyword("do"):
            return self.parse_do_while()
        if tok.is_keyword("break"):
            self._advance()
            self._eat_semicolon()
            return N.BreakStatement(line=tok.line, col=tok.col)
        if tok.is_keyword("continue"):
            self._advance()
            self._eat_semicolon()
            return N.ContinueStatement(line=tok.line, col=tok.col)
        if tok.is_keyword("throw"):
            self._advance()
            arg = self.parse_expression()
            self._eat_semicolon()
            return N.ThrowStatement(line=tok.line, col=tok.col, argument=arg)
        if tok.is_keyword("try"):
            return self.parse_try()
        if tok.is_keyword("switch"):
            return self.parse_switch()
        expr = self.parse_expression()
        self._eat_semicolon()
        return N.ExpressionStatement(line=tok.line, col=tok.col, expression=expr)

    def parse_block(self) -> N.Block:
        start = self._expect_punct("{")
        body: List[N.Node] = []
        while not self._tok.is_punct("}"):
            if self._tok.type is TokenType.EOF:
                raise self._error("unterminated block")
            body.append(self.parse_statement())
        self._expect_punct("}")
        return N.Block(line=start.line, col=start.col, body=body)

    def parse_variable_declaration(self) -> N.VariableDeclaration:
        kind_tok = self._advance()
        declarations: List[N.VariableDeclarator] = []
        while True:
            line = self._tok.line
            col = self._tok.col
            name = self._expect_ident()
            init: Optional[N.Node] = None
            if self._tok.is_punct("="):
                self._advance()
                init = self.parse_assignment()
            declarations.append(N.VariableDeclarator(line=line, col=col, name=name, init=init))
            if self._tok.is_punct(","):
                self._advance()
                continue
            break
        return N.VariableDeclaration(line=kind_tok.line, col=kind_tok.col, kind=kind_tok.value, declarations=declarations)

    def parse_function_declaration(self) -> N.FunctionDeclaration:
        start = self._advance()  # 'function'
        name = self._expect_ident()
        params = self._parse_params()
        body = self.parse_block()
        return N.FunctionDeclaration(line=start.line, col=start.col, name=name, params=params, body=body)

    def _parse_params(self) -> List[str]:
        self._expect_punct("(")
        params: List[str] = []
        while not self._tok.is_punct(")"):
            params.append(self._expect_ident())
            if self._tok.is_punct(","):
                self._advance()
        self._expect_punct(")")
        return params

    def parse_if(self) -> N.IfStatement:
        start = self._advance()
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        consequent = self.parse_statement()
        alternate: Optional[N.Node] = None
        if self._tok.is_keyword("else"):
            self._advance()
            alternate = self.parse_statement()
        return N.IfStatement(line=start.line, col=start.col, test=test, consequent=consequent, alternate=alternate)

    def parse_for(self) -> N.Node:
        start = self._advance()
        self._expect_punct("(")

        # for (var x of expr) / for (x of expr)
        if (
            self._tok.is_keyword("var", "let", "const")
            and self._peek().type is TokenType.IDENT
            and self._peek(2).is_keyword("of")
        ):
            kind = self._advance().value
            name = self._expect_ident()
            self._advance()  # 'of'
            iterable = self.parse_expression()
            self._expect_punct(")")
            body = self.parse_statement()
            return N.ForOfStatement(line=start.line, col=start.col, kind=kind, name=name, iterable=iterable, body=body)

        init: Optional[N.Node] = None
        if not self._tok.is_punct(";"):
            if self._tok.is_keyword("var", "let", "const"):
                init = self.parse_variable_declaration()
            else:
                init = N.ExpressionStatement(line=self._tok.line, col=self._tok.col, expression=self.parse_expression())
        self._expect_punct(";")
        test: Optional[N.Node] = None
        if not self._tok.is_punct(";"):
            test = self.parse_expression()
        self._expect_punct(";")
        update: Optional[N.Node] = None
        if not self._tok.is_punct(")"):
            update = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        return N.ForStatement(line=start.line, col=start.col, init=init, test=test, update=update, body=body)

    def parse_while(self) -> N.WhileStatement:
        start = self._advance()
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        return N.WhileStatement(line=start.line, col=start.col, test=test, body=body)

    def parse_do_while(self) -> N.DoWhileStatement:
        start = self._advance()
        body = self.parse_statement()
        if not self._tok.is_keyword("while"):
            raise self._error("expected 'while' after do-block")
        self._advance()
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        self._eat_semicolon()
        return N.DoWhileStatement(line=start.line, col=start.col, body=body, test=test)

    def parse_try(self) -> N.TryStatement:
        start = self._advance()
        block = self.parse_block()
        param: Optional[str] = None
        handler: Optional[N.Block] = None
        finalizer: Optional[N.Block] = None
        if self._tok.is_keyword("catch"):
            self._advance()
            if self._tok.is_punct("("):
                self._advance()
                param = self._expect_ident()
                self._expect_punct(")")
            handler = self.parse_block()
        if self._tok.is_keyword("finally"):
            self._advance()
            finalizer = self.parse_block()
        if handler is None and finalizer is None:
            raise self._error("try without catch or finally")
        return N.TryStatement(line=start.line, col=start.col, block=block, param=param, handler=handler, finalizer=finalizer)

    def parse_switch(self) -> N.SwitchStatement:
        start = self._advance()  # 'switch'
        self._expect_punct("(")
        discriminant = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[N.SwitchCase] = []
        seen_default = False
        while not self._tok.is_punct("}"):
            tok = self._tok
            if tok.is_keyword("case"):
                self._advance()
                test = self.parse_expression()
            elif tok.is_keyword("default"):
                if seen_default:
                    raise self._error("multiple default clauses in switch")
                seen_default = True
                self._advance()
                test = None
            else:
                raise self._error(f"expected 'case' or 'default', found {tok.value!r}")
            self._expect_punct(":")
            body: List[N.Node] = []
            while not (
                self._tok.is_punct("}")
                or self._tok.is_keyword("case")
                or self._tok.is_keyword("default")
            ):
                if self._tok.type is TokenType.EOF:
                    raise self._error("unterminated switch")
                body.append(self.parse_statement())
            cases.append(N.SwitchCase(line=tok.line, col=tok.col, test=test, body=body))
        self._expect_punct("}")
        return N.SwitchStatement(line=start.line, col=start.col, discriminant=discriminant, cases=cases)

    # -- expressions -------------------------------------------------------------

    def parse_expression(self) -> N.Node:
        expr = self.parse_assignment()
        if self._tok.is_punct(","):
            exprs = [expr]
            while self._tok.is_punct(","):
                self._advance()
                exprs.append(self.parse_assignment())
            return N.SequenceExpression(line=expr.line, col=expr.col, expressions=exprs)
        return expr

    def parse_assignment(self) -> N.Node:
        # Arrow functions: ident => ..., (a, b) => ...
        arrow = self._try_parse_arrow()
        if arrow is not None:
            return arrow

        left = self.parse_conditional()
        if self._tok.type is TokenType.PUNCT and self._tok.value in _ASSIGN_OPS:
            op_tok = self._advance()
            if not isinstance(left, (N.Identifier, N.MemberExpression)):
                raise self._error("invalid assignment target")
            value = self.parse_assignment()
            return N.AssignmentExpression(line=op_tok.line, col=op_tok.col, op=op_tok.value, target=left, value=value)
        return left

    def _try_parse_arrow(self) -> Optional[N.FunctionExpression]:
        tok = self._tok
        # ident =>
        if tok.type is TokenType.IDENT and self._peek().is_punct("=>"):
            self._advance()
            self._advance()
            return self._finish_arrow([tok.value], tok.line, tok.col)
        # ( params ) =>   — requires lookahead to the matching paren.
        if tok.is_punct("("):
            depth = 0
            idx = self._pos
            while idx < len(self._tokens):
                t = self._tokens[idx]
                if t.is_punct("("):
                    depth += 1
                elif t.is_punct(")"):
                    depth -= 1
                    if depth == 0:
                        break
                elif t.type is TokenType.EOF:
                    return None
                idx += 1
            closing = idx
            if closing + 1 < len(self._tokens) and self._tokens[closing + 1].is_punct("=>"):
                # Simple parameter list only (identifiers and commas).
                params: List[str] = []
                for t in self._tokens[self._pos + 1 : closing]:
                    if t.type is TokenType.IDENT:
                        params.append(t.value)
                    elif t.is_punct(","):
                        continue
                    else:
                        return None
                self._pos = closing + 2  # skip past ')' and '=>'
                return self._finish_arrow(params, tok.line, tok.col)
        return None

    def _finish_arrow(self, params: List[str], line: int, col: int = 0) -> N.FunctionExpression:
        if self._tok.is_punct("{"):
            body = self.parse_block()
        else:
            expr = self.parse_assignment()
            body = N.Block(line=line, col=col, body=[N.ReturnStatement(line=line, col=col, argument=expr)])
        return N.FunctionExpression(line=line, col=col, params=params, body=body, is_arrow=True)

    def parse_conditional(self) -> N.Node:
        test = self.parse_logical_or()
        if self._tok.is_punct("?"):
            q = self._advance()
            consequent = self.parse_assignment()
            self._expect_punct(":")
            alternate = self.parse_assignment()
            return N.ConditionalExpression(
                line=q.line, col=q.col, test=test, consequent=consequent, alternate=alternate
            )
        return test

    def parse_logical_or(self) -> N.Node:
        left = self.parse_logical_and()
        while self._tok.is_punct("||"):
            tok = self._advance()
            right = self.parse_logical_and()
            left = N.LogicalOp(line=tok.line, col=tok.col, op="||", left=left, right=right)
        return left

    def parse_logical_and(self) -> N.Node:
        left = self.parse_binary(0)
        while self._tok.is_punct("&&"):
            tok = self._advance()
            right = self.parse_binary(0)
            left = N.LogicalOp(line=tok.line, col=tok.col, op="&&", left=left, right=right)
        return left

    def parse_binary(self, min_prec: int) -> N.Node:
        left = self.parse_unary()
        while True:
            tok = self._tok
            op = tok.value if tok.type in (TokenType.PUNCT, TokenType.KEYWORD) else None
            prec = _BINARY_PRECEDENCE.get(op) if isinstance(op, str) else None
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self.parse_binary(prec + 1)
            left = N.BinaryOp(line=tok.line, col=tok.col, op=op, left=left, right=right)

    def parse_unary(self) -> N.Node:
        tok = self._tok
        if tok.is_punct("!", "-", "+", "~"):
            self._advance()
            return N.UnaryOp(line=tok.line, col=tok.col, op=tok.value, operand=self.parse_unary())
        if tok.is_keyword("typeof", "delete"):
            self._advance()
            return N.UnaryOp(line=tok.line, col=tok.col, op=tok.value, operand=self.parse_unary())
        if tok.is_punct("++", "--"):
            self._advance()
            target = self.parse_unary()
            return N.UpdateExpression(line=tok.line, col=tok.col, op=tok.value, target=target, prefix=True)
        return self.parse_postfix()

    def parse_postfix(self) -> N.Node:
        expr = self.parse_call_member()
        tok = self._tok
        if tok.is_punct("++", "--"):
            self._advance()
            return N.UpdateExpression(line=tok.line, col=tok.col, op=tok.value, target=expr, prefix=False)
        return expr

    def parse_call_member(self) -> N.Node:
        if self._tok.is_keyword("new"):
            new_tok = self._advance()
            callee = self.parse_call_member_base()
            args: List[N.Node] = []
            if self._tok.is_punct("("):
                args = self._parse_args()
            expr: N.Node = N.NewExpression(line=new_tok.line, col=new_tok.col, callee=callee, args=args)
        else:
            expr = self.parse_primary()
        while True:
            tok = self._tok
            if tok.is_punct("."):
                self._advance()
                if self._tok.type not in (TokenType.IDENT, TokenType.KEYWORD):
                    raise self._error("expected property name after '.'")
                prop = self._advance().value
                expr = N.MemberExpression(line=tok.line, col=tok.col, obj=expr, prop=prop, computed=False)
            elif tok.is_punct("["):
                self._advance()
                prop_expr = self.parse_expression()
                self._expect_punct("]")
                expr = N.MemberExpression(line=tok.line, col=tok.col, obj=expr, prop=prop_expr, computed=True)
            elif tok.is_punct("("):
                args = self._parse_args()
                expr = N.CallExpression(line=tok.line, col=tok.col, callee=expr, args=args)
            else:
                return expr

    def parse_call_member_base(self) -> N.Node:
        """Callee of ``new``: primary with member accesses but no calls."""
        expr = self.parse_primary()
        while self._tok.is_punct("."):
            tok = self._advance()
            prop = self._advance().value
            expr = N.MemberExpression(line=tok.line, col=tok.col, obj=expr, prop=prop, computed=False)
        return expr

    def _parse_args(self) -> List[N.Node]:
        self._expect_punct("(")
        args: List[N.Node] = []
        while not self._tok.is_punct(")"):
            args.append(self.parse_assignment())
            if self._tok.is_punct(","):
                self._advance()
        self._expect_punct(")")
        return args

    def parse_primary(self) -> N.Node:
        tok = self._tok
        if tok.type is TokenType.NUMBER:
            self._advance()
            return N.NumberLiteral(line=tok.line, col=tok.col, value=tok.value)
        if tok.type is TokenType.STRING:
            self._advance()
            return N.StringLiteral(line=tok.line, col=tok.col, value=tok.value)
        if tok.is_keyword("true", "false"):
            self._advance()
            return N.BooleanLiteral(line=tok.line, col=tok.col, value=tok.value == "true")
        if tok.is_keyword("null"):
            self._advance()
            return N.NullLiteral(line=tok.line, col=tok.col)
        if tok.is_keyword("undefined"):
            self._advance()
            return N.UndefinedLiteral(line=tok.line, col=tok.col)
        if tok.is_keyword("this"):
            self._advance()
            return N.ThisExpression(line=tok.line, col=tok.col)
        if tok.is_keyword("function"):
            self._advance()
            name: Optional[str] = None
            if self._tok.type is TokenType.IDENT:
                name = self._advance().value
            params = self._parse_params()
            body = self.parse_block()
            return N.FunctionExpression(line=tok.line, col=tok.col, params=params, body=body, name=name)
        if tok.type is TokenType.IDENT:
            self._advance()
            return N.Identifier(line=tok.line, col=tok.col, name=tok.value)
        if tok.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if tok.is_punct("["):
            self._advance()
            elements: List[N.Node] = []
            while not self._tok.is_punct("]"):
                elements.append(self.parse_assignment())
                if self._tok.is_punct(","):
                    self._advance()
            self._expect_punct("]")
            return N.ArrayLiteral(line=tok.line, col=tok.col, elements=elements)
        if tok.is_punct("{"):
            return self.parse_object_literal()
        raise self._error(f"unexpected token {tok.value!r}")

    def parse_object_literal(self) -> N.ObjectLiteral:
        start = self._expect_punct("{")
        props: List = []
        while not self._tok.is_punct("}"):
            key_tok = self._tok
            if key_tok.type in (TokenType.IDENT, TokenType.KEYWORD):
                key = str(key_tok.value)
                self._advance()
            elif key_tok.type is TokenType.STRING:
                key = key_tok.value
                self._advance()
            elif key_tok.type is TokenType.NUMBER:
                key = _number_key(key_tok.value)
                self._advance()
            else:
                raise self._error(f"bad object key {key_tok.value!r}")
            self._expect_punct(":")
            value = self.parse_assignment()
            props.append((key, value))
            if self._tok.is_punct(","):
                self._advance()
        self._expect_punct("}")
        return N.ObjectLiteral(line=start.line, col=start.col, properties=props)


def _number_key(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)
