"""Tokenizer for the ECMAScript subset.

Handles line/block comments, decimal and hex numbers, single- and
double-quoted strings with the common escapes, identifiers/keywords, and the
punctuator set in :mod:`repro.js.tokens`.  Regex literals and template
strings are not part of the subset.
"""

from __future__ import annotations

from typing import List

from repro.js.errors import JSSyntaxError
from repro.js.tokens import KEYWORDS, PUNCTUATORS, Token, TokenType

__all__ = ["tokenize"]

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "'": "'",
    '"': '"',
    "\\": "\\",
    "/": "/",
    "\n": "",  # line continuation
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch in "_$"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch in "_$"


def _lex_template(source: str, i: int, line: int, line_start: int, script: str, tokens: List[Token]):
    """Lex a template literal starting at the backtick at ``source[i]``.

    Desugars to a parenthesized string concatenation: ``("head" + (expr) +
    "tail")`` — empty head/tail strings are kept so the result is always a
    string, matching template semantics for our subset.  Synthetic tokens
    carry the column of the opening backtick; tokens lexed from ``${...}``
    parts keep their inner-relative positions (they are desugared code).
    """
    assert source[i] == "`"
    n = len(source)
    start_line = line
    col = i - line_start + 1
    i += 1
    tokens.append(Token(TokenType.PUNCT, "(", line, col))
    parts: List[str] = []
    first_part = True

    def flush_literal(text: str) -> None:
        nonlocal first_part
        if not first_part:
            tokens.append(Token(TokenType.PUNCT, "+", line, col))
        tokens.append(Token(TokenType.STRING, text, line, col))
        first_part = False

    chars: List[str] = []
    while True:
        if i >= n:
            raise JSSyntaxError("unterminated template literal", start_line, script, col=col)
        c = source[i]
        if c == "`":
            i += 1
            break
        if c == "\\" and i + 1 < n:
            esc = source[i + 1]
            chars.append(_ESCAPES.get(esc, esc))
            if esc == "\n":
                line += 1
                line_start = i + 2
            i += 2
            continue
        if c == "$" and i + 1 < n and source[i + 1] == "{":
            flush_literal("".join(chars))
            chars = []
            # Find the matching close brace (nesting-aware, string-aware).
            j = i + 2
            depth = 1
            while j < n and depth:
                cj = source[j]
                if cj in "'\"`":
                    quote = cj
                    j += 1
                    while j < n and source[j] != quote:
                        j += 2 if source[j] == "\\" else 1
                elif cj == "{":
                    depth += 1
                elif cj == "}":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if depth:
                raise JSSyntaxError("unterminated ${...} in template", line, script, col=col)
            inner = source[i + 2 : j]
            tokens.append(Token(TokenType.PUNCT, "+", line, col))
            tokens.append(Token(TokenType.PUNCT, "(", line, col))
            inner_tokens = tokenize(inner, script)
            tokens.extend(inner_tokens[:-1])  # drop the inner EOF
            tokens.append(Token(TokenType.PUNCT, ")", line, col))
            nl = inner.rfind("\n")
            if nl >= 0:
                line += inner.count("\n")
                line_start = i + 2 + nl + 1
            i = j + 1
            continue
        if c == "\n":
            line += 1
            line_start = i + 1
        chars.append(c)
        i += 1
    flush_literal("".join(chars))
    tokens.append(Token(TokenType.PUNCT, ")", line, col))
    return i, line, line_start


def tokenize(source: str, script: str = "<anonymous>") -> List[Token]:
    """Tokenize ``source``, returning a token list terminated by EOF."""
    tokens: List[Token] = []
    i = 0
    line = 1
    #: Index of the first character of the current line (col = i - line_start + 1).
    line_start = 0
    n = len(source)

    while i < n:
        ch = source[i]

        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue

        # Comments.
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                raise JSSyntaxError("unterminated block comment", line, script, col=i - line_start + 1)
            nl = source.rfind("\n", i, end)
            if nl >= 0:
                line += source.count("\n", i, end)
                line_start = nl + 1
            i = end + 2
            continue

        # Template literals: lexed as a STRING when interpolation-free, or
        # as a synthetic concatenation when it contains ${...} parts (the
        # parser sees `head` + ( expr ) + `tail` via TEMPLATE tokens).
        if ch == "`":
            i, line, line_start = _lex_template(source, i, line, line_start, script, tokens)
            continue

        # Strings.
        if ch in "'\"":
            quote = ch
            col = i - line_start + 1
            i += 1
            parts: List[str] = []
            while True:
                if i >= n:
                    raise JSSyntaxError("unterminated string", line, script, col=col)
                c = source[i]
                if c == quote:
                    i += 1
                    break
                if c == "\n":
                    raise JSSyntaxError("newline in string", line, script, col=i - line_start + 1)
                if c == "\\":
                    i += 1
                    if i >= n:
                        raise JSSyntaxError("bad escape at end of input", line, script, col=col)
                    esc = source[i]
                    if esc == "x":
                        hex_digits = source[i + 1 : i + 3]
                        if len(hex_digits) < 2:
                            raise JSSyntaxError("bad \\x escape", line, script, col=col)
                        parts.append(chr(int(hex_digits, 16)))
                        i += 3
                        continue
                    if esc == "u":
                        hex_digits = source[i + 1 : i + 5]
                        if len(hex_digits) < 4:
                            raise JSSyntaxError("bad \\u escape", line, script, col=col)
                        parts.append(chr(int(hex_digits, 16)))
                        i += 5
                        continue
                    parts.append(_ESCAPES.get(esc, esc))
                    if esc == "\n":
                        line += 1
                        line_start = i + 1
                    i += 1
                    continue
                parts.append(c)
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), line, col))
            continue

        # Numbers.
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            col = start - line_start + 1
            if ch == "0" and i + 1 < n and source[i + 1] in "xX":
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                tokens.append(Token(TokenType.NUMBER, float(int(source[start:i], 16)), line, col))
                continue
            while i < n and source[i].isdigit():
                i += 1
            if i < n and source[i] == ".":
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    i = j
                    while i < n and source[i].isdigit():
                        i += 1
            tokens.append(Token(TokenType.NUMBER, float(source[start:i]), line, col))
            continue

        # Identifiers / keywords.
        if _is_ident_start(ch):
            start = i
            col = start - line_start + 1
            while i < n and _is_ident_part(source[i]):
                i += 1
            word = source[start:i]
            if word in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word, line, col))
            else:
                tokens.append(Token(TokenType.IDENT, word, line, col))
            continue

        # Punctuators, longest match first.
        for punct in PUNCTUATORS:
            if source.startswith(punct, i):
                tokens.append(Token(TokenType.PUNCT, punct, line, i - line_start + 1))
                i += len(punct)
                break
        else:
            raise JSSyntaxError(f"unexpected character {ch!r}", line, script, col=i - line_start + 1)

    tokens.append(Token(TokenType.EOF, "", line, n - line_start + 1))
    return tokens
