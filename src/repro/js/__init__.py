"""A small ECMAScript-subset engine.

Fingerprinting scripts in the synthetic web are *real programs*: they are
lexed, parsed and interpreted by this package, which lets the crawler
attribute every Canvas API call to the script URL that made it, lets
attribution inspect script source (copyright banners, URL patterns), and
makes first-party bundling a literal concatenation of vendor code into a
site's own JavaScript.

Supported syntax: ``var``/``let``/``const``, functions (declarations,
expressions, arrows), ``if``/``else``, ``for``, ``for``-``of``, ``while``,
``do``-``while``, ``switch``, ``try``/``catch``/``finally``, ``throw``,
``return`` / ``break`` / ``continue``, the usual operators (including
``typeof``, ``? :``, ``++``/``--``), object/array literals, member and
index access, ``new``, and strings including template literals.
Built-ins: ``Math``, ``JSON``, ``console``, and the common
``String``/``Array``/``Number`` methods.

Two execution engines share the front end: the tree-walking interpreter
and a closure compiler (:mod:`repro.js.compiler`) with statically resolved
scope slots, inline property caches and a cross-page compiled-script
cache.  Compilation is exactly transparent — identical results, errors and
step counts — and is selected by ``REPRO_JS_COMPILE`` (default on); see
``docs/performance.md``.
"""

from repro.js.compiler import compile_enabled, prewarm, script_cache
from repro.js.errors import JSError, JSRuntimeError, JSSyntaxError
from repro.js.interpreter import Interpreter
from repro.js.lexer import tokenize
from repro.js.parser import parse
from repro.js.values import (
    JSArray,
    JSFunction,
    JSNull,
    JSObject,
    JSUndefined,
    NativeFunction,
    UNDEFINED,
    NULL,
    js_repr,
    js_truthy,
)

__all__ = [
    "Interpreter",
    "compile_enabled",
    "prewarm",
    "script_cache",
    "tokenize",
    "parse",
    "JSError",
    "JSSyntaxError",
    "JSRuntimeError",
    "JSObject",
    "JSArray",
    "JSFunction",
    "NativeFunction",
    "JSUndefined",
    "JSNull",
    "UNDEFINED",
    "NULL",
    "js_repr",
    "js_truthy",
]
