"""Structured tracing: nestable spans and point events with bounded buffers.

A :class:`Tracer` records *span* records (name, monotonic duration, status,
attributes, parent linkage) and *event* records (a timestamped point with
attributes).  Records are plain dicts — the exact lines the run's
``trace.jsonl`` stores and the Chrome ``trace_event`` exporter consumes —
and accumulate in an in-memory ring capped by
:attr:`~repro.obs.config.ObsConfig.max_events` (drops are counted, never
silent).

Design constraints, in order:

1. **Disabled ≈ free.**  With ``trace`` off, :meth:`Tracer.span` returns a
   shared no-op span and :meth:`Tracer.event` returns before touching its
   arguments' dict — the instrumented hot paths (page loads, stage
   boundaries, checkpoint writes) pay one attribute load and one branch.
2. **Deterministic sampling.**  ``sample < 1`` keeps a stable
   pseudo-random fraction of page-granularity records, keyed by the
   record's ``sample key`` (e.g. the domain) — two runs of the same crawl
   keep the same records, and a sampled log still names the same slow
   pages.  Structural spans (runs, stages, shards) are never sampled away.
3. **Cross-process mergeable.**  Records carry ``pid`` and a logical
   ``tid`` label (e.g. ``shard-03``); :meth:`Tracer.drain` hands a worker's
   records to the parent, :meth:`Tracer.ingest` folds them in exactly once.
"""

from __future__ import annotations

import os
import time
import zlib
from typing import Any, Dict, List, Optional

from repro.obs.config import ObsConfig

__all__ = ["Span", "Tracer", "NOOP_SPAN"]

#: Span names that sampling may drop (page-granularity volume); everything
#: else — run/stage/shard structure — is always kept.
SAMPLED_NAMES = frozenset({"crawl.page", "crawl.retry", "net.fault"})


def _keep(sample: float, key: str) -> bool:
    """Deterministic keep-decision: stable per key, uniform across keys."""
    if sample >= 1.0:
        return True
    if sample <= 0.0:
        return False
    return (zlib.crc32(key.encode("utf-8", "replace")) % 10_000) < sample * 10_000


class Span:
    """One live span; becomes a plain record dict when it closes."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "_ts", "_t0", "status")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: Optional[str] = None
        self._ts = time.time()
        self._t0 = time.perf_counter()
        self.status = "ok"

    @property
    def recording(self) -> bool:
        return True

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def set_status(self, status: str, detail: Optional[str] = None) -> None:
        self.status = status
        if detail is not None:
            self.attrs["status_detail"] = detail

    def __enter__(self) -> "Span":
        self.parent_id = self.tracer._push(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._pop()
        if exc_type is not None:
            self.set_status("error", f"{exc_type.__name__}: {exc}")
        self.tracer._finish(self, time.perf_counter() - self._t0)


class _NoopSpan:
    """Shared do-nothing span returned whenever tracing is off."""

    __slots__ = ()

    @property
    def recording(self) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_status(self, status: str, detail: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Per-process span/event recorder (the obs layer owns one global)."""

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config or ObsConfig()
        self.enabled = self.config.trace
        #: Logical thread/worker label stamped on records (e.g. ``shard-03``).
        self.tid = "main"
        self.dropped = 0
        self._records: List[Dict[str, Any]] = []
        self._stack: List[str] = []
        self._seq = 0

    # -- configuration ---------------------------------------------------------

    def configure(self, config: ObsConfig) -> None:
        self.config = config
        self.enabled = config.trace

    # -- span/event API --------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a nestable span; a context manager either way.

        When tracing is off (the default) the shared :data:`NOOP_SPAN` comes
        back before ``attrs`` is even built into a record — callers on hot
        paths should pass only cheap attribute values.
        """
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, sample_key: str = "", **attrs: Any) -> None:
        """Record a point-in-time event (no duration)."""
        if not self.enabled:
            return
        if name in SAMPLED_NAMES and not _keep(self.config.sample, sample_key or name):
            return
        self._append(
            {
                "t": "event",
                "name": name,
                "ts": time.time(),
                "pid": os.getpid(),
                "tid": self.tid,
                "parent": self._stack[-1] if self._stack else None,
                "attrs": attrs,
            }
        )

    # -- record plumbing -------------------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return f"{os.getpid():x}.{self._seq:x}"

    def _push(self, span_id: str) -> Optional[str]:
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        return parent

    def _pop(self) -> None:
        if self._stack:
            self._stack.pop()

    def _finish(self, span: Span, duration: float) -> None:
        name = span.name
        if name in SAMPLED_NAMES and not _keep(
            self.config.sample, str(span.attrs.get("domain", span.span_id))
        ):
            return
        self._append(
            {
                "t": "span",
                "name": name,
                "ts": span._ts,
                "dur": duration,
                "pid": os.getpid(),
                "tid": self.tid,
                "id": span.span_id,
                "parent": span.parent_id,
                "status": span.status,
                "attrs": span.attrs,
            }
        )

    def _append(self, record: Dict[str, Any]) -> None:
        if len(self._records) >= self.config.max_events:
            self.dropped += 1
            return
        self._records.append(record)

    # -- buffer management (cross-process propagation) -------------------------

    def records(self) -> List[Dict[str, Any]]:
        """The buffered records (read-only view for tests/summaries)."""
        return list(self._records)

    def drain(self) -> List[Dict[str, Any]]:
        """Hand off and clear the buffer (worker -> parent shipping)."""
        records, self._records = self._records, []
        return records

    def ingest(self, records: List[Dict[str, Any]]) -> None:
        """Fold records drained from another process into this buffer."""
        for record in records:
            self._append(record)

    def reset(self) -> None:
        self._records.clear()
        self._stack.clear()
        self.dropped = 0
        self.tid = "main"
