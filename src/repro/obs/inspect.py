"""Run-log loading and the analyses behind ``python -m repro.obs``.

A *run* is a directory holding ``manifest.json`` + ``trace.jsonl`` (written
by :class:`~repro.obs.recorder.RunRecorder`).  :func:`load_run` accepts the
directory or the trace file itself and returns a :class:`RunLog`; the
``summary`` / ``slow`` renderers turn it into the operator views the ISSUE
describes: totals that agree with :class:`~repro.crawler.crawl.CrawlHealth`
exactly (they come from the never-sampled metrics delta), retry hot spots,
top slow pages, stage timings and cache hit rates.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.manifest import MANIFEST_NAME
from repro.obs.metrics import Histogram
from repro.obs.recorder import TRACE_NAME

__all__ = [
    "RunLog",
    "load_run",
    "crawl_totals",
    "summary_text",
    "slow_text",
    "histogram_rows",
    "quarantine_rows",
    "profile_text",
]

#: ``crawler.failures[label|reason]`` / ``crawler.attempts[label|n]`` parser.
_BRACKET = re.compile(r"^(?P<base>[^\[]+)\[(?P<inner>[^\]]*)\]$")


@dataclass
class RunLog:
    """One parsed run: manifest, span/event records, final summary line."""

    path: Path
    manifest: Dict[str, Any] = field(default_factory=dict)
    header: Dict[str, Any] = field(default_factory=dict)
    records: List[Dict[str, Any]] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self.summary.get("metrics", {}).get("counters", {}))

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self.summary.get("metrics", {}).get("gauges", {}))

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("t") == "span" and (name is None or r.get("name") == name)
        ]

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("t") == "event" and (name is None or r.get("name") == name)
        ]

    @property
    def is_empty(self) -> bool:
        """True when the trace file held nothing usable (empty file, or a
        run killed before the header line landed) — callers should explain
        rather than render an all-zero summary."""
        return not self.header and not self.summary and not self.records


def load_run(path: Union[str, Path]) -> RunLog:
    """Load a run directory (or a bare ``trace.jsonl``) into a :class:`RunLog`."""
    path = Path(path)
    trace_path = path / TRACE_NAME if path.is_dir() else path
    run_dir = trace_path.parent
    if not trace_path.exists():
        raise FileNotFoundError(f"{trace_path}: no trace log (expected {TRACE_NAME})")

    log = RunLog(path=run_dir)
    manifest_path = run_dir / MANIFEST_NAME
    if manifest_path.exists():
        try:
            log.manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            log.manifest = {}
    with open(trace_path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed run: keep what parses
            kind = record.get("t")
            if kind == "run":
                log.header = record
            elif kind == "summary":
                log.summary = record
            else:
                log.records.append(record)
    return log


# -- analyses -----------------------------------------------------------------


def _bracketed(counters: Dict[str, float], base: str) -> Dict[str, float]:
    """All ``base[inner]`` counters, keyed by the bracket contents."""
    out: Dict[str, float] = {}
    for name, value in counters.items():
        match = _BRACKET.match(name)
        if match and match.group("base") == base:
            out[match.group("inner")] = value
    return out


def crawl_totals(log: RunLog, label: str) -> Dict[str, Any]:
    """Health-equivalent totals for one crawl label, from the metrics delta.

    The returned dict mirrors :class:`~repro.crawler.crawl.CrawlHealth`
    field for field (total/successes/recovered/attempts histogram/failure
    rows/inner-page failures), computed purely from the run log — the
    agreement the tests assert observation-for-observation.
    """
    from repro.crawler.resilience import is_transient

    counters = log.counters
    attempts_histogram = {
        int(inner.split("|", 1)[1]): int(count)
        for inner, count in _bracketed(counters, "crawler.attempts").items()
        if inner.startswith(f"{label}|")
    }
    failures: Dict[str, int] = {
        inner.split("|", 1)[1]: int(count)
        for inner, count in _bracketed(counters, "crawler.failures").items()
        if inner.startswith(f"{label}|")
    }
    failure_rows: Tuple[Tuple[str, int, bool], ...] = tuple(
        (reason, count, is_transient(reason))
        for reason, count in sorted(failures.items(), key=lambda kv: (-kv[1], kv[0]))
    )
    return {
        "label": label,
        "total": int(counters.get(f"crawler.pages[{label}]", 0)),
        "successes": int(counters.get(f"crawler.pages_ok[{label}]", 0)),
        "recovered": int(counters.get(f"crawler.recovered[{label}]", 0)),
        "attempts_histogram": attempts_histogram,
        "failure_rows": failure_rows,
        "inner_page_failures": int(counters.get(f"crawler.inner_page_failures[{label}]", 0)),
        "total_attempts": int(counters.get(f"crawler.attempts_total[{label}]", 0)),
        "retries": int(counters.get(f"crawler.retries[{label}]", 0)),
    }


def crawl_labels(log: RunLog) -> List[str]:
    """Every crawl label the run's metrics saw, stable order."""
    return sorted(_bracketed(log.counters, "crawler.pages"))


def _stage_rows(log: RunLog) -> List[Tuple[str, float, bool]]:
    """(stage, seconds, cached) rows from the stage gauges/counters."""
    seconds = _bracketed(log.gauges, "stage.seconds")
    cached = _bracketed(log.counters, "stage.cached")
    return [(name, seconds[name], bool(cached.get(name))) for name in seconds]


def _cache_rows(log: RunLog) -> List[Tuple[str, float, float, float]]:
    """(layer, hits, misses, hit_rate) for every render-cache layer seen."""
    counters = log.counters
    layers = sorted(
        {
            name.split(".")[1]
            for name in counters
            if name.startswith("render_cache.") and name.count(".") >= 2
        }
    )
    rows = []
    for layer in layers:
        hits = counters.get(f"render_cache.{layer}.hits", 0.0)
        misses = counters.get(f"render_cache.{layer}.misses", 0.0)
        lookups = hits + misses
        if lookups:
            rows.append((layer, hits, misses, hits / lookups))
    return rows


def histogram_rows(log: RunLog) -> List[Tuple[str, int, float, float, float, float]]:
    """(name, count, mean, p50, p95, p99) for every histogram in the delta.

    Quantiles are derived from the fixed bucket counts
    (:meth:`~repro.obs.metrics.Histogram.quantile`), so they are estimates
    — good to a bucket width — but computed from the exact, never-sampled
    metrics delta.
    """
    rows = []
    for name, data in sorted(log.summary.get("metrics", {}).get("histograms", {}).items()):
        hist = Histogram.from_json(data)
        if not hist.count:
            continue
        rows.append(
            (name, hist.count, hist.mean, hist.quantile(0.5), hist.quantile(0.95),
             hist.quantile(0.99))
        )
    return rows


def quarantine_rows(log: RunLog) -> Tuple[int, List[Tuple[str, int]]]:
    """(quarantined site count, top (reason, count) rows) for the run.

    The count comes from the supervisor's own counter and equals
    ``CrawlDataset.health().quarantined`` (asserted by test); the reasons
    are the ``quarantined:<signal>`` failure classes the supervisor stamps
    on salvaged observations.
    """
    counters = log.counters
    quarantined = int(counters.get("supervisor.quarantined", 0))
    reasons: Dict[str, int] = {}
    for inner, count in _bracketed(counters, "crawler.failures").items():
        reason = inner.split("|", 1)[1] if "|" in inner else inner
        if reason.startswith("quarantined"):
            reasons[reason] = reasons.get(reason, 0) + int(count)
    rows = sorted(reasons.items(), key=lambda kv: (-kv[1], kv[0]))
    return quarantined, rows


def profile_text(rollup: Optional[Dict[str, Any]], top: int = 5) -> List[str]:
    """Render a profiler rollup (from the summary line or the ledger)."""
    if not rollup or not rollup.get("samples"):
        return []
    samples = int(rollup["samples"])
    attributed = samples - int(rollup.get("unattributed_samples", 0))
    lines = [
        f"profile: {samples} samples / {float(rollup.get('seconds', 0.0)):.2f}s sampled, "
        f"{attributed / samples:.0%} attributed"
        + (
            f", {int(rollup.get('dropped', 0))} dropped at the table cap"
            if rollup.get("dropped")
            else ""
        )
    ]
    for kind, title in (
        ("by_subsystem", "self-time by subsystem"),
        ("by_stage", "self-time by stage"),
        ("by_site", "self-time by site"),
        ("by_script", "self-time by vendor script"),
    ):
        rows = rollup.get(kind) or []
        if not rows:
            continue
        lines.append(f"  {title}:")
        for row in rows[:top]:
            lines.append(
                f"    {str(row.get('name', '?'))[:48]:48s} "
                f"{float(row.get('seconds', 0.0)):8.2f}s "
                f"({int(row.get('samples', 0))} samples)"
            )
    return lines


def page_spans(log: RunLog) -> List[Dict[str, Any]]:
    return log.spans("crawl.page")


def slow_pages(log: RunLog, top: int = 10) -> List[Dict[str, Any]]:
    """The ``top`` slowest page spans (by recorded wall duration)."""
    pages = sorted(page_spans(log), key=lambda r: -float(r.get("dur", 0.0)))
    return pages[:top]


def retry_hot_spots(log: RunLog, top: int = 10) -> List[Tuple[str, int]]:
    """Domains by retry volume — from span attempts, falling back to events."""
    by_domain: Dict[str, int] = {}
    for record in page_spans(log):
        attempts = int(record.get("attrs", {}).get("attempts", 1))
        if attempts > 1:
            domain = str(record.get("attrs", {}).get("domain", "?"))
            by_domain[domain] = by_domain.get(domain, 0) + attempts - 1
    if not by_domain:
        for record in log.events("crawl.retry"):
            domain = str(record.get("attrs", {}).get("domain", "?"))
            by_domain[domain] = by_domain.get(domain, 0) + 1
    return sorted(by_domain.items(), key=lambda kv: (-kv[1], kv[0]))[:top]


# -- renderers ----------------------------------------------------------------


def summary_text(log: RunLog, top: int = 5) -> str:
    """The ``repro.obs summary`` view."""
    manifest = log.manifest
    counters = log.counters
    lines = [
        f"run '{log.header.get('label', manifest.get('label', '?'))}'"
        f"  created {manifest.get('created', '?')}"
        f"  git {manifest.get('git') or '?'}",
    ]
    if manifest.get("config_digest"):
        lines.append(f"config digest: {manifest['config_digest']}")
    if manifest.get("seed") is not None:
        lines.append(f"seed: {manifest['seed']}")
    if manifest.get("shard_plan"):
        plan = manifest["shard_plan"]
        lines.append(
            f"shard plan: {plan.get('shards')} shard(s) x jobs={plan.get('jobs')} "
            f"sizes={plan.get('sizes')}"
        )

    for label in crawl_labels(log):
        totals = crawl_totals(log, label)
        lines.append(
            f"crawl '{label}': {totals['successes']}/{totals['total']} sites ok, "
            f"{totals['recovered']} recovered by retry, "
            f"{totals['total_attempts']} page-load attempts "
            f"({totals['retries']} retries)"
        )
        if totals["inner_page_failures"]:
            lines.append(f"  inner-page load failures: {totals['inner_page_failures']}")
        for reason, count, transient in totals["failure_rows"]:
            kind = "transient" if transient else "permanent"
            lines.append(f"  failure {reason:28s} {count:6d}  ({kind})")

    quarantined, quarantine_reasons = quarantine_rows(log)
    if quarantined or quarantine_reasons:
        lines.append(f"quarantined sites: {quarantined}")
        for reason, count in quarantine_reasons[:top]:
            lines.append(f"  {reason:28s} {count:6d}")

    watchdog = sum(_bracketed(counters, "crawler.watchdog").values())
    if watchdog:
        lines.append(f"watchdog fires: {int(watchdog)}")
    checkpoint_writes = counters.get("crawler.checkpoint_writes", 0)
    if checkpoint_writes:
        lines.append(
            f"checkpoint: {int(checkpoint_writes)} writes, "
            f"{int(counters.get('crawler.checkpoint_finalized', 0))} finalized"
        )
    requests = counters.get("net.requests", 0)
    if requests:
        lines.append(
            f"network: {int(requests)} requests, "
            f"{int(counters.get('net.bytes_fetched', 0)):,} bytes, "
            f"{int(counters.get('net.requests_failed', 0))} failed"
        )
    faults = {
        name.split(".", 2)[2]: value
        for name, value in counters.items()
        if name.startswith("net.faults.")
    }
    if faults:
        lines.append(
            "injected faults: "
            + ", ".join(f"{kind}={int(n)}" for kind, n in sorted(faults.items()))
        )

    stage_rows = _stage_rows(log)
    if stage_rows:
        lines.append(f"{'stage':18s} {'wall':>9s}  outcome")
        for name, seconds, cached in stage_rows:
            lines.append(
                f"{name:18s} {seconds:8.2f}s  {'cache-hit' if cached else 'ran'}"
            )
        hits = int(counters.get("stage.cache.hits", 0))
        misses = int(counters.get("stage.cache.misses", 0))
        if hits + misses:
            lines.append(f"stage cache: {hits} hit(s), {misses} miss(es)")

    cache_rows = _cache_rows(log)
    if cache_rows:
        lines.append(f"{'render cache':14s} {'hit rate':>9s} {'hits':>9s} {'misses':>9s}")
        for layer, hits, misses, rate in cache_rows:
            lines.append(f"{layer:14s} {rate:8.1%} {int(hits):9d} {int(misses):9d}")

    hist_rows = histogram_rows(log)
    if hist_rows:
        lines.append(
            f"{'histogram':28s} {'count':>7s} {'mean':>9s} {'p50':>9s} {'p95':>9s} {'p99':>9s}"
        )
        for name, count, mean, p50, p95, p99 in hist_rows:
            lines.append(
                f"{name:28s} {count:7d} {mean * 1000:8.1f}ms {p50 * 1000:8.1f}ms "
                f"{p95 * 1000:8.1f}ms {p99 * 1000:8.1f}ms"
            )

    lines.extend(profile_text(log.summary.get("profile"), top=top))

    hot = retry_hot_spots(log, top)
    if hot:
        lines.append("retry hot spots:")
        for domain, retries in hot:
            lines.append(f"  {domain:32s} {retries:4d} retr{'y' if retries == 1 else 'ies'}")

    slow = slow_pages(log, top)
    if slow:
        lines.append(f"top {len(slow)} slow pages:")
        for record in slow:
            attrs = record.get("attrs", {})
            lines.append(
                f"  {str(attrs.get('domain', '?')):32s} {float(record.get('dur', 0)) * 1000:8.1f}ms"
                f"  attempts={attrs.get('attempts', 1)}"
                f"  {'ok' if attrs.get('success', True) else attrs.get('failure_reason', 'failed')}"
            )

    dropped = int(log.summary.get("dropped", 0))
    lines.append(
        f"trace: {len(log.records)} record(s)"
        + (f", {dropped} dropped at the event cap" if dropped else "")
    )
    return "\n".join(lines)


def slow_text(log: RunLog, top: int = 10) -> str:
    """The ``repro.obs slow --top N`` view."""
    rows = slow_pages(log, top)
    if not rows:
        return "(no page spans in this run log — was tracing enabled?)"
    lines = [f"{'domain':32s} {'wall':>10s} {'attempts':>8s}  outcome"]
    for record in rows:
        attrs = record.get("attrs", {})
        outcome = "ok" if attrs.get("success", True) else str(attrs.get("failure_reason", "failed"))
        lines.append(
            f"{str(attrs.get('domain', '?')):32s} {float(record.get('dur', 0)) * 1000:8.1f}ms"
            f" {int(attrs.get('attempts', 1)):8d}  {outcome}"
        )
    return "\n".join(lines)
