"""Unified metrics: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` absorbs every producer in the study — the
crawler (pages, retries, failure classes), the network (requests, bytes,
injected faults), the stage graph (cache hits, per-stage wall time) and the
render-acceleration layer (:mod:`repro.perf` counters, folded in via
:func:`absorb_perf`) — under one dotted namespace, so ``repro.obs summary``
and the report's observability section read a single source of truth.

Snapshots are plain picklable dicts and merge associatively, exactly like
:class:`repro.perf.PerfCounters` snapshots: shard workers snapshot a
*delta* (``diff_snapshots(before, after)``) for each task they run and the
parent merges the deltas, so metrics cross the multiprocessing boundary
with no loss and no double-counting even when one pooled worker process
runs several shard tasks back to back.

Merge semantics per instrument:

* counters — summed (monotonic within a process; deltas clamp at zero);
* gauges — last-write-wins within a process, ``max`` across merges (a
  gauge that crosses processes is a residency-style "largest seen");
* histograms — bucket counts, sum and count are summed; min/max combine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BOUNDARIES",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "absorb_perf",
]

#: Default histogram buckets: wall-time seconds from sub-millisecond to a
#: minute-plus overflow bucket — the range one page load or stage occupies.
DEFAULT_BOUNDARIES: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0
)

_INF = float("inf")


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max sidecars."""

    __slots__ = ("boundaries", "counts", "total", "count", "min", "max")

    def __init__(self, boundaries: Sequence[float] = DEFAULT_BOUNDARIES) -> None:
        self.boundaries: Tuple[float, ...] = tuple(boundaries)
        #: counts[i] observes values <= boundaries[i]; the final slot is the
        #: overflow bucket (> the largest boundary).
        self.counts: List[int] = [0] * (len(self.boundaries) + 1)
        self.total = 0.0
        self.count = 0
        self.min = _INF
        self.max = -_INF

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.boundaries)
        while lo < hi:  # bisect over the (sorted) boundaries
            mid = (lo + hi) // 2
            if value <= self.boundaries[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.total += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile (0..1) from the bucket counts.

        Linear interpolation inside the bucket that crosses the target
        rank, clamped to the observed ``min``/``max`` so the estimate
        never leaves the data's range.  Edge cases (pinned by unit test):
        an empty histogram returns 0.0; a single occupied bucket
        interpolates between its bounds; samples in the overflow bucket
        interpolate up to the observed ``max`` (the only honest upper
        bound a fixed-bucket histogram has).
        """
        if not self.count:
            return 0.0
        q = min(1.0, max(0.0, q))
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count < target:
                cumulative += bucket_count
                continue
            lo = self.boundaries[index - 1] if index > 0 else min(self.min, self.boundaries[0])
            hi = self.boundaries[index] if index < len(self.boundaries) else self.max
            lo = max(lo, self.min) if self.min != _INF else lo
            hi = min(hi, self.max) if self.max != -_INF else hi
            if hi <= lo:
                return hi
            fraction = (target - cumulative) / bucket_count
            return lo + (hi - lo) * min(1.0, max(0.0, fraction))
        return self.max if self.max != -_INF else 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Histogram":
        hist = cls(tuple(data.get("boundaries", DEFAULT_BOUNDARIES)))
        counts = list(data.get("counts", ()))
        if len(counts) == len(hist.counts):
            hist.counts = [int(c) for c in counts]
        hist.total = float(data.get("sum", 0.0))
        hist.count = int(data.get("count", 0))
        if hist.count:
            hist.min = float(data.get("min", 0.0))
            hist.max = float(data.get("max", 0.0))
        return hist


class MetricsRegistry:
    """Counters, gauges and histograms under one dotted-name namespace."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording (hot paths: keep these a couple of dict ops) ---------------

    def inc(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def observe(
        self, name: str, value: float, boundaries: Sequence[float] = DEFAULT_BOUNDARIES
    ) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(boundaries)
            self._histograms[name] = hist
        hist.observe(value)

    # -- reading ---------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    # -- snapshot / merge / reset ---------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Picklable, JSON-able copy of every instrument."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {n: h.to_json() for n, h in self._histograms.items()},
        }

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a snapshot (typically a worker's delta) into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self._gauges[name] = max(self._gauges.get(name, float(value)), float(value))
        for name, data in snapshot.get("histograms", {}).items():
            incoming = Histogram.from_json(data)
            mine = self._histograms.get(name)
            if mine is None or mine.boundaries != incoming.boundaries:
                # Unknown or re-bucketed histogram: adopt (or, on a boundary
                # mismatch, fold sum/count so totals at least stay exact).
                if mine is None:
                    self._histograms[name] = incoming
                else:
                    mine.total += incoming.total
                    mine.count += incoming.count
                    mine.min = min(mine.min, incoming.min)
                    mine.max = max(mine.max, incoming.max)
                continue
            mine.counts = [a + b for a, b in zip(mine.counts, incoming.counts)]
            mine.total += incoming.total
            mine.count += incoming.count
            mine.min = min(mine.min, incoming.min)
            mine.max = max(mine.max, incoming.max)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def diff_snapshots(
    before: Dict[str, Dict[str, object]], after: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Delta of two registry snapshots, suitable for :meth:`~MetricsRegistry.merge`.

    Counters and histogram bucket counts subtract and clamp at zero (a
    mid-window ``reset()`` must never produce negative activity); counters
    and histograms with no activity in the window are dropped; gauges carry
    the ``after`` value (they are levels, not flows).  A name present only
    in ``after`` — first activity inside the window — is kept whole.
    """
    out: Dict[str, Dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        delta = float(value) - float(before_counters.get(name, 0.0))
        if delta > 0:
            out["counters"][name] = delta
    out["gauges"] = dict(after.get("gauges", {}))
    before_hists = before.get("histograms", {})
    for name, data in after.get("histograms", {}).items():
        base = before_hists.get(name)
        if base is None or list(base.get("boundaries", ())) != list(data.get("boundaries", ())):
            if int(data.get("count", 0)):
                out["histograms"][name] = dict(data)
            continue
        counts = [
            max(0, int(a) - int(b))
            for a, b in zip(data.get("counts", ()), base.get("counts", ()))
        ]
        count = max(0, int(data.get("count", 0)) - int(base.get("count", 0)))
        if not count:
            continue
        out["histograms"][name] = {
            "boundaries": list(data.get("boundaries", ())),
            "counts": counts,
            "sum": max(0.0, float(data.get("sum", 0.0)) - float(base.get("sum", 0.0))),
            "count": count,
            # Window-local extremes are unknowable from cumulative snapshots;
            # report the cumulative ones (documented approximation).
            "min": data.get("min", 0.0),
            "max": data.get("max", 0.0),
        }
    return out


def absorb_perf(
    registry: MetricsRegistry,
    perf_snapshot: Dict[str, Dict[str, float]],
    prefix: str = "render_cache",
) -> None:
    """Fold a :class:`repro.perf.PerfCounters` snapshot into the registry.

    Each render-cache layer becomes ``<prefix>.<layer>.{hits,misses,...}``
    counters plus ``entries``/``bytes`` residency gauges — so the unified
    metrics view covers the acceleration layer without that layer having to
    know about :mod:`repro.obs` (perf stays the producer, obs the consumer).
    """
    for layer, row in perf_snapshot.items():
        for field in ("hits", "misses", "evictions", "hit_seconds", "miss_seconds"):
            value = float(row.get(field, 0.0))
            if value:
                registry.inc(f"{prefix}.{layer}.{field}", value)
        for field in ("entries", "bytes"):
            value = float(row.get(field, 0.0))
            if value:
                registry.gauge(f"{prefix}.{layer}.{field}", value)
