"""Run-history ledger: every run appended to ``runs.jsonl``, diffable.

The recorder's ``manifest.json``/``trace.jsonl`` are *per-run* artifacts —
each run overwrites the last — so nothing in the system could answer "when
did this get slower?".  The ledger fixes that: :func:`append_run` adds one
JSON line per finished run (manifest identity + stage timings + the exact
metrics delta + the profiler rollup + crawl health) to an append-only
``runs.jsonl`` in the obs directory.  Like the trace log, loading is
torn-line tolerant: a run killed mid-append costs that line, never the
file.

On top of the ledger sit the three history verbs of ``python -m repro.obs``:

* ``history`` — table of recent runs (id, age, label, config digest, wall
  seconds, pages, profile samples);
* ``diff A B`` — stage-timing / counter / hit-rate deltas between two
  runs.  Config-digest aware: *regressions* are only counted when the two
  runs have the same config digest — different configs are expected to
  differ, so the diff is informational;
* ``regress`` — the CI gate: latest run vs the **median** of prior runs
  with the same config digest and label, failing (exit 1) past a
  threshold, with the same contract as ``benchmarks/check_regression.py``
  (0 ok, 1 regression, 2 can't compare).

What regresses: per-stage wall seconds that grow past the threshold
(ignoring stages below :data:`TIMING_FLOOR_S` — micro-stage jitter is not
signal), and render-cache / stage-cache hit rates that drop past it
(ignoring layers with fewer than :data:`HIT_RATE_MIN_LOOKUPS` lookups).
Raw wall seconds never compare across machines — but the ledger compares
a machine with itself, where they are exactly the drift signal fleet
crawls die by.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "LEDGER_NAME",
    "append_run",
    "load_ledger",
    "resolve_run",
    "history_text",
    "diff_text",
    "regress_text",
]

LEDGER_NAME = "runs.jsonl"

#: Stages faster than this (in both runs) never count as regressions —
#: at millisecond scale the scheduler is the signal, not the code.
TIMING_FLOOR_S = 0.05

#: Hit-rate comparisons need at least this many lookups on both sides.
HIT_RATE_MIN_LOOKUPS = 20


def ledger_path(obs_dir: Union[str, Path]) -> Path:
    path = Path(obs_dir)
    return path if path.name == LEDGER_NAME else path / LEDGER_NAME


# -- writing -------------------------------------------------------------------


def make_entry(
    label: str,
    manifest: Dict[str, Any],
    stage_timings: Sequence[Any] = (),
    metrics: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    health: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One ledger line (JSON-able).  ``stage_timings`` accepts
    :class:`~repro.core.stages.stage.StageTiming` objects or plain dicts."""
    stages = []
    for timing in stage_timings:
        if isinstance(timing, dict):
            stages.append(
                {
                    "name": str(timing.get("name", "?")),
                    "seconds": float(timing.get("seconds", 0.0)),
                    "cached": bool(timing.get("cached", False)),
                }
            )
        else:
            stages.append(
                {
                    "name": timing.name,
                    "seconds": float(timing.seconds),
                    "cached": bool(timing.cached),
                }
            )
    run_id = hashlib.sha256(
        f"{label}|{manifest.get('created')}|{os.getpid()}|{time.time_ns()}".encode()
    ).hexdigest()[:12]
    return {
        "t": "ledger-run",
        "run_id": run_id,
        "label": label,
        "created": manifest.get("created"),
        "git": manifest.get("git"),
        "config_digest": manifest.get("config_digest"),
        "seed": manifest.get("seed"),
        "shard_plan": manifest.get("shard_plan"),
        "stages": stages,
        "metrics": metrics or {},
        "profile": profile,
        "health": health,
    }


def append_run(obs_dir: Union[str, Path], entry: Dict[str, Any]) -> Path:
    """Append one run line (single ``write`` of line+newline, then flush —
    a torn writer can only tear its own line, which loading skips)."""
    path = ledger_path(obs_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(entry, separators=(",", ":"), default=str)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return path


# -- loading / selection -------------------------------------------------------


def load_ledger(obs_dir: Union[str, Path]) -> List[Dict[str, Any]]:
    """All parseable ledger entries, oldest first (torn lines skipped)."""
    path = ledger_path(obs_dir)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and entry.get("t") == "ledger-run":
                entries.append(entry)
    return entries


def resolve_run(entries: Sequence[Dict[str, Any]], selector: str) -> Dict[str, Any]:
    """Find one run: ``latest``/``prev``, a negative index (``-1`` is the
    newest), or a run-id prefix."""
    if not entries:
        raise ValueError("the run ledger is empty")
    sel = selector.strip()
    if sel in ("latest", "last"):
        return entries[-1]
    if sel == "prev":
        sel = "-2"
    try:
        index = int(sel)
    except ValueError:
        matches = [e for e in entries if str(e.get("run_id", "")).startswith(sel)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ValueError(f"no run with id prefix {sel!r} (try 'repro.obs history')")
        raise ValueError(f"run id prefix {sel!r} is ambiguous ({len(matches)} matches)")
    try:
        return entries[index if index < 0 else index]
    except IndexError:
        raise ValueError(
            f"run index {index} out of range (ledger holds {len(entries)} run(s))"
        ) from None


# -- derived views -------------------------------------------------------------


def _stage_map(entry: Dict[str, Any]) -> Dict[str, Tuple[float, bool]]:
    return {
        str(s.get("name")): (float(s.get("seconds", 0.0)), bool(s.get("cached")))
        for s in entry.get("stages", ())
    }


def _wall_seconds(entry: Dict[str, Any]) -> float:
    return sum(float(s.get("seconds", 0.0)) for s in entry.get("stages", ()))


def _hit_rates(entry: Dict[str, Any]) -> Dict[str, Tuple[float, float]]:
    """``layer -> (hit_rate, lookups)`` for render-cache layers + the stage
    cache, from the run's counter delta."""
    counters = entry.get("metrics", {}).get("counters", {})
    out: Dict[str, Tuple[float, float]] = {}
    layers = {
        name.split(".")[1]
        for name in counters
        if name.startswith("render_cache.") and name.count(".") >= 2
    }
    for layer in sorted(layers):
        hits = float(counters.get(f"render_cache.{layer}.hits", 0.0))
        misses = float(counters.get(f"render_cache.{layer}.misses", 0.0))
        lookups = hits + misses
        if lookups:
            out[f"render_cache.{layer}"] = (hits / lookups, lookups)
    hits = float(counters.get("stage.cache.hits", 0.0))
    misses = float(counters.get("stage.cache.misses", 0.0))
    if hits + misses:
        out["stage.cache"] = (hits / (hits + misses), hits + misses)
    return out


def _pages(entry: Dict[str, Any]) -> int:
    counters = entry.get("metrics", {}).get("counters", {})
    return int(sum(v for k, v in counters.items() if k.startswith("crawler.pages[")))


#: Dataset-shape counters: with equal config digests these should be
#: identical run to run; any difference is drift worth a warning.
_SHAPE_PREFIXES = ("crawler.pages", "crawler.pages_ok", "detect.", "cluster.")


def history_text(entries: Sequence[Dict[str, Any]], top: int = 20) -> str:
    if not entries:
        return "(empty run ledger — finish a run with REPRO_OBS_TRACE=1 or --obs-dir first)"
    lines = [
        f"{'#':>4s} {'run id':12s} {'created':20s} {'label':10s} "
        f"{'config':10s} {'wall':>8s} {'pages':>7s} {'samples':>8s}"
    ]
    total = len(entries)
    for offset, entry in enumerate(entries[-top:]):
        index = total - min(top, total) + offset - total  # negative selector
        profile = entry.get("profile") or {}
        lines.append(
            f"{index:>4d} {str(entry.get('run_id', '?')):12s} "
            f"{str(entry.get('created', '?'))[:19]:20s} "
            f"{str(entry.get('label', '?')):10s} "
            f"{str(entry.get('config_digest') or '-')[:10]:10s} "
            f"{_wall_seconds(entry):7.2f}s {_pages(entry):7d} "
            f"{int(profile.get('samples', 0)):8d}"
        )
    return "\n".join(lines)


def diff_text(
    a: Dict[str, Any],
    b: Dict[str, Any],
    threshold: float = 0.25,
) -> Tuple[str, int]:
    """Human diff of two ledger runs; returns ``(text, regressions)``.

    ``regressions`` counts threshold-crossing slowdowns/hit-rate drops and
    dataset-shape drift — but only when the runs share a config digest
    (different configs legitimately differ; the table still prints).
    """
    same_config = (
        a.get("config_digest") is not None
        and a.get("config_digest") == b.get("config_digest")
    )
    lines = [
        f"run A: {a.get('run_id')}  ({a.get('created')}, label {a.get('label')}, "
        f"config {a.get('config_digest') or '?'})",
        f"run B: {b.get('run_id')}  ({b.get('created')}, label {b.get('label')}, "
        f"config {b.get('config_digest') or '?'})",
    ]
    if not same_config:
        lines.append(
            "config digests differ: deltas below are informational, not regressions"
        )
    regressions = 0

    stages_a, stages_b = _stage_map(a), _stage_map(b)
    names = [n for n in stages_a if n in stages_b]
    if names:
        lines.append(f"{'stage':20s} {'A':>9s} {'B':>9s} {'delta':>9s}  status")
        for name in names:
            sec_a, cached_a = stages_a[name]
            sec_b, cached_b = stages_b[name]
            delta = sec_b - sec_a
            status = ""
            if cached_a != cached_b:
                status = f"cache: {'hit' if cached_a else 'ran'} -> {'hit' if cached_b else 'ran'}"
            elif (
                same_config
                and max(sec_a, sec_b) >= TIMING_FLOOR_S
                and sec_b > sec_a * (1.0 + threshold)
            ):
                status = f"REGRESSED (+{delta / sec_a:.0%})" if sec_a else "REGRESSED"
                regressions += 1
            elif same_config and sec_a >= TIMING_FLOOR_S and sec_b < sec_a * (1.0 - threshold):
                status = f"improved ({delta / sec_a:+.0%})"
            lines.append(
                f"{name:20s} {sec_a:8.2f}s {sec_b:8.2f}s {delta:+8.2f}s  {status}"
            )
        only = sorted(set(stages_a) ^ set(stages_b))
        for name in only:
            side = "A" if name in stages_a else "B"
            lines.append(f"{name:20s} (only in run {side})")

    rates_a, rates_b = _hit_rates(a), _hit_rates(b)
    shared = [layer for layer in rates_a if layer in rates_b]
    if shared:
        lines.append(f"{'cache layer':24s} {'A':>8s} {'B':>8s}  status")
        for layer in shared:
            rate_a, lookups_a = rates_a[layer]
            rate_b, lookups_b = rates_b[layer]
            status = ""
            if (
                same_config
                and min(lookups_a, lookups_b) >= HIT_RATE_MIN_LOOKUPS
                and rate_b < rate_a * (1.0 - threshold)
            ):
                status = f"REGRESSED (hit rate {rate_a:.1%} -> {rate_b:.1%})"
                regressions += 1
            lines.append(f"{layer:24s} {rate_a:7.1%} {rate_b:7.1%}  {status}")

    counters_a = a.get("metrics", {}).get("counters", {})
    counters_b = b.get("metrics", {}).get("counters", {})
    drifted = []
    for name in sorted(set(counters_a) | set(counters_b)):
        if not name.startswith(_SHAPE_PREFIXES):
            continue
        va, vb = float(counters_a.get(name, 0.0)), float(counters_b.get(name, 0.0))
        if va != vb:
            drifted.append((name, va, vb))
    if drifted and same_config:
        lines.append("dataset-shape drift under an identical config digest:")
        for name, va, vb in drifted:
            lines.append(f"  {name:40s} {va:10.0f} -> {vb:10.0f}")
            regressions += 1

    profile_a, profile_b = a.get("profile") or {}, b.get("profile") or {}
    if profile_a.get("samples") or profile_b.get("samples"):
        lines.append(
            f"profile samples: {int(profile_a.get('samples', 0))} -> "
            f"{int(profile_b.get('samples', 0))} "
            f"({float(profile_a.get('seconds', 0.0)):.2f}s -> "
            f"{float(profile_b.get('seconds', 0.0)):.2f}s sampled)"
        )

    if same_config:
        lines.append(
            "no regressions" if not regressions else f"{regressions} regression(s)"
        )
    return "\n".join(lines), regressions


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def regress_text(
    entries: Sequence[Dict[str, Any]],
    threshold: float = 0.25,
    min_runs: int = 1,
) -> Tuple[str, int]:
    """Latest run vs the median of prior same-config/same-label runs.

    Returns ``(text, exit_code)`` with the :mod:`benchmarks.check_regression`
    contract: 0 ok, 1 regression past ``threshold``, 2 nothing to compare
    (fewer than ``min_runs`` prior runs share the latest run's config
    digest and label — a setup problem, not a perf verdict).
    """
    if not entries:
        return ("the run ledger is empty — nothing to compare", 2)
    latest = entries[-1]
    digest, label = latest.get("config_digest"), latest.get("label")
    prior = [
        e
        for e in entries[:-1]
        if e.get("config_digest") == digest and e.get("label") == label
    ]
    if digest is None or len(prior) < min_runs:
        return (
            f"no prior run shares config digest {digest or '?'} and label "
            f"{label!r} — need {min_runs}, have {len(prior)} "
            "(run the same configuration again to establish a baseline)",
            2,
        )

    lines = [
        f"latest {latest.get('run_id')} vs median of {len(prior)} prior run(s) "
        f"(config {digest}, label {label}, threshold {threshold:.0%})",
        f"{'metric':32s} {'median':>10s} {'latest':>10s}  status",
    ]
    failures = 0

    current_stages = _stage_map(latest)
    for name, (seconds, cached) in current_stages.items():
        history = [
            _stage_map(e)[name][0]
            for e in prior
            if name in _stage_map(e) and not _stage_map(e)[name][1]
        ]
        if cached or not history:
            continue
        median = _median(history)
        if max(median, seconds) < TIMING_FLOOR_S:
            continue
        slow = seconds > median * (1.0 + threshold)
        status = f"REGRESSED (ceiling {median * (1 + threshold):.2f}s)" if slow else "ok"
        failures += slow
        lines.append(f"{'stage.' + name + '.seconds':32s} {median:9.2f}s {seconds:9.2f}s  {status}")

    current_rates = _hit_rates(latest)
    prior_rates = [_hit_rates(e) for e in prior]
    for layer in sorted({k for rates in prior_rates for k in rates}):
        history = [
            rates[layer][0]
            for rates in prior_rates
            if layer in rates and rates[layer][1] >= HIT_RATE_MIN_LOOKUPS
        ]
        if not history:
            continue
        median = _median(history)
        if layer not in current_rates:
            lines.append(f"{layer + '.hit_rate':32s} {median:10.3f} {'-':>10s}  MISSING")
            failures += 1
            continue
        rate, lookups = current_rates[layer]
        if lookups < HIT_RATE_MIN_LOOKUPS:
            continue
        low = rate < median * (1.0 - threshold)
        status = f"REGRESSED (floor {median * (1 - threshold):.3f})" if low else "ok"
        failures += low
        lines.append(f"{layer + '.hit_rate':32s} {median:10.3f} {rate:10.3f}  {status}")

    if failures:
        lines.append(f"{failures} metric(s) regressed more than {threshold:.0%}")
        return "\n".join(lines), 1
    lines.append("no regressions")
    return "\n".join(lines), 0
