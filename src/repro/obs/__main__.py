"""Inspect run artifacts written by the observability layer.

Usage::

    python -m repro.obs summary RUN_DIR            # totals, stages, hot spots
    python -m repro.obs slow RUN_DIR --top 20      # slowest pages
    python -m repro.obs export-trace RUN_DIR -o trace.json   # Perfetto/about:tracing
    python -m repro.obs history RUN_DIR            # run-history ledger table
    python -m repro.obs diff RUN_DIR -2 -1         # compare two ledger runs
    python -m repro.obs regress RUN_DIR            # latest vs prior same-config runs

``RUN_DIR`` is the directory holding ``manifest.json`` + ``trace.jsonl``
(e.g. ``crawl.jsonl.gz.obs/`` next to a crawled dataset), or a path to the
trace file itself.  ``export-trace`` output loads directly in
https://ui.perfetto.dev or ``chrome://tracing``.

The history verbs read the append-only ``runs.jsonl`` ledger in the same
directory (every finished run appends one line).  Runs are selected by id
prefix, ``latest``/``prev``, or a negative index (``-1`` is the newest).
``regress`` exits 0 when the latest run holds the line against the median
of prior same-config runs, 1 past ``--threshold``, 2 when there is nothing
to compare — the same contract as ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.obs import ledger
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.inspect import load_run, slow_text, summary_text

_HISTORY_COMMANDS = ("history", "diff", "regress")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="run totals, stage timings, hot spots")
    p_summary.add_argument("run", help="run directory (or trace.jsonl path)")
    p_summary.add_argument("--top", type=int, default=5, help="rows per hot-spot table")

    p_slow = sub.add_parser("slow", help="slowest pages of the run")
    p_slow.add_argument("run", help="run directory (or trace.jsonl path)")
    p_slow.add_argument("--top", type=int, default=10, help="number of pages to list")

    p_export = sub.add_parser(
        "export-trace", help="write Chrome trace_event JSON (Perfetto/about:tracing)"
    )
    p_export.add_argument("run", help="run directory (or trace.jsonl path)")
    p_export.add_argument("-o", "--out", default=None, help="output path (default: <run>/trace.json)")

    p_history = sub.add_parser("history", help="table of recent runs from the ledger")
    p_history.add_argument("run", help="obs directory (or runs.jsonl path)")
    p_history.add_argument("--top", type=int, default=20, help="number of runs to list")

    p_diff = sub.add_parser("diff", help="metric/timing/hit-rate deltas of two runs")
    p_diff.add_argument("run", help="obs directory (or runs.jsonl path)")
    p_diff.add_argument("a", help="run selector: id prefix, latest/prev, or -N")
    p_diff.add_argument("b", help="run selector: id prefix, latest/prev, or -N")
    p_diff.add_argument(
        "--threshold", type=float, default=0.25,
        help="fractional change that counts as a regression (default 0.25)",
    )

    p_regress = sub.add_parser(
        "regress", help="gate the latest run against prior same-config runs"
    )
    p_regress.add_argument("run", help="obs directory (or runs.jsonl path)")
    p_regress.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed fractional slowdown / hit-rate drop (default 0.25)",
    )
    p_regress.add_argument(
        "--min-runs", type=int, default=1,
        help="prior same-config runs required for a verdict (default 1)",
    )

    args = parser.parse_args(argv)

    if args.command in _HISTORY_COMMANDS:
        entries = ledger.load_ledger(args.run)
        if not entries:
            path = ledger.ledger_path(args.run)
            print(
                f"error: no run ledger at {path} — finish a run with "
                "REPRO_OBS_TRACE=1 (or --obs-dir) to create one",
                file=sys.stderr,
            )
            return 2
        if args.command == "history":
            print(ledger.history_text(entries, top=args.top))
            return 0
        if args.command == "diff":
            try:
                run_a = ledger.resolve_run(entries, args.a)
                run_b = ledger.resolve_run(entries, args.b)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            text, regressions = ledger.diff_text(run_a, run_b, threshold=args.threshold)
            print(text)
            return 1 if regressions else 0
        text, code = ledger.regress_text(
            entries, threshold=args.threshold, min_runs=args.min_runs
        )
        print(text)
        return code

    try:
        log = load_run(args.run)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if log.is_empty:
        print(
            f"error: {log.path} holds no usable trace records — the run was "
            "killed before its header landed, or tracing was off "
            "(set REPRO_OBS_TRACE=1 and re-run, or pick another run directory)",
            file=sys.stderr,
        )
        return 2

    if args.command == "summary":
        print(summary_text(log, top=args.top))
    elif args.command == "slow":
        print(slow_text(log, top=args.top))
    else:  # export-trace
        payload = to_chrome_trace(log.records)
        count = validate_chrome_trace(payload)
        out = Path(args.out) if args.out else log.path / "trace.json"
        out.write_text(json.dumps(payload, separators=(",", ":")) + "\n", encoding="utf-8")
        print(f"wrote {out} ({count} trace events)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... summary RUN | head`
        # Point stdout at devnull so the interpreter's exit-time flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
