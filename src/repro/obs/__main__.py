"""Inspect run artifacts written by the observability layer.

Usage::

    python -m repro.obs summary RUN_DIR            # totals, stages, hot spots
    python -m repro.obs slow RUN_DIR --top 20      # slowest pages
    python -m repro.obs export-trace RUN_DIR -o trace.json   # Perfetto/about:tracing

``RUN_DIR`` is the directory holding ``manifest.json`` + ``trace.jsonl``
(e.g. ``crawl.jsonl.gz.obs/`` next to a crawled dataset), or a path to the
trace file itself.  ``export-trace`` output loads directly in
https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.inspect import load_run, slow_text, summary_text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="run totals, stage timings, hot spots")
    p_summary.add_argument("run", help="run directory (or trace.jsonl path)")
    p_summary.add_argument("--top", type=int, default=5, help="rows per hot-spot table")

    p_slow = sub.add_parser("slow", help="slowest pages of the run")
    p_slow.add_argument("run", help="run directory (or trace.jsonl path)")
    p_slow.add_argument("--top", type=int, default=10, help="number of pages to list")

    p_export = sub.add_parser(
        "export-trace", help="write Chrome trace_event JSON (Perfetto/about:tracing)"
    )
    p_export.add_argument("run", help="run directory (or trace.jsonl path)")
    p_export.add_argument("-o", "--out", default=None, help="output path (default: <run>/trace.json)")

    args = parser.parse_args(argv)
    try:
        log = load_run(args.run)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "summary":
        print(summary_text(log, top=args.top))
    elif args.command == "slow":
        print(slow_text(log, top=args.top))
    else:  # export-trace
        payload = to_chrome_trace(log.records)
        count = validate_chrome_trace(payload)
        out = Path(args.out) if args.out else log.path / "trace.json"
        out.write_text(json.dumps(payload, separators=(",", ":")) + "\n", encoding="utf-8")
        print(f"wrote {out} ({count} trace events)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... summary RUN | head`
        # Point stdout at devnull so the interpreter's exit-time flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
