"""Study-wide observability: structured tracing, unified metrics, run artifacts.

Three pillars, one import (``from repro import obs``):

* **Tracing** — ``obs.span("crawl.page", domain=...)`` opens a nestable
  span; ``obs.event("crawl.retry", ...)`` records a point event.  Off by
  default (``REPRO_OBS_TRACE=1`` enables): a disabled call is one branch
  and a shared no-op object, so instrumentation lives permanently in the
  crawler, stage graph and storage layers at no measurable cost.
* **Metrics** — ``obs.METRICS`` is the process-global
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms).  Always on.  Shard workers ship *deltas* back
  to the parent (:func:`worker_payload` / :func:`ingest_worker`), so a
  sharded crawl's numbers aggregate with no loss and no double-count, the
  same way :mod:`repro.perf` snapshots merge.
* **Run artifacts** — :class:`~repro.obs.recorder.RunRecorder` writes a
  ``manifest.json`` + ``trace.jsonl`` per run (and appends every run to
  the ``runs.jsonl`` history ledger); ``python -m repro.obs`` inspects
  them (``summary``, ``slow``, ``export-trace``, ``history``, ``diff``,
  ``regress``).
* **Profiling** — :mod:`repro.obs.profiler` is a wall-clock sampling
  profiler (``REPRO_OBS_PROFILE=1``) whose samples are tagged with the
  innermost active span, so self-time attributes to stages, sites and
  vendor scripts.  Sample tables ride the same worker payload channel as
  metrics, with the same exactly-once guarantee.

Span taxonomy and metric names are catalogued in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs import profiler
from repro.obs.config import ObsConfig
from repro.obs.metrics import MetricsRegistry, absorb_perf
from repro.obs.metrics import diff_snapshots as diff_metric_snapshots
from repro.obs.trace import NOOP_SPAN, Tracer

__all__ = [
    "ObsConfig",
    "MetricsRegistry",
    "Tracer",
    "NOOP_SPAN",
    "METRICS",
    "TRACE",
    "absorb_perf",
    "diff_metric_snapshots",
    "config",
    "configure",
    "enabled",
    "span",
    "event",
    "inc",
    "gauge",
    "observe",
    "set_worker_label",
    "worker_payload",
    "ingest_worker",
    "reset",
    "profiler",
]

_CONFIG = ObsConfig.from_env()

#: Process-global tracer and metrics registry (workers get their own copies
#: of these module globals and ship deltas back to the parent).
TRACE = Tracer(_CONFIG)
METRICS = MetricsRegistry()


def config() -> ObsConfig:
    """The active observability configuration."""
    return _CONFIG


def configure(cfg: ObsConfig) -> None:
    """Install ``cfg`` (e.g. a shard worker adopting its parent's knobs)."""
    global _CONFIG
    _CONFIG = cfg
    TRACE.configure(cfg)


def enabled() -> bool:
    """Whether span/event recording is on (metrics are always on)."""
    return TRACE.enabled


# -- thin hot-path wrappers ---------------------------------------------------


def span(name: str, **attrs: Any):
    """Open a span (a context manager; no-op when tracing is off).

    When the sampling profiler is running, spans that carry a cost
    identity (stages, shards, pages) also push a profiler context tag for
    their duration — even with tracing off, so profiling works standalone.
    """
    if profiler.ACTIVE:
        inner = TRACE.span(name, **attrs) if TRACE.enabled else NOOP_SPAN
        tag = profiler.span_context(name, attrs)
        return profiler.tagged(inner, tag) if tag is not None else inner
    if not TRACE.enabled:
        return NOOP_SPAN
    return TRACE.span(name, **attrs)


def event(name: str, sample_key: str = "", **attrs: Any) -> None:
    """Record a point event (no-op when tracing is off)."""
    if TRACE.enabled:
        TRACE.event(name, sample_key=sample_key, **attrs)


def inc(name: str, value: float = 1.0) -> None:
    METRICS.inc(name, value)


def gauge(name: str, value: float) -> None:
    METRICS.gauge(name, value)


def observe(name: str, value: float) -> None:
    METRICS.observe(name, value)


# -- cross-process propagation ------------------------------------------------


def set_worker_label(tid: str) -> None:
    """Stamp this process's records with a logical worker label."""
    TRACE.tid = tid


def worker_payload(metrics_before: Dict[str, Any]) -> Dict[str, Any]:
    """Everything a worker ships back for one task: span records + metric delta.

    ``metrics_before`` must be the ``METRICS.snapshot()`` taken when the
    task *started*: pooled worker processes run several tasks back to back,
    and shipping cumulative snapshots would double-count every earlier task
    on merge.  Spans are drained (handed off exactly once) for the same
    reason.
    """
    return {
        "spans": TRACE.drain(),
        "metrics": diff_metric_snapshots(metrics_before, METRICS.snapshot()),
        "dropped": TRACE.dropped,
        # Profiler samples drain per task for the same exactly-once reason
        # (None when the profiler is off or saw nothing this window).
        "profile": profiler.drain(),
    }


def ingest_worker(payload: Optional[Dict[str, Any]]) -> None:
    """Fold one worker task's payload into this process exactly once."""
    if not payload:
        return
    TRACE.ingest(payload.get("spans", ()))
    METRICS.merge(payload.get("metrics", {}))
    TRACE.dropped += int(payload.get("dropped", 0))
    profiler.merge(payload.get("profile"))


def reset() -> None:
    """Test isolation: clear buffered records and zero every metric."""
    TRACE.reset()
    METRICS.reset()
    profiler.reset()


def _labeled(name: str, label: str) -> str:
    """Per-crawl variant of a metric name (``crawler.pages[control]``)."""
    return f"{name}[{label}]" if label else name
