"""Chrome ``trace_event`` exporter: open shard timelines in Perfetto.

Converts the run log's span/event records into the Trace Event Format
(the ``{"traceEvents": [...]}`` JSON that ``chrome://tracing`` and
https://ui.perfetto.dev load directly).  Spans become complete events
(``ph: "X"``) with microsecond timestamps and durations; point events
become instant events (``ph: "i"``); each distinct ``(pid, tid-label)``
pair gets a ``thread_name`` metadata event, so a sharded crawl renders as
one labelled lane per worker.

:func:`validate_chrome_trace` is the exporter's own acceptance check — the
tests and the CLI run every export through it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["to_chrome_trace", "validate_chrome_trace"]


def _thread_ids(records: Iterable[Dict[str, Any]]) -> Dict[Tuple[int, str], int]:
    """Stable small integer ids for each (pid, tid-label) lane."""
    lanes: Dict[Tuple[int, str], int] = {}
    for record in records:
        key = (int(record.get("pid", 0)), str(record.get("tid", "main")))
        if key not in lanes:
            lanes[key] = len(lanes) + 1
    return lanes


def to_chrome_trace(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Render span/event records as a Chrome trace_event JSON object."""
    spans = [r for r in records if r.get("t") == "span"]
    events = [r for r in records if r.get("t") == "event"]
    lanes = _thread_ids(spans + events)

    trace_events: List[Dict[str, Any]] = []
    for (pid, label), tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
    for record in spans:
        pid = int(record.get("pid", 0))
        tid = lanes[(pid, str(record.get("tid", "main")))]
        args = dict(record.get("attrs", {}))
        if record.get("status") and record["status"] != "ok":
            args["status"] = record["status"]
        trace_events.append(
            {
                "ph": "X",
                "name": str(record.get("name", "span")),
                "cat": str(record.get("name", "span")).split(".", 1)[0],
                "ts": float(record.get("ts", 0.0)) * 1e6,
                "dur": max(0.0, float(record.get("dur", 0.0))) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for record in events:
        pid = int(record.get("pid", 0))
        tid = lanes[(pid, str(record.get("tid", "main")))]
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "name": str(record.get("name", "event")),
                "cat": str(record.get("name", "event")).split(".", 1)[0],
                "ts": float(record.get("ts", 0.0)) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": dict(record.get("attrs", {})),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Dict[str, Any]) -> int:
    """Check trace_event structural invariants; returns the event count.

    Raises :class:`ValueError` naming the first offending event — used by
    the test suite and by ``export-trace`` before writing anything.
    """
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        raise ValueError("trace must be an object with a 'traceEvents' list")
    for index, ev in enumerate(payload["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            raise ValueError(f"{where}: unsupported phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            raise ValueError(f"{where}: missing numeric ts")
        if ph == "X" and (not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0):
            raise ValueError(f"{where}: complete event needs dur >= 0")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            raise ValueError(f"{where}: instant event needs scope s in t/p/g")
    return len(payload["traceEvents"])
