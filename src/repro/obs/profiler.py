"""Zero-dependency wall-clock sampling profiler with span-context attribution.

A background daemon thread wakes ``profile_hz`` times a second (a prime,
so it never locks step with periodic work), snapshots every thread's stack
via ``sys._current_frames``, and folds each observation into a process-local
:class:`SampleTable` keyed by ``(context, stack)``:

* **stack** — ``module:function`` frames, root first, capped at
  :data:`MAX_STACK_DEPTH`;
* **context** — the innermost active obs spans, translated to tags by
  :func:`span_context` (``stage.detect`` → ``("stage", "detect")``,
  ``crawl.page`` → ``("site", domain)``, …) plus explicit pushes like the
  browser's per-vendor-script tag — so a sample attributes all the way down
  stage → shard → page → site-domain → executing vendor script.

Design constraints, in order:

1. **Exactly transparent.**  Sampling only ever *reads* interpreter state;
   datasets and analyses are byte-identical with profiling on or off
   (pinned by test).  Hot paths pay one module-attribute load and one
   branch when the profiler is off (:data:`ACTIVE`).
2. **Exactly-once across processes.**  Workers drain their table per task
   (:func:`drain`) and ship the picklable snapshot home over the existing
   ``worker_payload``/``ingest_worker`` channel; pooled workers that run
   several tasks never re-ship earlier samples.  Forked children (both the
   pool and the supervisor fork on Linux) inherit the parent's table but
   not its sampler thread — :func:`maybe_start` detects the new pid and
   resets, so parent samples are never double-counted.
3. **Readable output.**  :func:`collapsed_stacks` emits flamegraph.pl
   lines (context tags become synthetic root frames), :func:`chrome_trace`
   a Perfetto-loadable trace, :func:`rollup` the "top self-time by site /
   vendor script / subsystem / stage" report tables.

GIL note: the sampler mutates the table from its own thread while the
owning thread may :func:`drain` it.  Both sides swap or update whole dict
references (atomic under the GIL), so no locks are needed and a drain can
at worst miss the one sample currently being folded — it lands in the next
window instead.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.config import ObsConfig

__all__ = [
    "ACTIVE",
    "SampleTable",
    "TABLE",
    "maybe_start",
    "stop",
    "drain",
    "merge",
    "context",
    "tagged",
    "span_context",
    "rollup",
    "collapsed_stacks",
    "chrome_trace",
    "reset",
]

#: Fast hot-path flag: is a sampler thread running in this process?
ACTIVE = False

#: Frames kept per sample, root-first (deeper tails are truncated).
MAX_STACK_DEPTH = 64

#: Distinct (context, stack) keys per table before samples are dropped
#: (drops are counted, never silent).
MAX_TABLE_KEYS = 50_000

#: Leaf-ward path fragments -> subsystem labels for the rollup.  First
#: match walking leaf -> root wins, so a render helper called from the JS
#: interpreter still counts as render time.
_SUBSYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("repro.crawler.supervisor", "supervisor"),
    ("repro.core.reducers", "reducers"),
    ("repro.js.compiler", "js.compile"),
    ("repro.js.parser", "js.compile"),
    ("repro.js.lexer", "js.compile"),
    ("repro.js.nodes", "js.compile"),
    ("repro.js.tokens", "js.compile"),
    ("repro.js.", "js.exec"),
    ("repro.canvas", "render"),
    ("repro.dom", "render"),
)


class SampleTable:
    """Aggregated samples: ``(context, stack) -> [count, seconds]``."""

    def __init__(self) -> None:
        self.entries: Dict[Tuple[tuple, tuple], List[float]] = {}
        self.dropped = 0

    def record(self, ctx: tuple, stack: tuple, weight: float) -> None:
        key = (ctx, stack)
        row = self.entries.get(key)
        if row is not None:
            row[0] += 1
            row[1] += weight
        elif len(self.entries) < MAX_TABLE_KEYS:
            self.entries[key] = [1, weight]
        else:
            self.dropped += 1

    def snapshot(self) -> Dict[str, Any]:
        """Picklable/JSON-able copy (ships over the worker channel)."""
        return {
            "entries": [
                [list(ctx), list(stack), int(row[0]), float(row[1])]
                for (ctx, stack), row in self.entries.items()
            ],
            "dropped": self.dropped,
        }

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a drained snapshot in (associative, like metric deltas)."""
        if not snapshot:
            return
        for ctx, stack, count, seconds in snapshot.get("entries", ()):
            key = (tuple(tuple(tag) for tag in ctx), tuple(stack))
            row = self.entries.get(key)
            if row is not None:
                row[0] += count
                row[1] += seconds
            elif len(self.entries) < MAX_TABLE_KEYS:
                self.entries[key] = [count, seconds]
            else:
                self.dropped += count
        self.dropped += int(snapshot.get("dropped", 0))

    def clear(self) -> None:
        self.entries = {}
        self.dropped = 0


#: Process-global sample table (workers drain it per task; the study
#: process drains it once at the end of the run).
TABLE = SampleTable()

#: Per-thread context-tag stacks, keyed by ``threading.get_ident()`` —
#: the same keys ``sys._current_frames`` reports, so the sampler can pair
#: a thread's stack with its tags without any cross-thread bookkeeping.
_CONTEXTS: Dict[int, List[Tuple[str, str]]] = {}

_SAMPLER: Optional["_Sampler"] = None
_PID = os.getpid()
_FILE_LABELS: Dict[str, str] = {}


# -- context tags --------------------------------------------------------------


def push_context(kind: str, label: str) -> None:
    """Tag the calling thread's subsequent samples with ``(kind, label)``."""
    ident = threading.get_ident()
    stack = _CONTEXTS.get(ident)
    if stack is None:
        # Replace, don't mutate-in-place on first use: the sampler thread
        # iterates _CONTEXTS without a lock.
        _CONTEXTS[ident] = [(kind, label)]
    else:
        stack.append((kind, label))


def pop_context() -> None:
    stack = _CONTEXTS.get(threading.get_ident())
    if stack:
        stack.pop()


class _Context:
    """``with profiler.context("script", url):`` — push/pop one tag."""

    __slots__ = ("kind", "label")

    def __init__(self, kind: str, label: str) -> None:
        self.kind = kind
        self.label = label

    def __enter__(self) -> "_Context":
        push_context(self.kind, self.label)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pop_context()


def context(kind: str, label: str) -> _Context:
    return _Context(kind, str(label))


class _TaggedSpan:
    """Span wrapper that brackets the span with a profiler context tag."""

    __slots__ = ("inner", "tag")

    def __init__(self, inner: Any, tag: Tuple[str, str]) -> None:
        self.inner = inner
        self.tag = tag

    @property
    def recording(self) -> bool:
        return self.inner.recording

    def set_attr(self, key: str, value: Any) -> None:
        self.inner.set_attr(key, value)

    def set_status(self, status: str, detail: Optional[str] = None) -> None:
        self.inner.set_status(status, detail)

    def __enter__(self) -> "_TaggedSpan":
        push_context(*self.tag)
        self.inner.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        result = self.inner.__exit__(exc_type, exc, tb)
        pop_context()
        return result


def tagged(inner: Any, tag: Tuple[str, str]) -> _TaggedSpan:
    return _TaggedSpan(inner, tag)


def span_context(name: str, attrs: Dict[str, Any]) -> Optional[Tuple[str, str]]:
    """Map an obs span to a sample tag (None for spans with no cost identity)."""
    if name.startswith("stage."):
        return ("stage", name[len("stage."):])
    if name == "crawl.page":
        return ("site", str(attrs.get("domain", "?")))
    if name == "crawl.shard":
        return ("shard", str(attrs.get("shard", "?")))
    if name == "study.run":
        return ("study", "run")
    return None


# -- the sampler thread --------------------------------------------------------


def _frame_label(frame) -> str:
    filename = frame.f_code.co_filename
    label = _FILE_LABELS.get(filename)
    if label is None:
        normalized = filename.replace("\\", "/")
        marker = normalized.rfind("/repro/")
        if marker >= 0:
            label = normalized[marker + 1 : -3] if normalized.endswith(".py") else normalized[marker + 1 :]
            label = label.replace("/", ".")
        else:
            base = normalized.rsplit("/", 1)[-1]
            label = base[:-3] if base.endswith(".py") else base
        _FILE_LABELS[filename] = label
    return f"{label}:{frame.f_code.co_name}"


class _Sampler(threading.Thread):
    def __init__(self, hz: float) -> None:
        super().__init__(name="repro-obs-sampler", daemon=True)
        self.hz = hz
        # Not named ``_stop``: threading._after_fork calls Thread._stop()
        # on every surviving thread object, and shadowing it with an Event
        # raises (noisily, on stderr) in every forked worker.
        self._halt_event = threading.Event()

    def halt(self) -> None:
        self._halt_event.set()

    def run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        # Jitter start phase off the epoch so hz never aliases caller clocks.
        self._halt_event.wait(interval * (time.time() % 1.0))
        while not self._halt_event.wait(interval):
            try:
                frames = sys._current_frames()
            except Exception:
                continue
            for ident, frame in frames.items():
                if ident == own:
                    continue
                stack: List[str] = []
                depth = 0
                while frame is not None and depth < MAX_STACK_DEPTH:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                stack.reverse()
                ctx = tuple(_CONTEXTS.get(ident, ()))
                TABLE.record(ctx, tuple(stack), interval)


# -- lifecycle -----------------------------------------------------------------


def maybe_start(config: ObsConfig) -> bool:
    """Start (or stop) the sampler to match ``config``; fork-safe.

    Called from the study process and from every shard/supervised worker's
    task entry point.  A forked child inherits the parent's table and
    context dict but not the sampler thread; starting here after a pid
    check resets both, so parent samples are never shipped twice.
    """
    global _SAMPLER, _PID, ACTIVE
    if _PID != os.getpid():
        _PID = os.getpid()
        _SAMPLER = None  # thread objects don't survive fork
        ACTIVE = False
        TABLE.clear()
        _CONTEXTS.clear()
    if not config.profile:
        stop()
        return False
    if _SAMPLER is not None and _SAMPLER.is_alive() and _SAMPLER.hz == config.profile_hz:
        return True
    stop()
    _SAMPLER = _Sampler(config.profile_hz)
    _SAMPLER.start()
    ACTIVE = True
    return True


def stop() -> None:
    """Stop the sampler thread (the table keeps its samples)."""
    global _SAMPLER, ACTIVE
    ACTIVE = False
    if _SAMPLER is not None:
        _SAMPLER.halt()
        _SAMPLER = None


def drain() -> Optional[Dict[str, Any]]:
    """Take-and-clear the table as a picklable snapshot (None when empty)."""
    global TABLE
    if not TABLE.entries and not TABLE.dropped:
        return None
    table, TABLE = TABLE, SampleTable()
    return table.snapshot()


def merge(snapshot: Optional[Dict[str, Any]]) -> None:
    """Fold a worker's drained snapshot into this process's table."""
    TABLE.merge(snapshot)


def reset() -> None:
    """Test isolation: stop sampling and forget everything."""
    stop()
    TABLE.clear()
    _CONTEXTS.clear()


# -- analyses / exports --------------------------------------------------------


def _innermost(ctx: Iterable[Tuple[str, str]], kind: str) -> Optional[str]:
    label = None
    for tag_kind, tag_label in ctx:
        if tag_kind == kind:
            label = tag_label
    return label


def _subsystem(stack: Tuple[str, ...]) -> str:
    for frame in reversed(stack):
        module = frame.split(":", 1)[0]
        for fragment, label in _SUBSYSTEMS:
            if module.startswith(fragment):
                return label
    return "other"


def _entries(snapshot: Optional[Dict[str, Any]]):
    for ctx, stack, count, seconds in (snapshot or {}).get("entries", ()):
        yield tuple(tuple(tag) for tag in ctx), tuple(stack), int(count), float(seconds)


def rollup(snapshot: Optional[Dict[str, Any]], top: int = 10) -> Dict[str, Any]:
    """Self-time tables: by site, by vendor script, by subsystem, by stage.

    Picklable and JSON-able — this is what lands in ``StudyResult.profile``,
    the trace summary line, and the run-history ledger.
    """
    samples = 0
    seconds = 0.0
    unattributed = 0
    by: Dict[str, Dict[str, List[float]]] = {
        "site": {}, "script": {}, "stage": {}, "shard": {}, "subsystem": {}
    }
    for ctx, stack, count, secs in _entries(snapshot):
        samples += count
        seconds += secs
        if not ctx:
            unattributed += count
        for kind in ("site", "script", "stage", "shard"):
            label = _innermost(ctx, kind)
            if label is not None:
                row = by[kind].setdefault(label, [0, 0.0])
                row[0] += count
                row[1] += secs
        sub = _subsystem(stack)
        row = by["subsystem"].setdefault(sub, [0, 0.0])
        row[0] += count
        row[1] += secs

    def table(kind: str) -> List[Dict[str, Any]]:
        rows = sorted(by[kind].items(), key=lambda kv: (-kv[1][1], kv[0]))[:top]
        return [
            {"name": name, "samples": int(count), "seconds": round(secs, 4)}
            for name, (count, secs) in rows
        ]

    return {
        "samples": samples,
        "seconds": round(seconds, 4),
        "dropped": int((snapshot or {}).get("dropped", 0)),
        "unattributed_samples": unattributed,
        "by_site": table("site"),
        "by_script": table("script"),
        "by_stage": table("stage"),
        "by_shard": table("shard"),
        "by_subsystem": table("subsystem"),
    }


def _safe(label: str) -> str:
    return label.replace(";", ",").replace(" ", "_") or "?"


def collapsed_stacks(snapshot: Optional[Dict[str, Any]]) -> List[str]:
    """flamegraph.pl-compatible lines: ``frame;frame;... count``.

    Context tags become synthetic root frames (``stage:detect``,
    ``site:news4.example`` …); samples with no context root at
    ``<unattributed>`` so the attribution rate is visible in the graph.
    """
    merged: Dict[str, int] = {}
    for ctx, stack, count, _ in _entries(snapshot):
        frames = [f"{kind}:{_safe(label)}" for kind, label in ctx]
        if not frames:
            frames = ["<unattributed>"]
        frames.extend(_safe(frame) for frame in stack)
        key = ";".join(frames)
        merged[key] = merged.get(key, 0) + count
    return [f"{key} {count}" for key, count in sorted(merged.items())]


def chrome_trace(snapshot: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregated samples as a Chrome ``trace_event`` flame chart.

    The timeline is synthetic (samples have no wall-clock order once
    aggregated): entries are laid end to end, each as a nested set of
    complete events — context tags outermost, then the frames.  Loads in
    Perfetto/about:tracing and passes
    :func:`repro.obs.export.validate_chrome_trace`.
    """
    events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "thread_name", "pid": 0, "tid": 1,
         "args": {"name": "profile (aggregated)"}}
    ]
    cursor = 0.0
    rows = sorted(_entries(snapshot), key=lambda row: (row[0], row[1]))
    for ctx, stack, count, seconds in rows:
        duration_us = max(1.0, seconds * 1e6)
        names = [f"{kind}:{label}" for kind, label in ctx] or ["<unattributed>"]
        names.extend(stack)
        for depth, name in enumerate(names):
            events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": "profile",
                    "ts": cursor + depth * 0.001,
                    "dur": duration_us - depth * 0.002,
                    "pid": 0,
                    "tid": 1,
                    "args": {"samples": count} if depth == len(names) - 1 else {},
                }
            )
        cursor += duration_us + 1.0
    return {"traceEvents": events, "displayTimeUnit": "ms"}
