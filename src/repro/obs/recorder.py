"""Run-artifact recorder: one manifest + one JSONL trace log per run.

A :class:`RunRecorder` brackets one ``run_crawl``/``run_study``:

* :meth:`start` writes ``manifest.json`` into the run directory and marks
  the metrics baseline (so the run's summary is a *delta*, immune to other
  runs sharing the process — the same windowing trick
  :func:`repro.perf.diff_snapshots` uses for stages);
* :meth:`finish` drains the tracer's buffered records into ``trace.jsonl``
  — a ``run`` header line, one line per span/event, and a final ``summary``
  line carrying the exact metrics delta (plus drop counts) — and rewrites
  the manifest with anything learned during the run (config digest, stage
  cache keys, crawl health).

The summary line is what makes sampling safe: ``repro.obs summary`` totals
come from the (never-sampled) metrics delta, so they match
``CrawlDataset.health`` exactly even when only 1% of page spans survive
into the log.  Span/event lines feed the timeline views (``slow``,
``export-trace``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro import obs
from repro.obs import ledger as ledger_mod
from repro.obs import manifest as manifest_mod
from repro.obs import profiler
from repro.obs.metrics import diff_snapshots

__all__ = ["RunRecorder", "TRACE_NAME", "COLLAPSED_NAME", "PROFILE_TRACE_NAME"]

TRACE_NAME = "trace.jsonl"
COLLAPSED_NAME = "profile.collapsed"
PROFILE_TRACE_NAME = "profile.trace.json"


class RunRecorder:
    """Write one run's manifest and trace log under ``run_dir``."""

    def __init__(
        self,
        run_dir: Union[str, Path],
        label: str,
        seed: Optional[int] = None,
        shard_plan: Optional[Dict[str, Any]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.label = label
        self.manifest = manifest_mod.collect_manifest(
            label, seed=seed, shard_plan=shard_plan, extra=extra
        )
        self._metrics_before: Dict[str, Any] = {}
        self._started = False
        #: Ledger id of the finished run (set by :meth:`finish`).
        self.run_id: Optional[str] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self, metrics_before: Optional[Dict[str, Any]] = None) -> "RunRecorder":
        """Write the manifest and mark the metrics baseline.

        Callers that also compute their own metrics delta (``run_study``
        fills ``StudyResult.metrics``) pass the snapshot they took, so the
        summary line and the in-process result use the *same* baseline.
        """
        manifest_mod.write_manifest(self.run_dir, self.manifest)
        self._metrics_before = (
            obs.METRICS.snapshot() if metrics_before is None else metrics_before
        )
        self._started = True
        return self

    def finish(
        self,
        manifest_update: Optional[Dict[str, Any]] = None,
        health: Optional[Dict[str, Any]] = None,
        stage_timings: Sequence[Any] = (),
        profile: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Flush records + summary to ``trace.jsonl``; returns its path.

        ``profile`` is a drained :mod:`~repro.obs.profiler` sample-table
        snapshot.  When the profiler is active and none was passed, the
        process table is drained here — so the CLI paths get profile
        artifacts without extra plumbing.  A non-empty profile also writes
        ``profile.collapsed`` (flamegraph.pl lines) and
        ``profile.trace.json`` (Chrome trace), and every finish appends
        the run — manifest identity, stage timings, metrics delta, profile
        rollup, health — to the ``runs.jsonl`` history ledger.
        """
        if not self._started:
            self.start()
        metrics_delta = diff_snapshots(self._metrics_before, obs.METRICS.snapshot())
        if manifest_update:
            self.manifest.update(manifest_update)
            manifest_mod.write_manifest(self.run_dir, self.manifest)
        if profile is None and profiler.ACTIVE:
            profile = profiler.drain()
        profile_rollup = profiler.rollup(profile) if profile else None

        records = obs.TRACE.drain()
        path = self.run_dir / TRACE_NAME
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"t": "run", "label": self.label, "manifest": manifest_mod.MANIFEST_NAME}
                )
                + "\n"
            )
            for record in records:
                fh.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
            fh.write(
                json.dumps(
                    {
                        "t": "summary",
                        "label": self.label,
                        "metrics": metrics_delta,
                        "health": health,
                        "records": len(records),
                        "dropped": obs.TRACE.dropped,
                        "profile": profile_rollup,
                    },
                    separators=(",", ":"),
                    default=str,
                )
                + "\n"
            )
        os.replace(tmp, path)

        if profile:
            collapsed = self.run_dir / COLLAPSED_NAME
            collapsed.write_text(
                "\n".join(profiler.collapsed_stacks(profile)) + "\n", encoding="utf-8"
            )
            chrome = self.run_dir / PROFILE_TRACE_NAME
            chrome.write_text(
                json.dumps(profiler.chrome_trace(profile), separators=(",", ":")) + "\n",
                encoding="utf-8",
            )

        entry = ledger_mod.make_entry(
            self.label,
            self.manifest,
            stage_timings=stage_timings,
            metrics=metrics_delta,
            profile=profile_rollup,
            health=health,
        )
        ledger_mod.append_run(self.run_dir, entry)
        self.run_id = entry["run_id"]
        return path

    def __enter__(self) -> "RunRecorder":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()


def resolve_run_dir(
    explicit: Optional[Union[str, Path]], default: Optional[Union[str, Path]] = None
) -> Optional[Path]:
    """Where run artifacts should go: explicit arg > ``REPRO_OBS_DIR`` > default."""
    if explicit is not None:
        return Path(explicit)
    configured = obs.config().run_dir
    if configured:
        return Path(configured)
    if default is not None and obs.config().trace:
        return Path(default)
    return None
