"""Observability knobs, sourced from ``REPRO_OBS_*`` environment variables.

The whole obs layer is tuned by one picklable :class:`ObsConfig` so shard
worker processes inherit the parent's settings exactly (the same pattern
:class:`repro.perf.RenderCacheConfig` uses):

* ``REPRO_OBS_TRACE=1``    — enable structured tracing (spans + events).
  Off by default: with tracing off every ``span()``/``event()`` call is a
  shared no-op, so instrumented code costs nothing measurable (the obs
  benchmark gates this at <5% on the pipeline bench).
* ``REPRO_OBS_SAMPLE=0.1`` — fraction of *page-granularity* span/event
  records kept in the trace log.  Sampling is deterministic (keyed by the
  record's sample key, typically the domain), never random, so two runs of
  the same crawl keep the same records.  Metrics are never sampled — the
  run summary stays exact at any sample rate.
* ``REPRO_OBS_MAX_EVENTS=250000`` — hard cap on buffered trace records per
  process; past it, records are dropped (and counted) rather than growing
  memory or the log without bound.
* ``REPRO_OBS_DIR=path``   — default directory for run artifacts (manifest
  + trace log) when the caller does not pass one explicitly.
* ``REPRO_OBS_PROFILE=1``  — enable the wall-clock sampling profiler (a
  background thread snapshotting ``sys._current_frames``).  Off by
  default; exactly transparent when on (datasets and analyses are
  byte-identical either way, pinned by test).
* ``REPRO_OBS_PROFILE_HZ=19`` — profiler sampling frequency.  The default
  is a prime so the sampler never locks step with periodic work (the same
  reason perf tools default to 97/997 Hz).

Metrics (counters, gauges, histograms) are *always* on — they are a couple
of dict operations at page/request granularity, far below measurement
noise — only span/event recording is gated by ``trace``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["ObsConfig"]


def _truthy(raw: str) -> bool:
    return raw.strip().lower() not in ("", "0", "false", "off", "no")


@dataclass(frozen=True)
class ObsConfig:
    """Tuning knobs for tracing and the run event log (picklable)."""

    #: Master switch for span/event recording (metrics are always on).
    trace: bool = False
    #: Deterministic keep-fraction for page-granularity trace records.
    sample: float = 1.0
    #: Per-process cap on buffered trace records (drops are counted).
    max_events: int = 250_000
    #: Default run-artifact directory when no explicit one is given.
    run_dir: Optional[str] = None
    #: Master switch for the wall-clock sampling profiler.
    profile: bool = False
    #: Profiler sampling frequency (Hz); prime by default to avoid lockstep.
    profile_hz: float = 19.0

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None) -> "ObsConfig":
        env = os.environ if env is None else env
        kwargs: Dict[str, object] = {}
        raw = env.get("REPRO_OBS_TRACE")
        if raw is not None:
            kwargs["trace"] = _truthy(raw)
        raw = env.get("REPRO_OBS_SAMPLE")
        if raw is not None:
            try:
                kwargs["sample"] = min(1.0, max(0.0, float(raw)))
            except ValueError:
                pass
        raw = env.get("REPRO_OBS_MAX_EVENTS")
        if raw is not None:
            try:
                kwargs["max_events"] = max(0, int(raw))
            except ValueError:
                pass
        raw = env.get("REPRO_OBS_DIR")
        if raw:
            kwargs["run_dir"] = raw
        raw = env.get("REPRO_OBS_PROFILE")
        if raw is not None:
            kwargs["profile"] = _truthy(raw)
        raw = env.get("REPRO_OBS_PROFILE_HZ")
        if raw is not None:
            try:
                kwargs["profile_hz"] = min(1000.0, max(1.0, float(raw)))
            except ValueError:
                pass
        return cls(**kwargs)
