"""Run manifests: what exactly produced this dataset.

Every traced ``run_crawl``/``run_study`` writes a ``manifest.json`` next to
its trace log answering the questions a post-mortem always starts with:
which code (git describe), which configuration (stable config digest, stage
cache keys), which seed/scale, which shard plan, which environment knobs.
Collection is best-effort and dependency-free — a missing git binary or a
non-repo checkout degrades to ``null``, never an error.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["collect_manifest", "write_manifest", "load_manifest"]

MANIFEST_NAME = "manifest.json"
FORMAT = "repro-obs-manifest-v1"


def _git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of this checkout, or None."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None


def _repro_env() -> Dict[str, str]:
    """Every ``REPRO_*`` environment knob in effect for this run."""
    return {k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")}


def collect_manifest(
    label: str,
    config_digest: Optional[str] = None,
    seed: Optional[int] = None,
    shard_plan: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest dict for one run (JSON-able, best-effort)."""
    from repro.obs.config import ObsConfig

    manifest: Dict[str, Any] = {
        "format": FORMAT,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "argv": list(sys.argv),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "pid": os.getpid(),
        "git": _git_describe(),
        "config_digest": config_digest,
        "seed": seed,
        "shard_plan": shard_plan,
        "env": _repro_env(),
        "obs": ObsConfig.from_env().__dict__,
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(run_dir: Path, manifest: Dict[str, Any]) -> Path:
    """Write (or atomically rewrite) the run's ``manifest.json``."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / MANIFEST_NAME
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def load_manifest(run_dir: Path) -> Optional[Dict[str, Any]]:
    path = Path(run_dir) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
