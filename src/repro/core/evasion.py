"""§5.2-§5.3 — Evasion analyses.

* Serving-context analysis: which fingerprinting sites have canvases
  rendered by first-party-served scripts, subdomain-served scripts, or
  popular-CDN-served scripts (the blocklist-evasion surface).
* CNAME-cloak detection against the DNS zone (first-party URLs whose
  canonical name is another site).
* Ad-blocker impact (Table 2): compare a control crawl against crawls with
  blocking extensions.
* Render-twice inconsistency check prevalence (§5.3): sites where some
  canvas was generated and extracted at least twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.detection import DetectionOutcome, FingerprintDetector
from repro.crawler.crawl import CrawlDataset
from repro.net.cdn import is_cdn_url
from repro.net.dns import DNSZone
from repro.net.url import URL, URLError, same_site

__all__ = [
    "ServingContext",
    "analyze_serving_context",
    "site_serving_flags",
    "AdblockImpact",
    "compare_adblock_crawls",
    "render_twice_fraction",
]


@dataclass
class ServingContext:
    """§5.2's per-population site fractions."""

    fp_sites: Dict[str, int] = field(default_factory=lambda: {"top": 0, "tail": 0})
    first_party_sites: Dict[str, int] = field(default_factory=lambda: {"top": 0, "tail": 0})
    subdomain_sites: Dict[str, int] = field(default_factory=lambda: {"top": 0, "tail": 0})
    cdn_sites: Dict[str, int] = field(default_factory=lambda: {"top": 0, "tail": 0})
    cname_cloaked_sites: Dict[str, int] = field(default_factory=lambda: {"top": 0, "tail": 0})

    def fraction(self, counter: Mapping[str, int], population: str) -> float:
        total = self.fp_sites.get(population, 0)
        return counter.get(population, 0) / total if total else 0.0

    def first_party_fraction(self, population: str) -> float:
        return self.fraction(self.first_party_sites, population)

    def subdomain_fraction(self, population: str) -> float:
        return self.fraction(self.subdomain_sites, population)

    def cdn_fraction(self, population: str) -> float:
        return self.fraction(self.cdn_sites, population)

    def cname_fraction(self, population: str) -> float:
        return self.fraction(self.cname_cloaked_sites, population)


def site_serving_flags(
    domain: str, outcome: DetectionOutcome, dns: Optional[DNSZone] = None
) -> Tuple[bool, bool, bool, bool]:
    """(first_party, subdomain, cdn, cloaked) for one fingerprinting site."""
    site_home = f"https://{domain}/"
    first_party = subdomain = cdn = cloaked = False
    for extraction in outcome.fingerprintable:
        url_text = extraction.script_url
        if url_text is None:
            continue
        if "#inline" in url_text:
            first_party = True
            continue
        try:
            url = URL.parse(url_text)
        except URLError:
            continue
        if same_site(url_text, site_home):
            first_party = True
            if url.host != domain and url.host.endswith("." + domain):
                subdomain = True
            if dns is not None and dns.is_cloaked(url.host):
                cloaked = True
                subdomain = False  # cloaking, not genuine delegation
        if is_cdn_url(url):
            cdn = True
    return first_party, subdomain, cdn, cloaked


def analyze_serving_context(
    outcomes: Mapping[str, DetectionOutcome],
    populations: Mapping[str, str],
    dns: Optional[DNSZone] = None,
) -> ServingContext:
    """Classify each fingerprinting site by how its canvases' scripts are
    served relative to the site (first-party / subdomain / CDN / cloaked).

    Thin batch driver over
    :class:`repro.core.reducers.ServingContextReducer` — the streaming path
    and this one share a single code path.
    """
    from repro.core.reducers import ServingContextReducer

    reducer = ServingContextReducer(dns)
    for domain, outcome in outcomes.items():
        reducer.ingest_outcome(domain, populations.get(domain, "top"), outcome)
    return reducer.finalize()


@dataclass
class AdblockImpact:
    """One Table 2 row: canvases and FP-site counts for a crawl config."""

    label: str
    canvases: Dict[str, int]
    sites: Dict[str, int]


def _crawl_row(label: str, dataset: CrawlDataset, detector: FingerprintDetector) -> AdblockImpact:
    from repro.core.reducers import AdblockRowReducer

    reducer = AdblockRowReducer(label, detector)
    for obs in dataset.observations:
        reducer.ingest(obs)
    return reducer.finalize()


def compare_adblock_crawls(
    control: CrawlDataset,
    blocked_crawls: Mapping[str, CrawlDataset],
    detector: Optional[FingerprintDetector] = None,
) -> Tuple[AdblockImpact, ...]:
    """Build Table 2: control row plus one row per ad-blocker crawl."""
    detector = detector or FingerprintDetector()
    rows = [_crawl_row("Control", control, detector)]
    for label, dataset in blocked_crawls.items():
        rows.append(_crawl_row(label, dataset, detector))
    return tuple(rows)


def render_twice_fraction(outcomes: Mapping[str, DetectionOutcome]) -> float:
    """§5.3: fraction of FP sites with some canvas generated and extracted
    at least twice (the randomization-detection signature).

    Thin batch driver over :class:`repro.core.reducers.RenderTwiceReducer`.
    """
    from repro.core.reducers import RenderTwiceReducer

    reducer = RenderTwiceReducer()
    for domain, outcome in outcomes.items():
        reducer.ingest_outcome(domain, "top", outcome)
    return reducer.finalize()
