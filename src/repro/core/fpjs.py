"""§4.3.1 — Dissecting the FingerprintJS ecosystem.

All FingerprintJS deployments render the same test canvases, so clustering
lumps them together; the paper separates them using the script URL and the
script *content*: the commercial build probes extra surfaces (e.g. mathML)
the OSS build does not, and several ad-tech companies self-host the OSS
build on their own domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set, Tuple

from repro.core.detection import DetectionOutcome
from repro.core.records import SiteObservation
from repro.net.url import URL, URLError, registrable_domain

__all__ = ["FPJSBreakdown", "fpjs_breakdown", "site_fpjs_flavor", "ADTECH_HOST_NAMES"]

#: Registrable domains of known ad-tech self-hosters (paper §4.3.1).
ADTECH_HOST_NAMES: Tuple[Tuple[str, str], ...] = (
    ("aldata-media.com", "AIdata"),
    ("adskeeper.com", "adskeeper"),
    ("trafficjunky.net", "trafficjunky"),
    ("mgid.com", "MGID"),
    ("acint.net", "acint.net"),
)

#: Content markers of the commercial build (extra fingerprint surfaces).
_COMMERCIAL_MARKERS = ("__mathmlProbe", "__proVersion", "Fingerprint Pro")
_COMMERCIAL_URL_HINTS = ("fpnpmcdn.net", "fingerprintjs-pro")


@dataclass
class FPJSBreakdown:
    """Per-flavor site counts among FingerprintJS-attributed sites."""

    #: flavor -> {"top": n, "tail": n}; flavors: "commercial", each ad-tech
    #: name, and "oss" (self-hosted / bundled / CDN open-source).
    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add(self, flavor: str, population: str) -> None:
        row = self.counts.setdefault(flavor, {"top": 0, "tail": 0})
        row[population] = row.get(population, 0) + 1

    def get(self, flavor: str) -> Dict[str, int]:
        return self.counts.get(flavor, {"top": 0, "tail": 0})


def _classify_deployment(
    script_url: Optional[str], source: Optional[str]
) -> str:
    """Which FPJS flavor served this canvas?"""
    if source:
        if any(marker in source for marker in _COMMERCIAL_MARKERS):
            return "commercial"
    if script_url and "#inline" not in script_url:
        if any(hint in script_url for hint in _COMMERCIAL_URL_HINTS):
            return "commercial"
        try:
            host_site = registrable_domain(URL.parse(script_url).host)
        except URLError:
            return "oss"
        for domain, name in ADTECH_HOST_NAMES:
            if host_site == domain:
                return name
    if source:
        for _domain, name in ADTECH_HOST_NAMES:
            if name in source:
                return name
    return "oss"


def site_fpjs_flavor(
    observation: Optional[SiteObservation],
    outcome: DetectionOutcome,
    fpjs_hashes: Set[str],
) -> Optional[str]:
    """The FPJS deployment flavor of one site, or None when no FPJS canvas.

    Commercial evidence wins; then a named ad-tech host; else OSS.
    """
    matching = [e for e in outcome.fingerprintable if e.canvas_hash in fpjs_hashes]
    if not matching:
        return None
    flavors = set()
    for extraction in matching:
        source = None
        if observation is not None and extraction.script_url:
            source = observation.script_sources.get(extraction.script_url)
        flavors.add(_classify_deployment(extraction.script_url, source))
    if "commercial" in flavors:
        return "commercial"
    if flavors - {"oss"}:
        return sorted(flavors - {"oss"})[0]
    return "oss"


def fpjs_breakdown(
    observations: Mapping[str, SiteObservation],
    outcomes: Mapping[str, DetectionOutcome],
    populations: Mapping[str, str],
    fpjs_hashes: Set[str],
) -> FPJSBreakdown:
    """Classify every FingerprintJS-canvas site by deployment flavor.

    ``fpjs_hashes`` is the vendor's harvested canvas signature.  For each
    site rendering one of those canvases, the generating script's URL and
    recorded source decide the flavor (commercial markers win; ad-tech hosts
    next; everything else is open-source self-hosting).

    Shares :func:`site_fpjs_flavor` with the streaming
    :class:`repro.core.reducers.FpjsReducer` — one classification path,
    two drivers.
    """
    breakdown = FPJSBreakdown()
    for domain, outcome in outcomes.items():
        flavor = site_fpjs_flavor(observations.get(domain), outcome, fpjs_hashes)
        if flavor is not None:
            breakdown.add(flavor, populations.get(domain, "top"))
    return breakdown
