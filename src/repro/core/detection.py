"""§3.2 — Detecting canvas fingerprinting.

All ``toDataURL`` extractions are recorded, but not all generated canvases
are fingerprints.  Following the paper (adapting Englehardt & Narayanan's
heuristics), an extraction is *fingerprintable* unless:

1. it was extracted in a lossy format (JPEG/WebP) — compression destroys
   the sub-pixel differences fingerprinting needs, and excluding WebP also
   excludes WebP-support compatibility checks;
2. the canvas is small (< 16x16 px) — too little complexity to fingerprint,
   and this conveniently excludes emoji compatibility tests;
3. the extracting script also invoked animation-associated methods
   (``save``, ``restore``, …) on the page.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.records import ANIMATION_METHODS, CanvasExtraction, SiteObservation

__all__ = ["ExclusionReason", "DetectionOutcome", "FingerprintDetector", "MIN_CANVAS_SIZE"]

#: Canvases strictly smaller than this (in either dimension) are excluded.
MIN_CANVAS_SIZE = 16


class ExclusionReason(str, enum.Enum):
    LOSSY_FORMAT = "lossy-format"
    TOO_SMALL = "too-small"
    ANIMATION_SCRIPT = "animation-script"


@dataclass
class DetectionOutcome:
    """Detection result for one site's observations."""

    domain: str
    fingerprintable: List[CanvasExtraction] = field(default_factory=list)
    excluded: List[Tuple[CanvasExtraction, ExclusionReason]] = field(default_factory=list)

    @property
    def total_extractions(self) -> int:
        return len(self.fingerprintable) + len(self.excluded)

    @property
    def is_fingerprinting_site(self) -> bool:
        """Did the site extract at least one fingerprintable canvas?"""
        return bool(self.fingerprintable)

    @property
    def fully_excluded(self) -> bool:
        """Extracted canvases, but every one was excluded (Appendix A.2)."""
        return bool(self.excluded) and not self.fingerprintable

    def excluded_by(self, reason: ExclusionReason) -> List[CanvasExtraction]:
        return [e for e, r in self.excluded if r is reason]


class FingerprintDetector:
    """Applies the three §3.2 filters to site observations."""

    def __init__(self, min_size: int = MIN_CANVAS_SIZE) -> None:
        self.min_size = min_size

    def classify_extraction(
        self, extraction: CanvasExtraction, animation_scripts: Set[Optional[str]]
    ) -> Optional[ExclusionReason]:
        """Why this extraction is excluded, or None if fingerprintable."""
        if not extraction.is_lossless:
            return ExclusionReason.LOSSY_FORMAT
        if extraction.width < self.min_size or extraction.height < self.min_size:
            return ExclusionReason.TOO_SMALL
        if extraction.script_url in animation_scripts:
            return ExclusionReason.ANIMATION_SCRIPT
        return None

    def detect(self, observation: SiteObservation) -> DetectionOutcome:
        """Classify every extraction recorded on one site."""
        animation_scripts: Set[Optional[str]] = set()
        for call in observation.calls:
            if call.method in ANIMATION_METHODS:
                animation_scripts.add(call.script_url)

        outcome = DetectionOutcome(domain=observation.domain)
        for extraction in observation.extractions:
            reason = self.classify_extraction(extraction, animation_scripts)
            if reason is None:
                outcome.fingerprintable.append(extraction)
            else:
                outcome.excluded.append((extraction, reason))
        return outcome

    def detect_all(self, observations: Iterable[SiteObservation]) -> Dict[str, DetectionOutcome]:
        """Detection outcomes for a whole crawl, keyed by domain.

        Thin batch driver over :class:`repro.core.reducers.DetectionReducer`
        — the streaming path and this one share a single code path.  Note
        the reducer records *successful* observations only, matching how
        the pipeline has always fed this method (``dataset.successful()``).
        """
        from repro.core.reducers import DetectionReducer

        reducer = DetectionReducer(self)
        for obs in observations:
            reducer.ingest(obs)
        return reducer.finalize()

    @staticmethod
    def fingerprintable_fraction(outcomes: Iterable[DetectionOutcome]) -> float:
        """Fraction of all extracted canvases that are fingerprintable
        (the paper reports 83%)."""
        kept = 0
        total = 0
        for outcome in outcomes:
            kept += len(outcome.fingerprintable)
            total += outcome.total_extractions
        return kept / total if total else 0.0
