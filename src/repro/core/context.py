"""§5.1 / Table 4 — Tracking and advertising context via blocklists.

For each fingerprintable canvas, check whether the script that generated it
is covered by EasyList, EasyPrivacy (static adblockparser check with
resource type ``script``, ignoring dynamic context) or the Disconnect list
(domain containment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.blocklists.disconnect import DisconnectList
from repro.blocklists.matcher import RuleMatcher
from repro.core.detection import DetectionOutcome

__all__ = [
    "BlocklistContext",
    "CoverageCounts",
    "analyze_blocklist_context",
    "blocklist_flags_for_url",
]


@dataclass
class CoverageCounts:
    """Canvas counts per population for one coverage category."""

    top: int = 0
    tail: int = 0

    def add(self, population: str) -> None:
        if population == "top":
            self.top += 1
        else:
            self.tail += 1

    def fraction(self, totals: "CoverageCounts") -> Tuple[float, float]:
        return (
            self.top / totals.top if totals.top else 0.0,
            self.tail / totals.tail if totals.tail else 0.0,
        )


@dataclass
class BlocklistContext:
    """Table 4: per-list canvas coverage."""

    totals: CoverageCounts = field(default_factory=CoverageCounts)
    easylist: CoverageCounts = field(default_factory=CoverageCounts)
    easyprivacy: CoverageCounts = field(default_factory=CoverageCounts)
    disconnect: CoverageCounts = field(default_factory=CoverageCounts)
    any_list: CoverageCounts = field(default_factory=CoverageCounts)
    all_lists: CoverageCounts = field(default_factory=CoverageCounts)

    def rows(self) -> Dict[str, CoverageCounts]:
        return {
            "EasyList": self.easylist,
            "EasyPrivacy": self.easyprivacy,
            "Disconnect": self.disconnect,
            "Any": self.any_list,
            "All": self.all_lists,
        }


def blocklist_flags_for_url(
    url: Optional[str],
    easylist: RuleMatcher,
    easyprivacy: RuleMatcher,
    disconnect: DisconnectList,
) -> Tuple[bool, bool, bool]:
    """(easylist, easyprivacy, disconnect) coverage for one script URL.

    Inline scripts (no URL) can never match — exactly why first-party
    bundling defeats URL/DNS-based detection (§5.2).
    """
    if url is None or "#inline" in url:
        return (False, False, False)
    return (
        easylist.listed(url, "script"),
        easyprivacy.listed(url, "script"),
        disconnect.contains_url(url),
    )


def analyze_blocklist_context(
    outcomes: Mapping[str, DetectionOutcome],
    populations: Mapping[str, str],
    easylist: RuleMatcher,
    easyprivacy: RuleMatcher,
    disconnect: DisconnectList,
) -> BlocklistContext:
    """Classify every fingerprintable canvas by its script's list coverage.

    Thin batch driver over
    :class:`repro.core.reducers.BlocklistContextReducer` — the streaming
    path and this one share a single code path.
    """
    from repro.core.reducers import BlocklistContextReducer

    reducer = BlocklistContextReducer(easylist, easyprivacy, disconnect)
    for domain, outcome in outcomes.items():
        reducer.ingest_outcome(domain, populations.get(domain, "top"), outcome)
    return reducer.finalize()
