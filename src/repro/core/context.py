"""§5.1 / Table 4 — Tracking and advertising context via blocklists.

For each fingerprintable canvas, check whether the script that generated it
is covered by EasyList, EasyPrivacy (static adblockparser check with
resource type ``script``, ignoring dynamic context) or the Disconnect list
(domain containment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.blocklists.disconnect import DisconnectList
from repro.blocklists.matcher import RuleMatcher
from repro.core.detection import DetectionOutcome

__all__ = ["BlocklistContext", "CoverageCounts", "analyze_blocklist_context"]


@dataclass
class CoverageCounts:
    """Canvas counts per population for one coverage category."""

    top: int = 0
    tail: int = 0

    def add(self, population: str) -> None:
        if population == "top":
            self.top += 1
        else:
            self.tail += 1

    def fraction(self, totals: "CoverageCounts") -> Tuple[float, float]:
        return (
            self.top / totals.top if totals.top else 0.0,
            self.tail / totals.tail if totals.tail else 0.0,
        )


@dataclass
class BlocklistContext:
    """Table 4: per-list canvas coverage."""

    totals: CoverageCounts = field(default_factory=CoverageCounts)
    easylist: CoverageCounts = field(default_factory=CoverageCounts)
    easyprivacy: CoverageCounts = field(default_factory=CoverageCounts)
    disconnect: CoverageCounts = field(default_factory=CoverageCounts)
    any_list: CoverageCounts = field(default_factory=CoverageCounts)
    all_lists: CoverageCounts = field(default_factory=CoverageCounts)

    def rows(self) -> Dict[str, CoverageCounts]:
        return {
            "EasyList": self.easylist,
            "EasyPrivacy": self.easyprivacy,
            "Disconnect": self.disconnect,
            "Any": self.any_list,
            "All": self.all_lists,
        }


def analyze_blocklist_context(
    outcomes: Mapping[str, DetectionOutcome],
    populations: Mapping[str, str],
    easylist: RuleMatcher,
    easyprivacy: RuleMatcher,
    disconnect: DisconnectList,
) -> BlocklistContext:
    """Classify every fingerprintable canvas by its script's list coverage.

    Inline scripts (no URL) can never match — exactly why first-party
    bundling defeats URL/DNS-based detection (§5.2).
    """
    context = BlocklistContext()
    # Memoize per script URL: crawls see the same URLs thousands of times.
    memo: Dict[Optional[str], Tuple[bool, bool, bool]] = {}

    for domain, outcome in outcomes.items():
        population = populations.get(domain, "top")
        for extraction in outcome.fingerprintable:
            url = extraction.script_url
            flags = memo.get(url)
            if flags is None:
                if url is None or "#inline" in url:
                    flags = (False, False, False)
                else:
                    flags = (
                        easylist.listed(url, "script"),
                        easyprivacy.listed(url, "script"),
                        disconnect.contains_url(url),
                    )
                memo[url] = flags
            in_el, in_ep, in_dc = flags
            context.totals.add(population)
            if in_el:
                context.easylist.add(population)
            if in_ep:
                context.easyprivacy.add(population)
            if in_dc:
                context.disconnect.add(population)
            if in_el or in_ep or in_dc:
                context.any_list.add(population)
            if in_el and in_ep and in_dc:
                context.all_lists.add(population)
    return context
