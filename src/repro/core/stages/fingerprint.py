"""Content fingerprints for stage cache keys.

A stage's cache key must change exactly when its output could change:
different crawl targets, a different browser profile, different blocklists,
a different synthetic network — and nothing else (in particular, *not* the
worker count used to execute it).  This module turns each of those inputs
into a deterministic JSON payload and hashes it.

The network fingerprint is genuinely content-addressed: it walks every DNS
record and every served resource body, so two worlds built from the same
scale and seed hash identically while any change to a script or route
invalidates exactly the crawl stages that would observe it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from enum import Enum
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "stable_hash",
    "fingerprint_text",
    "fingerprint_network",
    "fingerprint_profile",
    "fingerprint_targets",
    "fingerprint_policy",
    "fingerprint_vendor_knowledge",
    "fingerprint_dns",
]


def _canonical(value: Any) -> Any:
    """Reduce a value to canonical JSON-able data (deterministic ordering)."""
    if isinstance(value, Enum):
        return value.value
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _canonical(v) for k, v in sorted(asdict(value).items())}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if isinstance(value, bytes):
        return hashlib.sha256(value).hexdigest()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}: {value!r}")


def stable_hash(payload: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def fingerprint_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_targets(targets: Sequence[Any]) -> str:
    """Fingerprint a crawl target list (order-sensitive: order is the merge order)."""
    return stable_hash([[t.domain, t.rank, t.population] for t in targets])


def fingerprint_dns(dns: Any) -> str:
    return stable_hash(
        [[r.name, r.rtype.value, r.value] for r in dns.records()]
    )


def fingerprint_network(network: Any) -> str:
    """Content-address a (possibly fault-wrapped) synthetic network.

    Covers the DNS zone, every server's routes (path, status, content type,
    body hash) and — for a :class:`~repro.net.faults.FaultyNetwork` — the
    fault configuration and seed, which change what a crawl observes just as
    surely as the content does.
    """
    payload: dict = {}
    injector = getattr(network, "injector", None)
    inner = getattr(network, "inner", None)
    if injector is not None and inner is not None:
        payload["faults"] = {"config": injector.config, "seed": injector.seed}
        network = inner
    payload["dns"] = fingerprint_dns(network.dns)
    payload["servers"] = {
        host: [
            [path, res.status, res.content_type, fingerprint_text(res.body)]
            for path, res in server.resources()
        ]
        for host, server in network.servers().items()
    }
    return stable_hash(payload)


def _fingerprint_matchers(matchers: Iterable[Any]) -> list:
    return [
        {"name": matcher.name, "rules": stable_hash(
            sorted(r.raw for r in list(matcher.block_rules) + list(matcher.exception_rules))
        )}
        for matcher in matchers
    ]


def fingerprint_profile(profile: Optional[Any]) -> Any:
    """Fingerprint a :class:`~repro.browser.profile.BrowserProfile` (or None)."""
    if profile is None:
        return None
    extensions = []
    for extension in profile.extensions:
        entry: dict = {"name": extension.name}
        if hasattr(extension, "matchers"):
            entry["matchers"] = _fingerprint_matchers(extension.matchers)
            entry["extra_matchers"] = _fingerprint_matchers(
                getattr(extension, "extra_matchers", ())
            )
            entry["first_party_exception"] = getattr(
                extension, "honor_first_party_exception", True
            )
        extensions.append(entry)
    return {
        "device": profile.device,
        "privacy_mode": profile.privacy_mode,
        "expose_webdriver": profile.expose_webdriver,
        "session_seed": profile.session_seed,
        "extensions": extensions,
    }


def fingerprint_policy(policy: Optional[Any]) -> Any:
    """Fingerprint a RetryPolicy / PageBudget (plain frozen dataclasses)."""
    return policy


def fingerprint_vendor_knowledge(knowledge: Sequence[Any]) -> str:
    return stable_hash(list(knowledge))
