"""The paper's methodology decomposed into typed, cacheable stages.

Each monolith step of the old ``run_study`` becomes one :class:`Stage`:

=================  ==========================================  ==========
stage              produces                                    paper
=================  ==========================================  ==========
crawl.control      control :class:`CrawlDataset`               §3.1
detect             ``{domain: DetectionOutcome}``              §3.2
cluster            ``{hash: CanvasCluster}``                   §4.2
prevalence         :class:`PrevalenceReport`                   §4.1
reach              :class:`ReachReport`                        §4.2
signatures         vendor :class:`VendorSignature` list        A.3
attribution        attributions + vendor count tables          §4.3
blocklist_context  :class:`BlocklistContext` (conditional)     §5.1
serving_context    :class:`ServingContext`                     §5.2
crawl.abp          Adblock Plus :class:`CrawlDataset`          Table 2
crawl.ubo          uBlock Origin :class:`CrawlDataset`         Table 2
adblock_rows       ``(AdblockImpact, ...)``                    Table 2
cross_machine      bool consistency verdict (conditional)      §3.1
=================  ==========================================  ==========

Crawl stages run through :func:`~repro.crawler.shards.run_sharded_crawl`,
so ``jobs`` in the :class:`StudyContext` parallelizes them — deliberately
*outside* every cache key, because worker count cannot change the artifact.
Analysis stages are pure functions of their inputs, so their cache keys
chain off the crawl keys and a warm cache re-runs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.blocklists.matcher import RuleMatcher
from repro.browser.extensions import AdBlockerExtension
from repro.browser.profile import BrowserProfile
from repro.canvas.device import APPLE_M1, DeviceProfile, INTEL_UBUNTU
from repro.core.attribution import VendorAttributor
from repro.core.clustering import cluster_canvases
from repro.core.context import analyze_blocklist_context
from repro.core.detection import FingerprintDetector
from repro.core.evasion import analyze_serving_context, compare_adblock_crawls
from repro.core.prevalence import compute_prevalence
from repro.core.reach import compute_reach
from repro.core.stages.cache import StageCache
from repro.core.stages.fingerprint import (
    fingerprint_dns,
    fingerprint_network,
    fingerprint_policy,
    fingerprint_profile,
    fingerprint_targets,
    fingerprint_text,
    fingerprint_vendor_knowledge,
    stable_hash,
)
from repro.core.stages.graph import StageGraph
from repro.core.stages.stage import Stage
from repro.crawler.crawl import CrawlTarget
from repro.crawler.resilience import PageBudget, RetryPolicy
from repro.crawler.shards import run_sharded_crawl
from repro.crawler.supervisor import SupervisorConfig

__all__ = ["StudyContext", "build_study_graph", "STAGE_DOCS"]

#: One-line description per stage name (used by ``--stage`` help and docs).
STAGE_DOCS = {
    "crawl.control": "control crawl of the top+tail target list (§3.1)",
    "detect": "fingerprintability detection over successful pages (§3.2)",
    "cluster": "canvas-equality clustering (§4.2)",
    "prevalence": "prevalence per population (§4.1)",
    "reach": "cluster reach / aggregation providers (§4.2)",
    "signatures": "vendor ground-truth harvesting (A.3)",
    "attribution": "vendor attribution + per-population counts (§4.3)",
    "blocklist_context": "blocklist coverage of fingerprinting scripts (§5.1)",
    "serving_context": "first/third-party serving context + evasions (§5.2)",
    "crawl.abp": "recrawl under Adblock Plus (Table 2)",
    "crawl.ubo": "recrawl under uBlock Origin (Table 2)",
    "adblock_rows": "ad-blocker impact comparison (Table 2)",
    "cross_machine": "cross-device consistency validation (§3.1)",
}


@dataclass
class StudyContext:
    """Everything ``run_study`` was parameterized by, plus execution knobs.

    The execution knobs (``jobs``, ``checkpoint_dir``) shape *how* stages
    run, never *what* they produce — they are excluded from every
    ``config_fingerprint`` on purpose.
    """

    network: Any
    targets: Sequence[CrawlTarget]
    vendor_knowledge: Sequence[Any]
    easylist_text: str = ""
    easyprivacy_text: str = ""
    disconnect: Any = None
    ubo_extra_text: str = ""
    dns: Any = None
    include_adblock_crawls: bool = True
    include_cross_machine: bool = False
    cross_machine_sample: int = 200
    retry_policy: Optional[RetryPolicy] = None
    page_budget: Optional[PageBudget] = None
    detector: FingerprintDetector = field(default_factory=FingerprintDetector)
    cross_machine_devices: Tuple[DeviceProfile, ...] = (INTEL_UBUNTU, APPLE_M1)
    # -- execution knobs (never fingerprinted) --------------------------------
    jobs: int = 1
    checkpoint_dir: Optional[Path] = None
    #: Opt-in shard supervision (heartbeats, crash re-dispatch, quarantine).
    #: An execution knob like ``jobs``: a no-fault supervised crawl produces
    #: the identical artifact, and a faulted one degrades the *data* (visible
    #: as ``quarantined:*`` rows), not the cache key.
    supervisor: Optional[SupervisorConfig] = None

    _network_fp: Optional[str] = field(default=None, repr=False, compare=False)

    def network_fingerprint(self) -> str:
        """Content hash of the synthetic network, computed once per run."""
        if self._network_fp is None:
            self._network_fp = fingerprint_network(self.network)
        return self._network_fp

    # -- browser profiles, built exactly as the monolithic pipeline did -------

    def control_profile(self) -> BrowserProfile:
        return BrowserProfile(device=INTEL_UBUNTU)

    def abp_profile(self) -> BrowserProfile:
        easylist = RuleMatcher.from_text(self.easylist_text, "easylist")
        abp = AdBlockerExtension("Adblock Plus", [easylist])
        return BrowserProfile(device=INTEL_UBUNTU, extensions=(abp,))

    def ubo_profile(self) -> BrowserProfile:
        easylist = RuleMatcher.from_text(self.easylist_text, "easylist")
        extra = []
        if self.ubo_extra_text:
            extra.append(RuleMatcher.from_text(self.ubo_extra_text, "ubo-extra"))
        ubo = AdBlockerExtension("UBlock Origin", [easylist], extra_matchers=extra)
        return BrowserProfile(device=INTEL_UBUNTU, extensions=(ubo,))

    # -- which optional stages apply (the monolith's conditionals verbatim) ---

    @property
    def wants_blocklist_context(self) -> bool:
        return bool(
            self.easylist_text and self.easyprivacy_text and self.disconnect is not None
        )

    @property
    def wants_adblock_crawls(self) -> bool:
        return bool(self.include_adblock_crawls and self.easylist_text)


class CrawlStage(Stage):
    """A sharded (optionally parallel, checkpointed) crawl of the target list."""

    artifact = "dataset"

    def __init__(self, name: str, profile_attr: str, label: str) -> None:
        self.name = name
        self._profile_attr = profile_attr
        self.label = label

    def _profile(self, ctx: StudyContext) -> BrowserProfile:
        return getattr(ctx, self._profile_attr)()

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return {
            "network": ctx.network_fingerprint(),
            "targets": fingerprint_targets(ctx.targets),
            "profile": fingerprint_profile(self._profile(ctx)),
            "label": self.label,
            "retry": fingerprint_policy(ctx.retry_policy),
            "budget": fingerprint_policy(ctx.page_budget),
        }

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        checkpoint_dir = None
        if ctx.checkpoint_dir is not None:
            # Namespace shard checkpoints by config so two crawls that share
            # a label but differ in targets/profile/network never resume
            # from each other's partials.
            namespace = stable_hash(self.config_fingerprint(ctx))[:16]
            checkpoint_dir = Path(ctx.checkpoint_dir) / namespace
        return run_sharded_crawl(
            ctx.network,
            ctx.targets,
            profile=self._profile(ctx),
            label=self.label,
            jobs=ctx.jobs,
            checkpoint_dir=checkpoint_dir,
            retry_policy=ctx.retry_policy,
            page_budget=ctx.page_budget,
            supervisor=ctx.supervisor,
        )


class DetectStage(Stage):
    """§3.2 detection over every successfully crawled page."""

    name = "detect"
    inputs = ("crawl.control",)

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return {"min_size": ctx.detector.min_size}

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        control = inputs["crawl.control"]
        return ctx.detector.detect_all(control.successful())


class ClusterStage(Stage):
    """§4.2 canvas-equality clustering."""

    name = "cluster"
    inputs = ("crawl.control", "detect")

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        control = inputs["crawl.control"]
        return cluster_canvases(inputs["detect"], control.populations())


class PrevalenceStage(Stage):
    """§4.1 prevalence per population."""

    name = "prevalence"
    inputs = ("crawl.control", "detect")

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        return compute_prevalence(inputs["crawl.control"], inputs["detect"])


class ReachStage(Stage):
    """§4.2 reach of each cluster across populations."""

    name = "reach"
    inputs = ("crawl.control", "detect", "cluster", "prevalence")

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        control = inputs["crawl.control"]
        outcomes = inputs["detect"]
        populations = control.populations()
        fp_top = {
            d
            for d, o in outcomes.items()
            if o.is_fingerprinting_site and populations[d] == "top"
        }
        fp_tail = {
            d
            for d, o in outcomes.items()
            if o.is_fingerprinting_site and populations[d] == "tail"
        }
        return compute_reach(
            inputs["cluster"], fp_top, fp_tail, inputs["prevalence"].top.sites_successful
        )


class SignaturesStage(Stage):
    """A.3 vendor ground-truth harvesting (crawls demo and customer pages)."""

    name = "signatures"
    inputs = ("crawl.control",)

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return {
            "network": ctx.network_fingerprint(),
            "vendors": fingerprint_vendor_knowledge(ctx.vendor_knowledge),
            "min_size": ctx.detector.min_size,
        }

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        from repro.core.pipeline import harvest_vendor_signatures

        return harvest_vendor_signatures(
            ctx.network, ctx.vendor_knowledge, inputs["crawl.control"]
        )


class AttributionStage(Stage):
    """§4.3 attribution plus the per-population vendor count tables."""

    name = "attribution"
    inputs = ("crawl.control", "detect", "signatures")

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        control = inputs["crawl.control"]
        outcomes = inputs["detect"]
        attributor = VendorAttributor(inputs["signatures"])
        attributions = attributor.attribute_all(control.by_domain(), outcomes)
        populations = control.populations()
        return {
            "attributions": attributions,
            "vendor_counts": attributor.vendor_site_counts(attributions, populations),
            "vendor_totals": attributor.attributed_site_totals(attributions, populations),
        }


class BlocklistContextStage(Stage):
    """§5.1 blocklist coverage (only when all three lists are supplied)."""

    name = "blocklist_context"
    inputs = ("crawl.control", "detect")

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        disconnect = ctx.disconnect
        return {
            "easylist": fingerprint_text(ctx.easylist_text),
            "easyprivacy": fingerprint_text(ctx.easyprivacy_text),
            "disconnect": stable_hash(disconnect.to_json()) if disconnect is not None else None,
        }

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        control = inputs["crawl.control"]
        return analyze_blocklist_context(
            inputs["detect"],
            control.populations(),
            RuleMatcher.from_text(ctx.easylist_text, "easylist"),
            RuleMatcher.from_text(ctx.easyprivacy_text, "easyprivacy"),
            ctx.disconnect,
        )


class ServingContextStage(Stage):
    """§5.2 first/third-party serving context and evasive delivery."""

    name = "serving_context"
    inputs = ("crawl.control", "detect")

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return {"dns": fingerprint_dns(ctx.dns) if ctx.dns is not None else None}

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        control = inputs["crawl.control"]
        return analyze_serving_context(
            inputs["detect"], control.populations(), dns=ctx.dns
        )


class AdblockCompareStage(Stage):
    """Table 2: canvas activity under each ad blocker vs the control crawl."""

    name = "adblock_rows"
    inputs = ("crawl.control", "crawl.abp", "crawl.ubo")

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return {"min_size": ctx.detector.min_size}

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        return compare_adblock_crawls(
            inputs["crawl.control"],
            {
                "Adblock Plus": inputs["crawl.abp"],
                "UBlock Origin": inputs["crawl.ubo"],
            },
            ctx.detector,
        )


class CrossMachineStage(Stage):
    """§3.1 cross-device consistency over a sample of the target list."""

    name = "cross_machine"

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        sample = ctx.targets[: ctx.cross_machine_sample]
        return {
            "network": ctx.network_fingerprint(),
            "targets": fingerprint_targets(sample),
            "devices": list(ctx.cross_machine_devices),
            "min_size": ctx.detector.min_size,
            "retry": fingerprint_policy(ctx.retry_policy),
            "budget": fingerprint_policy(ctx.page_budget),
        }

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        from repro.core.pipeline import validate_cross_machine

        return validate_cross_machine(
            ctx.network,
            ctx.targets[: ctx.cross_machine_sample],
            ctx.detector,
            devices=ctx.cross_machine_devices,
            retry_policy=ctx.retry_policy,
            page_budget=ctx.page_budget,
            jobs=ctx.jobs,
            supervisor=ctx.supervisor,
        )


def build_study_graph(
    ctx: StudyContext, cache: Optional[StageCache] = None
) -> StageGraph:
    """Assemble the stage graph for a context.

    Optional stages (blocklist context, ad-blocker recrawls, cross-machine
    validation) are included exactly when the monolithic pipeline would have
    run them, so the graph's artifact set mirrors the old control flow.
    """
    stages = [
        CrawlStage("crawl.control", "control_profile", "control"),
        DetectStage(),
        ClusterStage(),
        PrevalenceStage(),
        ReachStage(),
        SignaturesStage(),
        AttributionStage(),
        ServingContextStage(),
    ]
    if ctx.wants_blocklist_context:
        stages.append(BlocklistContextStage())
    if ctx.wants_adblock_crawls:
        stages.append(CrawlStage("crawl.abp", "abp_profile", "abp"))
        stages.append(CrawlStage("crawl.ubo", "ubo_profile", "ubo"))
        stages.append(AdblockCompareStage())
    if ctx.include_cross_machine:
        stages.append(CrossMachineStage())
    return StageGraph(stages, cache=cache)
