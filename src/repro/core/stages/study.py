"""The paper's methodology decomposed into typed, cacheable stages.

Each monolith step of the old ``run_study`` becomes one :class:`Stage`:

=================  ==========================================  ==========
stage              produces                                    paper
=================  ==========================================  ==========
crawl.control      control :class:`CrawlDataset`               §3.1
reduce             merged :class:`AnalysisBundle` of partials  §3.2-§4.2
detect             ``{domain: DetectionOutcome}``              §3.2
cluster            ``{hash: CanvasCluster}``                   §4.2
prevalence         :class:`PrevalenceReport`                   §4.1
reach              :class:`ReachReport`                        §4.2
signatures         vendor :class:`VendorSignature` list        A.3
attribution        attributions + vendor count tables          §4.3
blocklist_context  :class:`BlocklistContext` (conditional)     §5.1
serving_context    :class:`ServingContext`                     §5.2
crawl.abp          Adblock Plus :class:`CrawlDataset`          Table 2
crawl.ubo          uBlock Origin :class:`CrawlDataset`         Table 2
adblock_rows       ``(AdblockImpact, ...)``                    Table 2
cross_machine      bool consistency verdict (conditional)      §3.1
=================  ==========================================  ==========

Crawl stages run through :func:`~repro.crawler.shards.run_sharded_crawl`,
so ``jobs`` in the :class:`StudyContext` parallelizes them — deliberately
*outside* every cache key, because worker count cannot change the artifact.

Since the streaming-reducer refactor the observation-heavy analyses
(detection, clustering, prevalence, reach, render-twice) flow through one
:class:`ReduceStage`: crawl workers fold their shard's observations into an
:class:`~repro.core.reducers.AnalysisBundle` partial as pages land and ship
it home with the crawl records (no cache), or — with a ``cache_dir`` — the
reduce stage folds the dataset through *block-level* partial cache entries,
so appending sites to a study re-ingests only the new blocks and re-merges
(see ``docs/analysis-architecture.md``).  The downstream analysis stages
finalize bundle members, so their cache keys chain off the reduce key and a
warm cache re-runs nothing.  Blocklist/serving context deliberately stay
*outside* the bundle's cache identity: changing a blocklist or the DNS zone
re-runs only those stages, never detection or clustering.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from repro import obs as obs_layer
from repro.blocklists.matcher import RuleMatcher
from repro.browser.extensions import AdBlockerExtension
from repro.browser.profile import BrowserProfile
from repro.canvas.device import APPLE_M1, DeviceProfile, INTEL_UBUNTU
from repro.core.attribution import VendorAttributor
from repro.core.context import analyze_blocklist_context
from repro.core.detection import FingerprintDetector
from repro.core.evasion import analyze_serving_context, compare_adblock_crawls
from repro.core.reducers import AnalysisBundle, AnalysisFold, BundleSpec
from repro.core.stages.cache import StageCache
from repro.core.stages.fingerprint import (
    fingerprint_dns,
    fingerprint_network,
    fingerprint_policy,
    fingerprint_profile,
    fingerprint_targets,
    fingerprint_text,
    fingerprint_vendor_knowledge,
    stable_hash,
)
from repro.core.stages.graph import StageGraph
from repro.core.stages.stage import Stage
from repro.crawler.crawl import CrawlTarget
from repro.crawler.resilience import PageBudget, RetryPolicy
from repro.crawler.shards import run_sharded_crawl
from repro.crawler.supervisor import SupervisorConfig

__all__ = ["StudyContext", "build_study_graph", "control_bundle_spec", "STAGE_DOCS"]

#: One-line description per stage name (used by ``--stage`` help and docs).
STAGE_DOCS = {
    "crawl.control": "control crawl of the top+tail target list (§3.1)",
    "reduce": "merge streaming per-shard analysis partials (§3.2-§4.2)",
    "detect": "fingerprintability detection over successful pages (§3.2)",
    "cluster": "canvas-equality clustering (§4.2)",
    "prevalence": "prevalence per population (§4.1)",
    "reach": "cluster reach / aggregation providers (§4.2)",
    "signatures": "vendor ground-truth harvesting (A.3)",
    "attribution": "vendor attribution + per-population counts (§4.3)",
    "blocklist_context": "blocklist coverage of fingerprinting scripts (§5.1)",
    "serving_context": "first/third-party serving context + evasions (§5.2)",
    "crawl.abp": "recrawl under Adblock Plus (Table 2)",
    "crawl.ubo": "recrawl under uBlock Origin (Table 2)",
    "adblock_rows": "ad-blocker impact comparison (Table 2)",
    "cross_machine": "cross-device consistency validation (§3.1)",
    "static": "static script verdicts + static/dynamic cross-validation",
}


@dataclass
class StudyContext:
    """Everything ``run_study`` was parameterized by, plus execution knobs.

    The execution knobs (``jobs``, ``checkpoint_dir``) shape *how* stages
    run, never *what* they produce — they are excluded from every
    ``config_fingerprint`` on purpose.
    """

    network: Any
    targets: Sequence[CrawlTarget]
    vendor_knowledge: Sequence[Any]
    easylist_text: str = ""
    easyprivacy_text: str = ""
    disconnect: Any = None
    ubo_extra_text: str = ""
    dns: Any = None
    include_adblock_crawls: bool = True
    include_cross_machine: bool = False
    cross_machine_sample: int = 200
    retry_policy: Optional[RetryPolicy] = None
    page_budget: Optional[PageBudget] = None
    detector: FingerprintDetector = field(default_factory=FingerprintDetector)
    cross_machine_devices: Tuple[DeviceProfile, ...] = (INTEL_UBUNTU, APPLE_M1)
    # -- execution knobs (never fingerprinted) --------------------------------
    jobs: int = 1
    checkpoint_dir: Optional[Path] = None
    #: Opt-in shard supervision (heartbeats, crash re-dispatch, quarantine).
    #: An execution knob like ``jobs``: a no-fault supervised crawl produces
    #: the identical artifact, and a faulted one degrades the *data* (visible
    #: as ``quarantined:*`` rows), not the cache key.
    supervisor: Optional[SupervisorConfig] = None
    #: Script sources compiled into every crawl worker's warm JS cache before
    #: its first page load (typically ``webgen.vendors.prewarm_sources()``,
    #: passed as plain strings so ``core`` never imports ``webgen``).  Purely
    #: an execution knob: compilation is exactly transparent, so prewarming
    #: changes page-load latency and ``js.cache`` counters, never the dataset.
    js_prewarm: Optional[Sequence[str]] = None
    #: Crawl-time static triage (skip execution of provably inert scripts).
    #: An execution knob like ``jobs``: triage-on datasets are byte-identical
    #: to triage-off, so it never enters a cache key.  ``None`` honours
    #: ``REPRO_JS_STATIC_TRIAGE``.
    static_triage: Optional[bool] = None

    _network_fp: Optional[str] = field(default=None, repr=False, compare=False)
    #: Crawl-stage name -> merged AnalysisBundle folded live during the crawl
    #: (workers ship partials home with their records).  Purely an execution
    #: shortcut: the reduce stage pops it instead of re-ingesting the dataset,
    #: and the artifact is bit-identical either way.
    _live_bundles: Dict[str, Any] = field(default_factory=dict, repr=False, compare=False)

    def network_fingerprint(self) -> str:
        """Content hash of the synthetic network, computed once per run."""
        if self._network_fp is None:
            self._network_fp = fingerprint_network(self.network)
        return self._network_fp

    # -- browser profiles, built exactly as the monolithic pipeline did -------

    def control_profile(self) -> BrowserProfile:
        return BrowserProfile(device=INTEL_UBUNTU)

    def abp_profile(self) -> BrowserProfile:
        easylist = RuleMatcher.from_text(self.easylist_text, "easylist")
        abp = AdBlockerExtension("Adblock Plus", [easylist])
        return BrowserProfile(device=INTEL_UBUNTU, extensions=(abp,))

    def ubo_profile(self) -> BrowserProfile:
        easylist = RuleMatcher.from_text(self.easylist_text, "easylist")
        extra = []
        if self.ubo_extra_text:
            extra.append(RuleMatcher.from_text(self.ubo_extra_text, "ubo-extra"))
        ubo = AdBlockerExtension("UBlock Origin", [easylist], extra_matchers=extra)
        return BrowserProfile(device=INTEL_UBUNTU, extensions=(ubo,))

    # -- which optional stages apply (the monolith's conditionals verbatim) ---

    @property
    def wants_blocklist_context(self) -> bool:
        return bool(
            self.easylist_text and self.easyprivacy_text and self.disconnect is not None
        )

    @property
    def wants_adblock_crawls(self) -> bool:
        return bool(self.include_adblock_crawls and self.easylist_text)


def control_bundle_spec(ctx: StudyContext) -> BundleSpec:
    """The study's streaming-analysis bundle for the control crawl.

    Deliberately parameterized by the detector's ``min_size`` *only*:
    blocklists and the DNS zone stay out so changing either never touches
    the reduce stage's cache identity (see module docstring).
    """
    return BundleSpec(min_size=ctx.detector.min_size)


class CrawlStage(Stage):
    """A sharded (optionally parallel, checkpointed) crawl of the target list.

    With ``fold=True`` the crawl also folds observations into streaming
    analysis partials as shards complete — workers ship a picklable
    :class:`AnalysisBundle` partial home alongside their records — and
    stashes the merged bundle in ``ctx._live_bundles`` for the reduce stage.
    Folding is an execution knob, not configuration: it never enters the
    ``config_fingerprint``.
    """

    artifact = "dataset"

    def __init__(self, name: str, profile_attr: str, label: str, fold: bool = False) -> None:
        self.name = name
        self._profile_attr = profile_attr
        self.label = label
        self.fold = fold

    def _profile(self, ctx: StudyContext) -> BrowserProfile:
        return getattr(ctx, self._profile_attr)()

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return {
            "network": ctx.network_fingerprint(),
            "targets": fingerprint_targets(ctx.targets),
            "profile": fingerprint_profile(self._profile(ctx)),
            "label": self.label,
            "retry": fingerprint_policy(ctx.retry_policy),
            "budget": fingerprint_policy(ctx.page_budget),
        }

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        checkpoint_dir = None
        if ctx.checkpoint_dir is not None:
            # Namespace shard checkpoints by config so two crawls that share
            # a label but differ in targets/profile/network never resume
            # from each other's partials.
            namespace = stable_hash(self.config_fingerprint(ctx))[:16]
            checkpoint_dir = Path(ctx.checkpoint_dir) / namespace
        fold = AnalysisFold(control_bundle_spec(ctx)) if self.fold else None
        dataset = run_sharded_crawl(
            ctx.network,
            ctx.targets,
            profile=self._profile(ctx),
            label=self.label,
            jobs=ctx.jobs,
            checkpoint_dir=checkpoint_dir,
            retry_policy=ctx.retry_policy,
            page_budget=ctx.page_budget,
            supervisor=ctx.supervisor,
            fold=fold,
            js_prewarm=ctx.js_prewarm,
            static_triage=ctx.static_triage,
        )
        if fold is not None:
            ctx._live_bundles[self.name] = fold.merge(dataset)
            obs_layer.inc("analysis.fold.live")
        return dataset


class ReduceStage(Stage):
    """Fold the control crawl into one merged :class:`AnalysisBundle`.

    Three ways to produce the bundle, cheapest first:

    1. **Live partials** — a fold-enabled :class:`CrawlStage` already merged
       worker-shipped partials; pop them from ``ctx._live_bundles``.
    2. **Block-cached fold** — with a stage cache, the dataset is folded in
       fixed-size blocks, each block's partial content-addressed by its
       observations (``reduce.block`` entries).  Appending sites to a study
       re-ingests only the new blocks; everything else is a merge of cached
       partials.
    3. **Plain fold** — no cache, no live bundle: ingest the whole dataset.

    All three produce the identical artifact; only the work differs.
    """

    name = "reduce"
    inputs = ("crawl.control",)
    #: Which crawl stage's live bundle this reduce consumes.
    name_of_live_bundle = "crawl.control"
    #: Observations per cached block partial (tests shrink this).
    DEFAULT_BLOCK_SIZE = 256

    def __init__(self, cache: Optional[StageCache] = None, block_size: Optional[int] = None) -> None:
        self._cache = cache
        self.block_size = block_size if block_size is not None else self.DEFAULT_BLOCK_SIZE

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return control_bundle_spec(ctx).fingerprint()

    def _block_key(self, config_fp: Any, block: Sequence[Any]) -> str:
        digest = hashlib.sha256(stable_hash(config_fp).encode("ascii"))
        for observation in block:
            digest.update(
                json.dumps(
                    observation.to_json(), sort_keys=True, ensure_ascii=False
                ).encode("utf-8")
            )
        return digest.hexdigest()

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> AnalysisBundle:
        control = inputs["crawl.control"]
        live = ctx._live_bundles.pop(self.name_of_live_bundle, None)
        if live is not None:
            return live
        spec = control_bundle_spec(ctx)
        if self._cache is None:
            fold = AnalysisFold(spec)
            fold.fold_dataset(control)
            return fold.merge(control)
        config_fp = self.config_fingerprint(ctx)
        fold = AnalysisFold(spec)
        observations = list(control.observations)
        for start in range(0, len(observations), self.block_size):
            block = observations[start : start + self.block_size]
            key = self._block_key(config_fp, block)
            # A structural span per block: cached/uncached folds are visible
            # in the trace timeline and the profiler attributes block-fold
            # self-time under the reduce stage rather than a bare gap.
            with obs_layer.span(
                "reduce.block", index=start // self.block_size, size=len(block)
            ) as block_span:
                hit, partial = self._cache.get("reduce.block", key)
                block_span.set_attr("cached", bool(hit))
                if hit:
                    obs_layer.inc("analysis.block.hits")
                else:
                    obs_layer.inc("analysis.block.misses")
                    partial = spec.build()
                    partial.ingest_many(block)
                    self._cache.put("reduce.block", key, partial)
                fold.add_partial(partial)
        return fold.merge(control)


class DetectStage(Stage):
    """§3.2 detection over every successfully crawled page."""

    name = "detect"
    inputs = ("reduce",)
    version = "2"

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        return inputs["reduce"].finalize_member("detection")


class ClusterStage(Stage):
    """§4.2 canvas-equality clustering."""

    name = "cluster"
    inputs = ("reduce",)
    version = "2"

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        return inputs["reduce"].finalize_member("cluster")


class PrevalenceStage(Stage):
    """§4.1 prevalence per population."""

    name = "prevalence"
    inputs = ("reduce",)
    version = "2"

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        return inputs["reduce"].finalize_member("prevalence")


class ReachStage(Stage):
    """§4.2 reach of each cluster across populations."""

    name = "reach"
    inputs = ("reduce",)
    version = "2"

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        return inputs["reduce"].finalize_member("reach")


class SignaturesStage(Stage):
    """A.3 vendor ground-truth harvesting (crawls demo and customer pages)."""

    name = "signatures"
    inputs = ("crawl.control",)

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return {
            "network": ctx.network_fingerprint(),
            "vendors": fingerprint_vendor_knowledge(ctx.vendor_knowledge),
            "min_size": ctx.detector.min_size,
        }

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        from repro.core.pipeline import harvest_vendor_signatures

        return harvest_vendor_signatures(
            ctx.network, ctx.vendor_knowledge, inputs["crawl.control"]
        )


class AttributionStage(Stage):
    """§4.3 attribution plus the per-population vendor count tables."""

    name = "attribution"
    inputs = ("crawl.control", "detect", "signatures")

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        control = inputs["crawl.control"]
        outcomes = inputs["detect"]
        attributor = VendorAttributor(inputs["signatures"])
        attributions = attributor.attribute_all(control.by_domain(), outcomes)
        populations = control.populations()
        return {
            "attributions": attributions,
            "vendor_counts": attributor.vendor_site_counts(attributions, populations),
            "vendor_totals": attributor.attributed_site_totals(attributions, populations),
        }


class BlocklistContextStage(Stage):
    """§5.1 blocklist coverage (only when all three lists are supplied)."""

    name = "blocklist_context"
    inputs = ("crawl.control", "detect")

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        disconnect = ctx.disconnect
        return {
            "easylist": fingerprint_text(ctx.easylist_text),
            "easyprivacy": fingerprint_text(ctx.easyprivacy_text),
            "disconnect": stable_hash(disconnect.to_json()) if disconnect is not None else None,
        }

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        control = inputs["crawl.control"]
        return analyze_blocklist_context(
            inputs["detect"],
            control.populations(),
            RuleMatcher.from_text(ctx.easylist_text, "easylist"),
            RuleMatcher.from_text(ctx.easyprivacy_text, "easyprivacy"),
            ctx.disconnect,
        )


class ServingContextStage(Stage):
    """§5.2 first/third-party serving context and evasive delivery."""

    name = "serving_context"
    inputs = ("crawl.control", "detect")

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return {"dns": fingerprint_dns(ctx.dns) if ctx.dns is not None else None}

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        control = inputs["crawl.control"]
        return analyze_serving_context(
            inputs["detect"], control.populations(), dns=ctx.dns
        )


class AdblockCompareStage(Stage):
    """Table 2: canvas activity under each ad blocker vs the control crawl."""

    name = "adblock_rows"
    inputs = ("crawl.control", "crawl.abp", "crawl.ubo")

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        return {"min_size": ctx.detector.min_size}

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        return compare_adblock_crawls(
            inputs["crawl.control"],
            {
                "Adblock Plus": inputs["crawl.abp"],
                "UBlock Origin": inputs["crawl.ubo"],
            },
            ctx.detector,
        )


class StaticStage(Stage):
    """Static script verdicts + static/dynamic cross-validation.

    Runs the static analyzer over every script source the control crawl
    recorded and cross-tabulates the resulting classes against the dynamic
    §3.2 outcomes.  For sites the supervisor quarantined — where the
    dynamic pass saw *nothing* — it additionally performs execution-free
    fetch probes: fetch the document and its external scripts over the
    synthetic network, parse, and classify statically.  No JS executes, so
    probing a poison site cannot kill this stage the way it killed its
    crawl workers.
    """

    name = "static"
    inputs = ("crawl.control", "detect")
    version = "1"

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        from repro.js.static import ANALYZER_VERSION

        return {
            "analyzer": ANALYZER_VERSION,
            # Fetch probes read the network, so its content is part of the
            # artifact identity (the crawl dataset alone is not enough).
            "network": ctx.network_fingerprint(),
        }

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        from repro.core.reducers import StaticReducer

        control = inputs["crawl.control"]
        outcomes = inputs["detect"]
        reducer = StaticReducer(ctx.detector)
        with obs_layer.span("static.analyze", sites=len(control.observations)):
            for observation in control.observations:
                reducer.ingest_site(observation, outcomes.get(observation.domain))
        for domain, reason in sorted(control.quarantined_sites().items()):
            classification = self._probe(ctx, domain)
            if classification is not None:
                reducer.add_recovery(domain, reason, classification)
                obs_layer.inc("static.recoveries")
        return reducer.finalize()

    @staticmethod
    def _probe(ctx: StudyContext, domain: str) -> Optional[str]:
        """Fetch-only static class for one uncrawlable site (no JS runs)."""
        from repro.core.reducers import _STATIC_SEVERITY
        from repro.dom.html import parse_html
        from repro.js.static import verdict_for_source
        from repro.net.http import Request, ResourceType
        from repro.net.url import URL

        try:
            url = URL("https", domain)
            response = ctx.network.fetch(
                Request(url=url, resource_type=ResourceType.DOCUMENT)
            )
            if not response.ok:
                return None
            best_rank, best = -1, None
            for ref in parse_html(response.body).scripts:
                if ref.is_inline:
                    source = ref.source
                else:
                    fetched = ctx.network.fetch(
                        Request(
                            url=url.join(ref.src),
                            resource_type=ResourceType.SCRIPT,
                            document_url=url,
                        )
                    )
                    if not fetched.ok:
                        continue
                    source = fetched.body
                verdict = verdict_for_source(source, str(url))
                rank = _STATIC_SEVERITY.get(verdict.classification, 0)
                if rank > best_rank:
                    best_rank, best = rank, verdict.classification
            return best
        except Exception:  # noqa: BLE001 — a probe must never fail the stage
            return None


class CrossMachineStage(Stage):
    """§3.1 cross-device consistency over a sample of the target list."""

    name = "cross_machine"

    def config_fingerprint(self, ctx: StudyContext) -> Any:
        sample = ctx.targets[: ctx.cross_machine_sample]
        return {
            "network": ctx.network_fingerprint(),
            "targets": fingerprint_targets(sample),
            "devices": list(ctx.cross_machine_devices),
            "min_size": ctx.detector.min_size,
            "retry": fingerprint_policy(ctx.retry_policy),
            "budget": fingerprint_policy(ctx.page_budget),
        }

    def run(self, ctx: StudyContext, inputs: Dict[str, Any]) -> Any:
        from repro.core.pipeline import validate_cross_machine

        return validate_cross_machine(
            ctx.network,
            ctx.targets[: ctx.cross_machine_sample],
            ctx.detector,
            devices=ctx.cross_machine_devices,
            retry_policy=ctx.retry_policy,
            page_budget=ctx.page_budget,
            jobs=ctx.jobs,
            supervisor=ctx.supervisor,
        )


def build_study_graph(
    ctx: StudyContext, cache: Optional[StageCache] = None
) -> StageGraph:
    """Assemble the stage graph for a context.

    Optional stages (blocklist context, ad-blocker recrawls, cross-machine
    validation) are included exactly when the monolithic pipeline would have
    run them, so the graph's artifact set mirrors the old control flow.

    Live-folded streaming analysis (workers ship partials with their crawl
    records) is enabled exactly when there is no stage cache: with a cache,
    the control crawl may be a warm artifact whose run() never executes, so
    the reduce stage folds through block-level cached partials instead.
    """
    fold_live = cache is None
    stages = [
        CrawlStage("crawl.control", "control_profile", "control", fold=fold_live),
        ReduceStage(cache),
        DetectStage(),
        ClusterStage(),
        PrevalenceStage(),
        ReachStage(),
        SignaturesStage(),
        AttributionStage(),
        ServingContextStage(),
        StaticStage(),
    ]
    if ctx.wants_blocklist_context:
        stages.append(BlocklistContextStage())
    if ctx.wants_adblock_crawls:
        stages.append(CrawlStage("crawl.abp", "abp_profile", "abp"))
        stages.append(CrawlStage("crawl.ubo", "ubo_profile", "ubo"))
        stages.append(AdblockCompareStage())
    if ctx.include_cross_machine:
        stages.append(CrossMachineStage())
    return StageGraph(stages, cache=cache)
