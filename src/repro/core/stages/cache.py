"""Content-addressed artifact store for pipeline stages.

Artifacts live under one cache directory, one file per ``(stage, key)``:

    <cache_dir>/<stage-name>.<key>.jsonl.gz   (crawl datasets, streamed JSONL)
    <cache_dir>/<stage-name>.<key>.pkl        (all other artifacts)

The file name *is* the cache key, so a lookup is a single ``exists()`` and
no index can ever go stale.  Writes go through
:func:`repro.crawler.storage.save_artifact` (same-directory temp file +
``os.replace`` + directory fsync), so interrupted runs leave either a
complete entry or none.  A corrupt entry (torn by an older crash, truncated
copy, unreadable pickle) is treated as a miss and deleted, never an error.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.crawler.storage import DatasetError, load_artifact, save_artifact

__all__ = ["StageCache"]

_SUFFIXES = {"dataset": ".jsonl.gz", "pickle": ".pkl"}


class StageCache:
    """Filesystem-backed content-addressed cache keyed by stage cache keys."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, stage_name: str, key: str, artifact: str = "pickle") -> Path:
        try:
            suffix = _SUFFIXES[artifact]
        except KeyError:
            raise ValueError(f"unknown artifact kind {artifact!r}") from None
        return self.root / f"{stage_name}.{key}{suffix}"

    def get(self, stage_name: str, key: str, artifact: str = "pickle") -> Tuple[bool, Optional[Any]]:
        """(hit, value); a corrupt entry is evicted and reported as a miss."""
        path = self.path_for(stage_name, key, artifact)
        if not path.exists():
            self.misses += 1
            return False, None
        try:
            value = load_artifact(path)
        except DatasetError:
            path.unlink(missing_ok=True)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, stage_name: str, key: str, value: Any, artifact: str = "pickle") -> Path:
        path = self.path_for(stage_name, key, artifact)
        save_artifact(value, path)
        return path

    def __len__(self) -> int:
        return sum(1 for p in self.root.iterdir() if p.suffix in (".pkl", ".gz"))
