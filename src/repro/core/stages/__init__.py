"""Typed, content-addressed study pipeline stages.

The study pipeline is a DAG of :class:`~repro.core.stages.stage.Stage`
objects executed by :class:`~repro.core.stages.graph.StageGraph`.  Each
stage declares its inputs, fingerprints its configuration, and persists its
artifact in a :class:`~repro.core.stages.cache.StageCache`; a stage whose
content-addressed key already resolves is skipped entirely.  See
``docs/pipeline-architecture.md`` for the full design.
"""

from repro.core.stages.cache import StageCache
from repro.core.stages.fingerprint import (
    fingerprint_dns,
    fingerprint_network,
    fingerprint_policy,
    fingerprint_profile,
    fingerprint_targets,
    fingerprint_text,
    fingerprint_vendor_knowledge,
    stable_hash,
)
from repro.core.stages.graph import GraphRun, StageGraph, StageGraphError
from repro.core.stages.stage import PIPELINE_VERSION, Stage, StageTiming
from repro.core.stages.study import STAGE_DOCS, StudyContext, build_study_graph

__all__ = [
    "PIPELINE_VERSION",
    "STAGE_DOCS",
    "GraphRun",
    "Stage",
    "StageCache",
    "StageGraph",
    "StageGraphError",
    "StageTiming",
    "StudyContext",
    "build_study_graph",
    "fingerprint_dns",
    "fingerprint_network",
    "fingerprint_policy",
    "fingerprint_profile",
    "fingerprint_targets",
    "fingerprint_text",
    "fingerprint_vendor_knowledge",
    "stable_hash",
]
