"""Topological stage-graph runner with content-addressed skipping.

:class:`StageGraph` validates a set of stages (unique names, declared
inputs resolvable, no cycles), derives a deterministic topological order,
and executes stages in that order.  For every stage it:

1. computes the content-addressed cache key (config + chained input keys);
2. if a :class:`~repro.core.stages.cache.StageCache` is attached and the
   key resolves, loads the artifact and *skips the stage entirely*;
3. otherwise runs the stage, persists the artifact under its key, and
   records wall-clock timing either way.

``execute(only=...)`` restricts the run to the requested stages plus their
transitive dependencies — the substrate for ``--stage`` CLI flags.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro import obs, perf
from repro.core.stages.cache import StageCache
from repro.core.stages.stage import Stage, StageTiming

__all__ = ["StageGraph", "StageGraphError", "GraphRun"]


class StageGraphError(ValueError):
    """The stage set does not form a valid executable DAG."""


@dataclass
class GraphRun:
    """Everything one graph execution produced."""

    artifacts: Dict[str, Any] = field(default_factory=dict)
    keys: Dict[str, str] = field(default_factory=dict)
    timings: List[StageTiming] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.timings if t.cached)

    @property
    def stages_run(self) -> int:
        return sum(1 for t in self.timings if not t.cached)


class StageGraph:
    """An executable DAG of :class:`Stage` objects."""

    def __init__(self, stages: Sequence[Stage], cache: Optional[StageCache] = None) -> None:
        self.cache = cache
        self.stages: Dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise StageGraphError(f"duplicate stage name {stage.name!r}")
            self.stages[stage.name] = stage
        for stage in stages:
            for dep in stage.inputs:
                if dep not in self.stages:
                    raise StageGraphError(
                        f"stage {stage.name!r} consumes unknown artifact {dep!r}"
                    )
        self.order = self._topological_order()

    def _topological_order(self) -> List[Stage]:
        """Kahn's algorithm, deterministic: ready stages run in insertion order."""
        pending = {name: set(stage.inputs) for name, stage in self.stages.items()}
        order: List[Stage] = []
        while pending:
            ready = [name for name, deps in pending.items() if not deps]
            if not ready:
                cycle = ", ".join(sorted(pending))
                raise StageGraphError(f"stage graph has a cycle among: {cycle}")
            for name in ready:
                order.append(self.stages[name])
                del pending[name]
            for deps in pending.values():
                deps.difference_update(ready)
        return order

    def required(self, wanted: Sequence[str]) -> Set[str]:
        """``wanted`` stages plus every transitive dependency."""
        needed: Set[str] = set()
        frontier = list(wanted)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            if name not in self.stages:
                raise StageGraphError(
                    f"unknown stage {name!r}; known: {sorted(self.stages)}"
                )
            needed.add(name)
            frontier.extend(self.stages[name].inputs)
        return needed

    def execute(self, ctx: Any, only: Optional[Sequence[str]] = None) -> GraphRun:
        """Run the graph (or the closure of ``only``) over a context."""
        selected = self.required(only) if only is not None else set(self.stages)
        run = GraphRun()
        for stage in self.order:
            if stage.name not in selected:
                continue
            started = time.perf_counter()
            perf_before = perf.PERF.snapshot()
            key = stage.cache_key(ctx, run.keys)
            run.keys[stage.name] = key
            cached = False
            value: Any = None
            with obs.span(f"stage.{stage.name}", key=key) as stage_span:
                if self.cache is not None:
                    cached, value = self.cache.get(stage.name, key, stage.artifact)
                if not cached:
                    inputs = {name: run.artifacts[name] for name in stage.inputs}
                    value = stage.run(ctx, inputs)
                    if self.cache is not None:
                        self.cache.put(stage.name, key, value, stage.artifact)
                stage_span.set_attr("cached", cached)
            run.artifacts[stage.name] = value
            seconds = time.perf_counter() - started
            # The gauge carries the same float as StageTiming.seconds, so
            # `repro.obs summary` and StudyResult agree exactly per stage.
            obs.gauge(f"stage.seconds[{stage.name}]", seconds)
            if cached:
                obs.inc(f"stage.cached[{stage.name}]")
                obs.inc("stage.cache.hits")
            elif self.cache is not None:
                obs.inc("stage.cache.misses")
            # Render-cache activity attributable to this stage (sharded
            # crawls merge worker snapshots before this point, so parallel
            # stages are covered too).
            perf_delta = perf.diff_snapshots(perf_before, perf.PERF.snapshot())
            run.timings.append(
                StageTiming(
                    name=stage.name,
                    seconds=seconds,
                    cached=cached,
                    key=key,
                    details={"perf": perf_delta} if perf_delta else {},
                )
            )
        return run
