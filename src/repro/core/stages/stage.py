"""The typed stage protocol: declared inputs/outputs and cache identity.

A :class:`Stage` is one re-runnable unit of the study pipeline (a crawl, the
detection pass, clustering, attribution, ...).  Each stage declares:

* ``name`` — its identity and the name of the single artifact it produces;
* ``inputs`` — the artifact names (i.e. upstream stage names) it consumes;
* ``version`` — bumped when the stage's *code* changes semantics, so stale
  cached artifacts are invalidated without clearing the cache;
* ``config_fingerprint(ctx)`` — the stage-relevant slice of the run
  configuration (targets, profiles, blocklists, network content, ...).

The cache key is a SHA-256 over ``(name, version, config, input keys)``.
Because each input's *key* — not its value — feeds the hash, keys chain:
invalidating a crawl automatically invalidates every stage downstream of
it, while an analysis-parameter change re-runs only the analysis stages and
reuses the cached crawl.  This is the FP-Inspector-style "re-runnable,
independently cached stages" architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.stages.fingerprint import stable_hash

__all__ = ["Stage", "StageTiming", "PIPELINE_VERSION"]

#: Global schema version: bump to invalidate every cached artifact at once
#: (e.g. when the observation schema or artifact serialization changes).
PIPELINE_VERSION = "1"


class Stage:
    """One node of the study pipeline's stage graph."""

    #: Artifact name this stage produces (must be unique within a graph).
    name: str = "stage"
    #: Artifact names this stage consumes (edges of the graph).
    inputs: Tuple[str, ...] = ()
    #: Stage code version; bump on semantic changes to ``run``.
    version: str = "1"
    #: How the artifact persists in the cache: "dataset" artifacts are
    #: streamed as JSONL via :mod:`repro.crawler.storage` (and stay readable
    #: by ``python -m repro.analysis``); everything else is pickled.
    artifact: str = "pickle"

    def config_fingerprint(self, ctx: Any) -> Any:
        """The configuration this stage's output depends on (JSON-able)."""
        return None

    def run(self, ctx: Any, inputs: Dict[str, Any]) -> Any:
        """Produce the stage artifact from resolved input artifacts."""
        raise NotImplementedError

    def cache_key(self, ctx: Any, input_keys: Dict[str, str]) -> str:
        """Deterministic content-addressed key over config + chained inputs."""
        return stable_hash(
            {
                "pipeline": PIPELINE_VERSION,
                "stage": self.name,
                "version": self.version,
                "config": self.config_fingerprint(ctx),
                "inputs": {name: input_keys[name] for name in self.inputs},
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.name} inputs={list(self.inputs)}>"


@dataclass(frozen=True)
class StageTiming:
    """How one stage executed: wall time, cache outcome, cache key."""

    name: str
    seconds: float
    cached: bool
    key: Optional[str] = None
    #: Free-form counters the stage reported (e.g. observation counts).
    details: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def status(self) -> str:
        return "cache-hit" if self.cached else "ran"
