"""Streaming analysis engine: mergeable per-shard reducers.

Every analysis in :mod:`repro.core` (detection, clustering, prevalence,
reach, attribution, blocklist context, serving context, FPJS breakdown,
render-twice, ad-blocker impact) is expressed as a :class:`Reducer` — a
small state object with three operations:

* ``ingest(observation)`` — fold one :class:`SiteObservation` into the
  state (detection runs once per observation and is shared by every
  member of a bundle);
* ``merge(other)`` — combine two partial states.  Merge is associative
  and commutative *provided each site was ingested into exactly one of
  the partials* (the fold layer guarantees this; property tests in
  ``tests/core/test_reducer_properties.py`` pin the algebra);
* ``finalize()`` — produce exactly the report dataclass the old batch
  function returned.

The batch entry points (``detect_all``, ``cluster_canvases``,
``compute_prevalence``, ``analyze_blocklist_context``,
``analyze_serving_context``, ``fpjs_breakdown``, ``render_twice_fraction``,
``compare_adblock_crawls``, ``attribute_all``) are thin drivers over these
reducers — one code path, two drivers — so streaming output is *equal* to
batch output by construction, not by coincidence.

Because states are picklable, shard workers fold their observations as
pages land and ship partials home over the existing worker-payload
channel (:mod:`repro.crawler.shards` / :mod:`repro.crawler.supervisor`);
the stage graph merges them (:class:`repro.core.stages.study.ReduceStage`)
and the analysis CLI streams a JSONL dataset through a bundle in bounded
memory.  See ``docs/analysis-architecture.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro import obs as obs_layer
from repro.core.clustering import CanvasCluster
from repro.core.context import BlocklistContext, blocklist_flags_for_url
from repro.core.detection import (
    MIN_CANVAS_SIZE,
    DetectionOutcome,
    FingerprintDetector,
)
from repro.core.evasion import AdblockImpact, ServingContext, site_serving_flags
from repro.core.fpjs import FPJSBreakdown, site_fpjs_flavor
from repro.core.prevalence import PopulationPrevalence, PrevalenceReport
from repro.core.reach import ReachReport, compute_reach
from repro.core.records import SiteObservation

__all__ = [
    "Reducer",
    "DetectionReducer",
    "ExtractionStats",
    "ExtractionStatsReducer",
    "ClusterReducer",
    "PrevalenceReducer",
    "ReachReducer",
    "AttributionReducer",
    "BlocklistContextReducer",
    "ServingContextReducer",
    "FpjsReducer",
    "RenderTwiceReducer",
    "AdblockRowReducer",
    "StaticReport",
    "StaticReducer",
    "BundleSpec",
    "AnalysisBundle",
    "AnalysisFold",
    "REDUCER_VERSION",
]

#: Bump when any reducer's state layout or semantics change — feeds the
#: block-level partial cache keys of ``ReduceStage``.
REDUCER_VERSION = "1"


class Reducer:
    """One streaming analysis: ``ingest`` observations, ``merge`` partials,
    ``finalize`` into the batch report dataclass.

    ``ingest`` detects on demand (via the reducer's own detector); inside an
    :class:`AnalysisBundle` the shared outcome is passed to ``ingest_site``
    directly so detection runs once per observation, not once per member.

    Merge contract: associative and commutative over partials with
    *disjoint* ingested site sets.  Ingesting one site into two partials
    and merging them double-counts — the fold layer
    (:class:`AnalysisFold`) enforces disjointness and falls back to a
    re-fold when shard partials overlap (supervised re-dispatch races).
    """

    def __init__(self, detector: Optional[FingerprintDetector] = None) -> None:
        self.detector = detector or FingerprintDetector()

    def ingest(self, observation: SiteObservation) -> None:
        outcome = self.detector.detect(observation) if observation.success else None
        self.ingest_site(observation, outcome)

    def ingest_site(
        self, observation: SiteObservation, outcome: Optional[DetectionOutcome]
    ) -> None:
        """Fold one observation with its (possibly shared) detection outcome."""
        raise NotImplementedError

    def merge(self, other: "Reducer") -> "Reducer":
        raise NotImplementedError

    def finalize(self) -> Any:
        raise NotImplementedError


class DetectionReducer(Reducer):
    """§3.2 — streaming ``detect_all(dataset.successful())``."""

    def __init__(self, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        self.outcomes: Dict[str, DetectionOutcome] = {}

    def ingest_site(self, observation, outcome) -> None:
        if observation.success and outcome is not None:
            self.outcomes[observation.domain] = outcome

    def merge(self, other: "DetectionReducer") -> "DetectionReducer":
        self.outcomes.update(other.outcomes)
        return self

    def finalize(self) -> Dict[str, DetectionOutcome]:
        return self.outcomes


@dataclass
class ExtractionStats:
    """Extraction counts behind §3.2's fingerprintable fraction."""

    kept: int = 0
    total: int = 0

    @property
    def fraction(self) -> float:
        return self.kept / self.total if self.total else 0.0


class ExtractionStatsReducer(Reducer):
    """Counts behind ``fingerprintable_fraction`` without keeping outcomes."""

    def __init__(self, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        self.kept = 0
        self.total = 0

    def ingest_site(self, observation, outcome) -> None:
        if outcome is None:
            return
        self.kept += len(outcome.fingerprintable)
        self.total += outcome.total_extractions

    def merge(self, other: "ExtractionStatsReducer") -> "ExtractionStatsReducer":
        self.kept += other.kept
        self.total += other.total
        return self

    def finalize(self) -> ExtractionStats:
        return ExtractionStats(kept=self.kept, total=self.total)


class ClusterReducer(Reducer):
    """§4.2 — streaming ``cluster_canvases``."""

    def __init__(self, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        self.clusters: Dict[str, CanvasCluster] = {}

    def ingest_site(self, observation, outcome) -> None:
        if outcome is not None:
            self.ingest_outcome(observation.domain, observation.population, outcome)

    def ingest_outcome(
        self, domain: str, population: str, outcome: DetectionOutcome
    ) -> None:
        for extraction in outcome.fingerprintable:
            key = extraction.canvas_hash
            cluster = self.clusters.get(key)
            if cluster is None:
                cluster = CanvasCluster(
                    canvas_hash=key, sample_data_url=extraction.data_url
                )
                self.clusters[key] = cluster
            cluster.add(domain, population, extraction)

    def merge(self, other: "ClusterReducer") -> "ClusterReducer":
        for key, theirs in other.clusters.items():
            mine = self.clusters.get(key)
            if mine is None:
                mine = CanvasCluster(
                    canvas_hash=key, sample_data_url=theirs.sample_data_url
                )
                self.clusters[key] = mine
            mine.merge_from(theirs)
        return self

    def finalize(self) -> Dict[str, CanvasCluster]:
        return self.clusters


class _PopulationState:
    """Mutable per-population accumulator behind :class:`PrevalenceReducer`."""

    __slots__ = ("sites_crawled", "sites_successful", "canvases", "fp_rows")

    def __init__(self) -> None:
        self.sites_crawled = 0
        self.sites_successful = 0
        self.canvases = 0
        #: (rank, domain, fingerprintable count) per FP site.  Finalize
        #: sorts by (rank, domain) — the crawl target order within each
        #: population — so the per-site list is independent of shard
        #: interleaving yet identical to the batch (dataset-order) list.
        self.fp_rows: List[Tuple[int, str, int]] = []


class PrevalenceReducer(Reducer):
    """§4.1 — streaming ``compute_prevalence``."""

    def __init__(self, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        self.populations: Dict[str, _PopulationState] = {
            "top": _PopulationState(),
            "tail": _PopulationState(),
        }

    def ingest_site(self, observation, outcome) -> None:
        state = self.populations.get(observation.population)
        if state is None:
            return
        state.sites_crawled += 1
        if not observation.success:
            return
        state.sites_successful += 1
        if outcome is None or not outcome.is_fingerprinting_site:
            return
        count = len(outcome.fingerprintable)
        state.canvases += count
        state.fp_rows.append((observation.rank, observation.domain, count))

    def merge(self, other: "PrevalenceReducer") -> "PrevalenceReducer":
        for population, theirs in other.populations.items():
            mine = self.populations[population]
            mine.sites_crawled += theirs.sites_crawled
            mine.sites_successful += theirs.sites_successful
            mine.canvases += theirs.canvases
            mine.fp_rows.extend(theirs.fp_rows)
        return self

    def finalize(self) -> PrevalenceReport:
        reports = {}
        for population, state in self.populations.items():
            rows = sorted(state.fp_rows)
            reports[population] = PopulationPrevalence(
                population=population,
                sites_crawled=state.sites_crawled,
                sites_successful=state.sites_successful,
                fp_sites=len(rows),
                total_fingerprintable_canvases=state.canvases,
                canvases_per_fp_site=[count for _, _, count in rows],
            )
        return PrevalenceReport(top=reports["top"], tail=reports["tail"])


class ReachReducer(Reducer):
    """§4.2 — streaming ``compute_reach`` inputs (clusters + FP site sets)."""

    def __init__(self, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        self.cluster = ClusterReducer(detector)
        self.fp_sites: Dict[str, Set[str]] = {"top": set(), "tail": set()}
        self.successful_top = 0

    def ingest_site(self, observation, outcome) -> None:
        if observation.success and observation.population == "top":
            self.successful_top += 1
        if outcome is None:
            return
        if outcome.is_fingerprinting_site:
            self.fp_sites.setdefault(observation.population, set()).add(
                observation.domain
            )
        self.cluster.ingest_site(observation, outcome)

    def merge(self, other: "ReachReducer") -> "ReachReducer":
        self.cluster.merge(other.cluster)
        for population, domains in other.fp_sites.items():
            self.fp_sites.setdefault(population, set()).update(domains)
        self.successful_top += other.successful_top
        return self

    def finalize(self) -> ReachReport:
        return compute_reach(
            self.cluster.finalize(),
            self.fp_sites.get("top", set()),
            self.fp_sites.get("tail", set()),
            self.successful_top,
        )


class AttributionReducer(Reducer):
    """§4.3 — streaming ``attribute_all`` plus the Table 1 count tables.

    Takes a built :class:`~repro.core.attribution.VendorAttributor` (vendor
    signatures are an analysis *input*, harvested by the signatures stage).
    """

    def __init__(self, attributor, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        self.attributor = attributor
        self.attributions: Dict[str, Any] = {}
        self.populations: Dict[str, str] = {}

    def ingest_site(self, observation, outcome) -> None:
        if outcome is None or not outcome.is_fingerprinting_site:
            return
        self.attributions[observation.domain] = self.attributor.attribute_site(
            observation, outcome
        )
        self.populations[observation.domain] = observation.population

    def merge(self, other: "AttributionReducer") -> "AttributionReducer":
        self.attributions.update(other.attributions)
        self.populations.update(other.populations)
        return self

    def finalize(self) -> Dict[str, Any]:
        return {
            "attributions": self.attributions,
            "vendor_counts": self.attributor.vendor_site_counts(
                self.attributions, self.populations
            ),
            "vendor_totals": self.attributor.attributed_site_totals(
                self.attributions, self.populations
            ),
        }


class BlocklistContextReducer(Reducer):
    """§5.1 — streaming ``analyze_blocklist_context`` (Table 4)."""

    def __init__(
        self,
        easylist,
        easyprivacy,
        disconnect,
        detector: Optional[FingerprintDetector] = None,
    ) -> None:
        super().__init__(detector)
        self.easylist = easylist
        self.easyprivacy = easyprivacy
        self.disconnect = disconnect
        self.context = BlocklistContext()
        # Per-URL memo: crawls see the same script URLs thousands of times.
        # Pure cache — merge keeps counts only, so memo state never affects
        # the algebra.
        self._memo: Dict[Optional[str], Tuple[bool, bool, bool]] = {}

    def ingest_site(self, observation, outcome) -> None:
        if outcome is not None:
            self.ingest_outcome(observation.domain, observation.population, outcome)

    def ingest_outcome(
        self, domain: str, population: str, outcome: DetectionOutcome
    ) -> None:
        context = self.context
        for extraction in outcome.fingerprintable:
            url = extraction.script_url
            flags = self._memo.get(url)
            if flags is None:
                flags = blocklist_flags_for_url(
                    url, self.easylist, self.easyprivacy, self.disconnect
                )
                self._memo[url] = flags
            in_el, in_ep, in_dc = flags
            context.totals.add(population)
            if in_el:
                context.easylist.add(population)
            if in_ep:
                context.easyprivacy.add(population)
            if in_dc:
                context.disconnect.add(population)
            if in_el or in_ep or in_dc:
                context.any_list.add(population)
            if in_el and in_ep and in_dc:
                context.all_lists.add(population)

    def merge(self, other: "BlocklistContextReducer") -> "BlocklistContextReducer":
        for name, counts in self.context.rows().items():
            theirs = other.context.rows()[name]
            counts.top += theirs.top
            counts.tail += theirs.tail
        self.context.totals.top += other.context.totals.top
        self.context.totals.tail += other.context.totals.tail
        self._memo.update(other._memo)
        return self

    def finalize(self) -> BlocklistContext:
        return self.context


class ServingContextReducer(Reducer):
    """§5.2 — streaming ``analyze_serving_context``."""

    def __init__(self, dns=None, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        self.dns = dns
        self.context = ServingContext()

    def ingest_site(self, observation, outcome) -> None:
        if outcome is not None:
            self.ingest_outcome(observation.domain, observation.population, outcome)

    def ingest_outcome(
        self, domain: str, population: str, outcome: DetectionOutcome
    ) -> None:
        if not outcome.is_fingerprinting_site:
            return
        ctx = self.context
        ctx.fp_sites[population] = ctx.fp_sites.get(population, 0) + 1
        first_party, subdomain, cdn, cloaked = site_serving_flags(
            domain, outcome, self.dns
        )
        for flag, counter in (
            (first_party, ctx.first_party_sites),
            (subdomain, ctx.subdomain_sites),
            (cdn, ctx.cdn_sites),
            (cloaked, ctx.cname_cloaked_sites),
        ):
            if flag:
                counter[population] = counter.get(population, 0) + 1

    def merge(self, other: "ServingContextReducer") -> "ServingContextReducer":
        for mine, theirs in (
            (self.context.fp_sites, other.context.fp_sites),
            (self.context.first_party_sites, other.context.first_party_sites),
            (self.context.subdomain_sites, other.context.subdomain_sites),
            (self.context.cdn_sites, other.context.cdn_sites),
            (self.context.cname_cloaked_sites, other.context.cname_cloaked_sites),
        ):
            for population, count in theirs.items():
                mine[population] = mine.get(population, 0) + count
        return self

    def finalize(self) -> ServingContext:
        return self.context


class FpjsReducer(Reducer):
    """§4.3.1 — streaming ``fpjs_breakdown``."""

    def __init__(
        self, fpjs_hashes: Set[str], detector: Optional[FingerprintDetector] = None
    ) -> None:
        super().__init__(detector)
        self.fpjs_hashes = set(fpjs_hashes)
        self.breakdown = FPJSBreakdown()

    def ingest_site(self, observation, outcome) -> None:
        if outcome is None:
            return
        flavor = site_fpjs_flavor(observation, outcome, self.fpjs_hashes)
        if flavor is not None:
            self.breakdown.add(flavor, observation.population)

    def merge(self, other: "FpjsReducer") -> "FpjsReducer":
        for flavor, row in other.breakdown.counts.items():
            for population, count in row.items():
                mine = self.breakdown.counts.setdefault(
                    flavor, {"top": 0, "tail": 0}
                )
                mine[population] = mine.get(population, 0) + count
        return self

    def finalize(self) -> FPJSBreakdown:
        return self.breakdown


class RenderTwiceReducer(Reducer):
    """§5.3 — streaming ``render_twice_fraction``."""

    def __init__(self, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        self.fp_sites = 0
        self.double_sites = 0

    def ingest_site(self, observation, outcome) -> None:
        if outcome is not None:
            self.ingest_outcome(observation.domain, observation.population, outcome)

    def ingest_outcome(
        self, domain: str, population: str, outcome: DetectionOutcome
    ) -> None:
        if not outcome.is_fingerprinting_site:
            return
        self.fp_sites += 1
        seen: Dict[str, int] = {}
        for extraction in outcome.fingerprintable:
            seen[extraction.canvas_hash] = seen.get(extraction.canvas_hash, 0) + 1
        if any(count >= 2 for count in seen.values()):
            self.double_sites += 1

    def merge(self, other: "RenderTwiceReducer") -> "RenderTwiceReducer":
        self.fp_sites += other.fp_sites
        self.double_sites += other.double_sites
        return self

    def finalize(self) -> float:
        return self.double_sites / self.fp_sites if self.fp_sites else 0.0


class AdblockRowReducer(Reducer):
    """Table 2 — streaming ``_crawl_row`` for one crawl configuration."""

    def __init__(self, label: str, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        self.label = label
        self.canvases: Dict[str, int] = {"top": 0, "tail": 0}
        self.sites: Dict[str, int] = {"top": 0, "tail": 0}

    def ingest_site(self, observation, outcome) -> None:
        if outcome is None or not outcome.is_fingerprinting_site:
            return
        self.sites[observation.population] += 1
        self.canvases[observation.population] += len(outcome.fingerprintable)

    def merge(self, other: "AdblockRowReducer") -> "AdblockRowReducer":
        for population in other.sites:
            self.sites[population] = self.sites.get(population, 0) + other.sites[population]
        for population in other.canvases:
            self.canvases[population] = (
                self.canvases.get(population, 0) + other.canvases[population]
            )
        return self

    def finalize(self) -> AdblockImpact:
        return AdblockImpact(label=self.label, canvases=self.canvases, sites=self.sites)


# -- static/dynamic cross-validation ------------------------------------------------


#: Site-level severity order for the static classes: a site's static class
#: is the most severe class among its scripts.
_STATIC_SEVERITY = {
    "inert": 0,
    "parse-error": 1,
    "canvas-benign": 2,
    "canvas-unknown": 3,
    "fingerprinting-likely": 4,
}


@dataclass(frozen=True)
class StaticReport:
    """The ``static`` stage's artifact: script verdicts + the cross-tab.

    ``agreement`` is the static-vs-dynamic matrix over sites both passes
    saw: static site class (most severe script class) against whether the
    dynamic §3.2 detector flagged the site.  ``static_only`` carries the
    execution-free recoveries: quarantined/failed sites whose scripts the
    static pass still classified (the dynamic pass saw nothing there).
    ``dead_scripts`` is static attribution for scripts whose dynamic run
    died (a per-script error row) yet statically look fingerprinting-likely.
    """

    #: One row per distinct script body, sorted most-severe-class first.
    script_rows: Tuple[Dict[str, Any], ...] = ()
    #: classification -> number of distinct script bodies.
    class_counts: Dict[str, int] = field(default_factory=dict)
    #: static site class -> {"dynamic-fp": n, "dynamic-clean": n}.
    agreement: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: (domain, script_url, classification) for dynamically-dead scripts.
    dead_scripts: Tuple[Tuple[str, str, str], ...] = ()
    #: (domain, failure_reason, classification) recovered without execution.
    static_only: Tuple[Tuple[str, str, str], ...] = ()
    #: Distinct script bodies the triage would skip at crawl time.
    skippable_scripts: int = 0

    @property
    def total_scripts(self) -> int:
        return len(self.script_rows)

    def agreement_rate(self) -> float:
        """Fraction of dynamically-decided sites where the passes agree
        (static fingerprinting-likely <=> dynamic fingerprinting)."""
        agree = 0
        total = 0
        for static_class, row in self.agreement.items():
            fp = row.get("dynamic-fp", 0)
            clean = row.get("dynamic-clean", 0)
            total += fp + clean
            agree += fp if static_class == "fingerprinting-likely" else clean
        return agree / total if total else 0.0


class StaticReducer(Reducer):
    """Static verdicts for every crawled script + static/dynamic cross-tab.

    Runs :func:`repro.js.static.verdict_for_source` over each observation's
    recorded script sources — content-addressed, so the thousands of copies
    of one vendor script cost one analysis — and accumulates per-script and
    per-site state whose merge is set/dict union (associative, commutative
    over disjoint site sets like every other reducer here).
    """

    def __init__(self, detector: Optional[FingerprintDetector] = None) -> None:
        super().__init__(detector)
        #: sha -> mutable row: verdict fields + the urls/domains seen with it.
        self.scripts: Dict[str, Dict[str, Any]] = {}
        self.site_class: Dict[str, str] = {}
        #: domain -> dynamic is_fingerprinting_site (decided sites only).
        self.dynamic_fp: Dict[str, bool] = {}
        self.dead: List[Tuple[str, str, str]] = []
        #: Execution-free recoveries, added by the stage's fetch probes.
        self.recovered: List[Tuple[str, str, str]] = []

    def ingest_site(self, observation, outcome) -> None:
        from repro.js.static import verdict_for_source

        site_rank = -1
        site_class = None
        for url in sorted(observation.script_sources):
            source = observation.script_sources[url]
            verdict = verdict_for_source(source, url)
            self._add_script(verdict, url, observation.domain)
            rank = _STATIC_SEVERITY.get(verdict.classification, 0)
            if rank > site_rank:
                site_rank, site_class = rank, verdict.classification
            if verdict.classification == "fingerprinting-likely" and any(
                error.startswith(f"{url}:") for error in observation.script_errors
            ):
                # The dynamic run of this script died; the static verdict is
                # the only attribution signal left for it.
                self.dead.append((observation.domain, url, verdict.classification))
        if site_class is not None:
            self.site_class[observation.domain] = site_class
        if observation.success and outcome is not None:
            self.dynamic_fp[observation.domain] = outcome.is_fingerprinting_site
        obs_layer.inc("static.sites")

    def _add_script(self, verdict, url: str, domain: str) -> None:
        row = self.scripts.get(verdict.sha)
        if row is None:
            row = verdict.to_row()
            row["urls"] = set()
            row["domains"] = set()
            self.scripts[verdict.sha] = row
            obs_layer.inc("static.scripts.distinct")
        row["urls"].add(url)
        row["domains"].add(domain)

    def add_recovery(self, domain: str, reason: str, classification: str) -> None:
        """Record one execution-free (fetch-probe) site recovery."""
        self.recovered.append((domain, reason, classification))

    def merge(self, other: "StaticReducer") -> "StaticReducer":
        for sha, theirs in other.scripts.items():
            mine = self.scripts.get(sha)
            if mine is None:
                self.scripts[sha] = theirs
            else:
                mine["urls"] |= theirs["urls"]
                mine["domains"] |= theirs["domains"]
        self.site_class.update(other.site_class)
        self.dynamic_fp.update(other.dynamic_fp)
        self.dead.extend(other.dead)
        self.recovered.extend(other.recovered)
        return self

    def finalize(self) -> StaticReport:
        rows = []
        class_counts: Dict[str, int] = {}
        skippable = 0
        for sha in self.scripts:
            row = dict(self.scripts[sha])
            row["urls"] = sorted(row["urls"])
            row["sites"] = len(row.pop("domains"))
            rows.append(row)
            cls = row["classification"]
            class_counts[cls] = class_counts.get(cls, 0) + 1
            if row["skippable"]:
                skippable += 1
        rows.sort(
            key=lambda r: (
                -_STATIC_SEVERITY.get(r["classification"], 0),
                -r["sites"],
                r["sha"],
            )
        )
        agreement: Dict[str, Dict[str, int]] = {}
        for domain, dynamic in self.dynamic_fp.items():
            static_class = self.site_class.get(domain)
            if static_class is None:
                continue
            row = agreement.setdefault(
                static_class, {"dynamic-fp": 0, "dynamic-clean": 0}
            )
            row["dynamic-fp" if dynamic else "dynamic-clean"] += 1
        return StaticReport(
            script_rows=tuple(rows),
            class_counts=class_counts,
            agreement=agreement,
            dead_scripts=tuple(sorted(set(self.dead))),
            static_only=tuple(sorted(set(self.recovered))),
            skippable_scripts=skippable,
        )


# -- bundle: one detection pass feeding every member --------------------------------


@dataclass(frozen=True)
class BundleSpec:
    """Picklable recipe for an :class:`AnalysisBundle`.

    Shipped to shard workers (a spec is tiny; the bundle it builds is not),
    and hashed — via :meth:`fingerprint` — into the block-partial cache keys
    of the reduce stage.  ``include_detection=False`` drops the full
    per-site outcome map so a bundle's memory footprint is bounded by the
    number of *distinct canvases and FP sites*, not by dataset bulk — the
    CLI's streaming mode.
    """

    min_size: int = MIN_CANVAS_SIZE
    include_detection: bool = True
    include_serving: bool = False
    dns: Any = field(default=None, hash=False, compare=False)

    def build(self) -> "AnalysisBundle":
        detector = FingerprintDetector(min_size=self.min_size)
        members: Dict[str, Reducer] = {}
        if self.include_detection:
            members["detection"] = DetectionReducer(detector)
        members["stats"] = ExtractionStatsReducer(detector)
        members["cluster"] = ClusterReducer(detector)
        members["prevalence"] = PrevalenceReducer(detector)
        members["reach"] = ReachReducer(detector)
        members["render_twice"] = RenderTwiceReducer(detector)
        if self.include_serving:
            members["serving"] = ServingContextReducer(self.dns, detector)
        return AnalysisBundle(spec=self, members=members, detector=detector)

    def fingerprint(self) -> Dict[str, Any]:
        """JSON-able identity for cache keys (``dns`` content is hashed by
        the stage separately when serving analysis is bundled)."""
        return {
            "reducers": REDUCER_VERSION,
            "min_size": self.min_size,
            "detection": self.include_detection,
            "serving": self.include_serving,
        }


class AnalysisBundle:
    """A set of reducers sharing one detection pass per observation.

    Tracks the ingested site set so :class:`AnalysisFold` can verify that
    shard partials are disjoint and cover the merged dataset exactly before
    trusting a merge of partials over a re-fold.
    """

    def __init__(
        self,
        spec: BundleSpec,
        members: Dict[str, Reducer],
        detector: FingerprintDetector,
    ) -> None:
        self.spec = spec
        self.members = members
        self.detector = detector
        self.seen: Set[str] = set()
        self.count = 0

    def ingest(self, observation: SiteObservation) -> None:
        outcome = self.detector.detect(observation) if observation.success else None
        for member in self.members.values():
            member.ingest_site(observation, outcome)
        self.seen.add(observation.domain)
        self.count += 1
        obs_layer.inc("analysis.ingest.sites")

    def ingest_many(self, observations: Iterable[SiteObservation]) -> None:
        for observation in observations:
            self.ingest(observation)

    def merge(self, other: "AnalysisBundle") -> "AnalysisBundle":
        if self.seen & other.seen:
            raise ValueError(
                "overlapping analysis partials: "
                f"{sorted(self.seen & other.seen)[:3]}..."
            )
        for name, member in self.members.items():
            member.merge(other.members[name])
        self.seen |= other.seen
        self.count += other.count
        obs_layer.inc("analysis.merge.partials")
        return self

    def finalize_member(self, name: str) -> Any:
        with obs_layer.span("analysis.finalize", member=name):
            obs_layer.inc("analysis.finalize.calls")
            return self.members[name].finalize()

    def finalize(self) -> Dict[str, Any]:
        return {name: self.finalize_member(name) for name in self.members}


class AnalysisFold:
    """Collects per-shard bundle partials and merges them against the
    merged dataset.

    The happy path merges worker-shipped partials (no re-ingestion in the
    parent).  If the partials do not partition the merged dataset exactly —
    a supervised re-dispatch overlapping a salvaged checkpoint, or a
    duplicate-domain merge picking a different observation than a shard saw
    — the fold falls back to re-ingesting the merged dataset, so the result
    is always identical to a serial batch analysis.
    """

    def __init__(self, spec: BundleSpec) -> None:
        self.spec = spec
        self.partials: List[AnalysisBundle] = []

    def fold_dataset(self, dataset) -> AnalysisBundle:
        """Fold one shard dataset into a new partial (in-process path)."""
        partial = self.spec.build()
        with obs_layer.span(
            "analysis.ingest", sites=len(dataset.observations), label=dataset.label
        ):
            partial.ingest_many(dataset.observations)
        self.partials.append(partial)
        return partial

    def add_partial(self, partial: Optional[AnalysisBundle]) -> None:
        """Adopt a worker-shipped partial (``None`` is ignored)."""
        if partial is not None:
            self.partials.append(partial)

    def merge(self, merged_dataset) -> AnalysisBundle:
        """The merged bundle for the final dataset, re-folding if needed."""
        expected = [o.domain for o in merged_dataset.observations]
        with obs_layer.span("analysis.merge", partials=len(self.partials)):
            if self._partials_partition(expected):
                bundle = self.spec.build()
                for partial in self.partials:
                    bundle.merge(partial)
                return bundle
        obs_layer.inc("analysis.fold.refolds")
        bundle = self.spec.build()
        with obs_layer.span("analysis.ingest", sites=len(expected), label="refold"):
            bundle.ingest_many(merged_dataset.observations)
        return bundle

    def _partials_partition(self, expected_domains: List[str]) -> bool:
        if not self.partials:
            return False
        union: Set[str] = set()
        total_seen = 0
        total_count = 0
        for partial in self.partials:
            total_seen += len(partial.seen)
            total_count += partial.count
            union |= partial.seen
        return (
            total_seen == len(union)
            and total_count == total_seen
            and union == set(expected_domains)
            and len(expected_domains) == len(set(expected_domains))
        )
