"""§4.1 — Prevalence of canvas fingerprinting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

from repro.core.detection import DetectionOutcome
from repro.crawler.crawl import CrawlDataset

__all__ = ["PopulationPrevalence", "PrevalenceReport", "compute_prevalence"]


@dataclass
class PopulationPrevalence:
    """Prevalence statistics for one population."""

    population: str
    sites_crawled: int
    sites_successful: int
    fp_sites: int
    total_fingerprintable_canvases: int
    canvases_per_fp_site: List[int]

    @property
    def prevalence(self) -> float:
        """Fraction of successfully crawled sites that fingerprint."""
        return self.fp_sites / self.sites_successful if self.sites_successful else 0.0

    @property
    def mean_canvases(self) -> float:
        if not self.canvases_per_fp_site:
            return 0.0
        return sum(self.canvases_per_fp_site) / len(self.canvases_per_fp_site)

    @property
    def median_canvases(self) -> float:
        values = sorted(self.canvases_per_fp_site)
        if not values:
            return 0.0
        n = len(values)
        mid = n // 2
        return float(values[mid]) if n % 2 else (values[mid - 1] + values[mid]) / 2.0

    @property
    def max_canvases(self) -> int:
        return max(self.canvases_per_fp_site, default=0)


@dataclass
class PrevalenceReport:
    top: PopulationPrevalence
    tail: PopulationPrevalence

    def population(self, name: str) -> PopulationPrevalence:
        if name == "top":
            return self.top
        if name == "tail":
            return self.tail
        raise KeyError(name)

    @property
    def combined_canvases_per_site(self) -> List[int]:
        return self.top.canvases_per_fp_site + self.tail.canvases_per_fp_site


def compute_prevalence(
    dataset: CrawlDataset, outcomes: Mapping[str, DetectionOutcome]
) -> PrevalenceReport:
    """Compute §4.1's prevalence statistics from detection outcomes.

    Thin batch driver over :class:`repro.core.reducers.PrevalenceReducer` —
    the streaming path and this one share a single code path.  The
    ``canvases_per_fp_site`` lists come out in (rank, domain) order — the
    crawl target order within each population — which is also the dataset
    order for every crawl this study produces, so the report is invariant
    under shard interleaving.
    """
    from repro.core.reducers import PrevalenceReducer

    reducer = PrevalenceReducer()
    for obs in dataset.observations:
        reducer.ingest_site(obs, outcomes.get(obs.domain))
    return reducer.finalize()
