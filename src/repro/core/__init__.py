"""The paper's contribution: detection, clustering, attribution and context
analysis of canvas fingerprinting, over crawler observations."""

from repro.core.records import CanvasApiCall, CanvasExtraction, PropertyAccess, SiteObservation
from repro.core.detection import FingerprintDetector, DetectionOutcome, ExclusionReason
from repro.core.clustering import CanvasCluster, cluster_canvases
from repro.core.attribution import AttributionMethod, VendorAttributor, VendorSignature

__all__ = [
    "CanvasApiCall",
    "CanvasExtraction",
    "PropertyAccess",
    "SiteObservation",
    "FingerprintDetector",
    "DetectionOutcome",
    "ExclusionReason",
    "CanvasCluster",
    "cluster_canvases",
    "AttributionMethod",
    "VendorAttributor",
    "VendorSignature",
]
