"""§4.2 — Reach of fingerprinting services and top/tail canvas overlap."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Set, Tuple

from repro.core.clustering import CanvasCluster, rank_clusters

__all__ = ["ReachReport", "compute_reach"]


@dataclass
class ReachReport:
    """All §4.2 statistics."""

    unique_canvases_top: int
    unique_canvases_tail: int
    #: Figure 1's series: (top-site count, tail-site count) per rank.
    top50: List[Tuple[int, int]]
    #: Share of FP sites covered by the six most frequent canvases.
    top6_share_top: float
    top6_share_tail: float
    #: Fraction of tail FP sites sharing a canvas with some popular site.
    tail_overlap_fraction: float
    #: Sizes of the largest tail-only canvas groups (descending).
    tail_only_group_sizes: List[int]
    #: Maximum reach of any single canvas as a fraction of popular sites
    #: crawled successfully (the §4.2 cross-site-tracking upper bound).
    max_reach_fraction_top: float


def compute_reach(
    clusters: Mapping[str, CanvasCluster],
    fp_sites_top: Set[str],
    fp_sites_tail: Set[str],
    successful_top: int,
) -> ReachReport:
    """Compute reach/overlap statistics from canvas clusters."""
    top_clusters = [c for c in clusters.values() if c.site_count("top") > 0]
    tail_clusters = [c for c in clusters.values() if c.site_count("tail") > 0]

    ranked = rank_clusters(clusters, "top")
    top50 = [(c.site_count("top"), c.site_count("tail")) for c in ranked[:50]]

    def covered_share(population: str, fp_sites: Set[str], n: int = 6) -> float:
        if not fp_sites:
            return 0.0
        covered: Set[str] = set()
        for cluster in ranked[:n]:
            covered |= cluster.sites.get(population, set())
        return len(covered & fp_sites) / len(fp_sites)

    # Overlap: tail FP sites that rendered at least one canvas also seen on
    # a popular site.
    tail_sites_overlapping: Set[str] = set()
    tail_only_sizes: List[int] = []
    for cluster in clusters.values():
        tail_sites = cluster.sites.get("tail", set())
        if not tail_sites:
            continue
        if cluster.site_count("top") > 0:
            tail_sites_overlapping |= tail_sites
        else:
            tail_only_sizes.append(len(tail_sites))
    tail_only_sizes.sort(reverse=True)

    overlap_fraction = (
        len(tail_sites_overlapping & fp_sites_tail) / len(fp_sites_tail) if fp_sites_tail else 0.0
    )

    max_reach = 0.0
    if ranked and successful_top:
        max_reach = ranked[0].site_count("top") / successful_top

    return ReachReport(
        unique_canvases_top=len(top_clusters),
        unique_canvases_tail=len(tail_clusters),
        top50=top50,
        top6_share_top=covered_share("top", fp_sites_top),
        top6_share_tail=covered_share("tail", fp_sites_tail),
        tail_overlap_fraction=overlap_fraction,
        tail_only_group_sizes=tail_only_sizes,
        max_reach_fraction_top=max_reach,
    )
