"""§4.3 / Appendix A.3 — Attributing test canvases to fingerprinting vendors.

Ground truth is harvested exactly the way the paper describes, in order of
precedence:

1. **Demo** — crawl the vendor's public demo page and record the test
   canvases it renders.
2. **Known customer** — crawl known customer sites, always confirmed with
   the script pattern.
3. **Script pattern** — a URL substring/regex associated with the vendor's
   fingerprinting script.

Imperva is the special case: it renders a *unique canvas per customer site*,
so canvas grouping cannot find it; its customers are identified purely by
the script-URL regex of Table 3.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.detection import DetectionOutcome
from repro.core.records import SiteObservation

__all__ = [
    "AttributionMethod",
    "VendorSignature",
    "SiteAttribution",
    "VendorAttributor",
    "IMPERVA_URL_REGEX",
]

#: Table 3's Imperva regex, verbatim: a bare letters-and-dashes path.
IMPERVA_URL_REGEX = re.compile(r"https?://(?:www\.)?[^/]+/([A-Za-z\-]+)$")


class AttributionMethod(str, enum.Enum):
    DEMO = "demo"
    KNOWN_CUSTOMER = "known-customer"
    SCRIPT_PATTERN = "script-pattern"


@dataclass
class VendorSignature:
    """Ground truth for one fingerprinting vendor."""

    name: str
    security: bool = False
    #: Canvas hashes harvested from the vendor's demo / customer sites.
    canvas_hashes: Set[str] = field(default_factory=set)
    #: URL substring identifying the vendor's script (Table 3 column 3).
    script_pattern: Optional[str] = None
    #: Full regex for vendors identified purely by URL shape (Imperva).
    url_regex: Optional["re.Pattern[str]"] = None
    methods: Tuple[AttributionMethod, ...] = ()

    def matches_script_url(self, url: Optional[str]) -> bool:
        if url is None:
            return False
        if self.script_pattern and self.script_pattern in url:
            return True
        if self.url_regex and self.url_regex.match(url):
            return True
        return False


@dataclass
class SiteAttribution:
    """Vendors attributed to one site, with the evidence used."""

    domain: str
    vendors: Set[str] = field(default_factory=set)
    #: vendor -> how it was identified on this site.
    evidence: Dict[str, str] = field(default_factory=dict)


class VendorAttributor:
    """Attributes fingerprinting sites to vendors via canvases + patterns."""

    def __init__(self, signatures: Iterable[VendorSignature]) -> None:
        self.signatures: List[VendorSignature] = list(signatures)
        by_name = {s.name for s in self.signatures}
        if len(by_name) != len(self.signatures):
            raise ValueError("duplicate vendor signatures")

    # -- ground-truth harvesting --------------------------------------------------------

    @staticmethod
    def harvest_canvases(outcome: DetectionOutcome) -> Set[str]:
        """Canvas hashes a (demo/customer) page rendered — its signature."""
        return {e.canvas_hash for e in outcome.fingerprintable}

    def signature(self, name: str) -> VendorSignature:
        for sig in self.signatures:
            if sig.name == name:
                return sig
        raise KeyError(name)

    # -- attribution ----------------------------------------------------------------------

    def attribute_site(
        self,
        observation: SiteObservation,
        outcome: DetectionOutcome,
    ) -> SiteAttribution:
        """Attribute one fingerprinting site to vendors.

        Canvas-hash matches take precedence (they survive every serving-mode
        evasion); script-URL patterns add vendors whose canvases cannot be
        grouped (Imperva) or confirm hash matches.
        """
        result = SiteAttribution(domain=observation.domain)
        site_hashes = {e.canvas_hash for e in outcome.fingerprintable}
        script_urls = {e.script_url for e in outcome.fingerprintable if e.script_url}

        for sig in self.signatures:
            if sig.canvas_hashes and site_hashes & sig.canvas_hashes:
                result.vendors.add(sig.name)
                result.evidence[sig.name] = "canvas-match"
                continue
            if (sig.script_pattern or sig.url_regex) and any(
                sig.matches_script_url(u) for u in script_urls
            ):
                result.vendors.add(sig.name)
                result.evidence[sig.name] = "script-pattern"
        return result

    def attribute_all(
        self,
        observations: Mapping[str, SiteObservation],
        outcomes: Mapping[str, DetectionOutcome],
    ) -> Dict[str, SiteAttribution]:
        """Attribute every fingerprinting site in a crawl.

        Thin batch driver over
        :class:`repro.core.reducers.AttributionReducer` — the streaming
        path and this one share a single code path.
        """
        from repro.core.reducers import AttributionReducer

        reducer = AttributionReducer(self)
        for domain, outcome in outcomes.items():
            obs = observations.get(domain)
            if obs is None:
                continue
            reducer.ingest_site(obs, outcome)
        return reducer.finalize()["attributions"]

    def vendor_site_counts(
        self,
        attributions: Mapping[str, SiteAttribution],
        populations: Mapping[str, str],
    ) -> Dict[str, Dict[str, int]]:
        """Table 1's cells: vendor -> population -> site count."""
        counts: Dict[str, Dict[str, int]] = {s.name: {"top": 0, "tail": 0} for s in self.signatures}
        for domain, attribution in attributions.items():
            population = populations.get(domain, "top")
            for vendor in attribution.vendors:
                counts[vendor][population] = counts[vendor].get(population, 0) + 1
        return counts

    def attributed_site_totals(
        self,
        attributions: Mapping[str, SiteAttribution],
        populations: Mapping[str, str],
    ) -> Dict[str, int]:
        """Table 1's "Total Sites" row: sites linked to >= 1 vendor."""
        totals = {"top": 0, "tail": 0}
        for domain, attribution in attributions.items():
            if attribution.vendors:
                population = populations.get(domain, "top")
                totals[population] = totals.get(population, 0) + 1
        return totals
