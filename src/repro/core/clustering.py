"""§4.2 — Canvas clustering.

Fingerprinting scripts are deterministic and the crawler visits every site
with the same browser and machine, so every site running a given script
produces *byte-identical* ``toDataURL`` output.  Grouping identical canvases
therefore groups sites by fingerprinting script — "fingerprinting the
fingerprinters".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.core.detection import DetectionOutcome
from repro.core.records import CanvasExtraction

__all__ = ["CanvasCluster", "cluster_canvases", "rank_clusters"]


@dataclass
class CanvasCluster:
    """All observations of one distinct test canvas across the crawl."""

    canvas_hash: str
    sample_data_url: str
    width: int = 0
    height: int = 0
    #: population -> set of domains rendering this canvas.
    sites: Dict[str, Set[str]] = field(default_factory=dict)
    #: script URLs observed generating this canvas.
    script_urls: Set[str] = field(default_factory=set)
    extraction_count: int = 0
    #: domain -> number of times this canvas was extracted there (the
    #: render-twice inconsistency check shows up as counts >= 2).
    extractions_per_site: Dict[str, int] = field(default_factory=dict)

    def site_count(self, population: Optional[str] = None) -> int:
        if population is not None:
            return len(self.sites.get(population, ()))
        return len(self.all_sites())

    def all_sites(self) -> Set[str]:
        out: Set[str] = set()
        for domains in self.sites.values():
            out |= domains
        return out

    def add(self, domain: str, population: str, extraction: CanvasExtraction) -> None:
        self.sites.setdefault(population, set()).add(domain)
        if extraction.script_url:
            self.script_urls.add(extraction.script_url)
        self.extraction_count += 1
        self.extractions_per_site[domain] = self.extractions_per_site.get(domain, 0) + 1
        if not self.width:
            self.width, self.height = extraction.width, extraction.height

    def merge_from(self, other: "CanvasCluster") -> None:
        """Absorb another partial cluster of the *same* canvas hash.

        Order-insensitive: all observations of one hash share the identical
        data URL (sha256 identity), hence identical width/height, so which
        partial supplies the sample/dimensions cannot change the content.
        """
        for population, domains in other.sites.items():
            self.sites.setdefault(population, set()).update(domains)
        self.script_urls |= other.script_urls
        self.extraction_count += other.extraction_count
        for domain, count in other.extractions_per_site.items():
            self.extractions_per_site[domain] = (
                self.extractions_per_site.get(domain, 0) + count
            )
        if not self.width:
            self.width, self.height = other.width, other.height


def cluster_canvases(
    outcomes: Mapping[str, DetectionOutcome],
    populations: Mapping[str, str],
) -> Dict[str, CanvasCluster]:
    """Group fingerprintable canvases by identical content.

    ``outcomes`` maps domain -> detection outcome; ``populations`` maps
    domain -> "top" / "tail".  Returns clusters keyed by canvas hash.

    Thin batch driver over :class:`repro.core.reducers.ClusterReducer` —
    the streaming path and this one share a single code path.
    """
    from repro.core.reducers import ClusterReducer

    reducer = ClusterReducer()
    for domain, outcome in outcomes.items():
        reducer.ingest_outcome(domain, populations.get(domain, "top"), outcome)
    return reducer.finalize()


def rank_clusters(
    clusters: Mapping[str, CanvasCluster], population: str = "top"
) -> List[CanvasCluster]:
    """Clusters sorted by popularity in one population (Figure 1's x-axis).

    Ties break deterministically by canvas hash.
    """
    return sorted(
        clusters.values(),
        key=lambda c: (-c.site_count(population), c.canvas_hash),
    )
