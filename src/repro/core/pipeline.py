"""End-to-end study orchestration.

``run_study`` reproduces the paper's whole methodology over a synthetic (or
any) :class:`~repro.net.server.Network`:

1. control crawl of the top + tail populations (§3.1),
2. fingerprintability detection (§3.2),
3. canvas clustering and reach (§4.2),
4. vendor ground-truth harvesting (demo pages, known customers, script
   patterns — A.3) and attribution (§4.3),
5. blocklist context (§5.1) and serving-context evasions (§5.2),
6. optional ad-blocker crawls (Table 2) and §5.3 randomization stats,
7. optional cross-machine validation crawl (§3.1).

Since the stage-graph refactor this module is a thin assembly layer: the
steps above are typed stages in :mod:`repro.core.stages.study`, executed by
:class:`~repro.core.stages.graph.StageGraph`.  ``run_study`` builds the
:class:`~repro.core.stages.study.StudyContext`, executes the graph (with
optional parallel crawling via ``jobs`` and content-addressed caching via
``cache_dir``) and assembles the artifacts into a :class:`StudyResult`.
The result is identical to the old monolithic pipeline's, whatever the
worker count or cache temperature.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import obs as obs_layer
from repro import perf
from repro.browser.profile import BrowserProfile
from repro.canvas.device import APPLE_M1, DeviceProfile, INTEL_UBUNTU
from repro.core.attribution import (
    IMPERVA_URL_REGEX,
    AttributionMethod,
    SiteAttribution,
    VendorSignature,
)
from repro.core.clustering import CanvasCluster, cluster_canvases
from repro.core.context import BlocklistContext
from repro.core.detection import DetectionOutcome, FingerprintDetector
from repro.core.evasion import AdblockImpact, ServingContext, render_twice_fraction
from repro.core.prevalence import PrevalenceReport
from repro.core.reach import ReachReport
from repro.core.reducers import StaticReport
from repro.core.stages.cache import StageCache
from repro.core.stages.stage import StageTiming
from repro.core.stages.study import StudyContext, build_study_graph
from repro.crawler.collector import CanvasCollector
from repro.crawler.crawl import CrawlDataset, CrawlTarget
from repro.crawler.resilience import PageBudget, RetryPolicy
from repro.crawler.shards import plan_shards, run_sharded_crawl
from repro.crawler.supervisor import SupervisorConfig
from repro.net.server import Network
from repro.net.url import URL
from repro.obs.recorder import RunRecorder, resolve_run_dir

__all__ = ["VendorKnowledge", "StudyResult", "run_study", "harvest_vendor_signatures"]


@dataclass(frozen=True)
class VendorKnowledge:
    """Public knowledge about one vendor, as the authors gathered it (A.3)."""

    name: str
    security: bool = False
    demo_url: Optional[str] = None
    known_customers: Tuple[str, ...] = ()
    script_pattern: Optional[str] = None
    uses_url_regex: bool = False  # Imperva's special case

    @property
    def methods(self) -> Tuple[AttributionMethod, ...]:
        methods: List[AttributionMethod] = []
        if self.demo_url:
            methods.append(AttributionMethod.DEMO)
        if self.known_customers:
            methods.append(AttributionMethod.KNOWN_CUSTOMER)
        if self.script_pattern or self.uses_url_regex:
            methods.append(AttributionMethod.SCRIPT_PATTERN)
        return tuple(methods)


def harvest_vendor_signatures(
    network: Network,
    knowledge: Sequence[VendorKnowledge],
    control: CrawlDataset,
    device: DeviceProfile = INTEL_UBUNTU,
) -> List[VendorSignature]:
    """Build vendor signatures exactly as Appendix A.3 describes.

    Precedence: demo page crawl > known-customer crawl (confirmed by script
    pattern) > script pattern over the main crawl's scripts.
    """
    from repro.browser.browser import Browser

    detector = FingerprintDetector()
    collector = CanvasCollector(Browser(network, BrowserProfile(device=device)))
    signatures: List[VendorSignature] = []

    for vendor in knowledge:
        hashes: Set[str] = set()

        if vendor.demo_url is not None:
            url = URL.parse(vendor.demo_url)
            obs = collector.collect(url.host, rank=0, population="top")
            outcome = detector.detect(obs)
            hashes |= {e.canvas_hash for e in outcome.fingerprintable}

        if not hashes and vendor.known_customers and vendor.script_pattern:
            for customer in vendor.known_customers:
                obs = collector.collect(customer, rank=0, population="top")
                outcome = detector.detect(obs)
                for extraction in outcome.fingerprintable:
                    # Always confirmed with the script pattern (A.3): the
                    # customer may run several fingerprinters.
                    if extraction.script_url and vendor.script_pattern in extraction.script_url:
                        hashes.add(extraction.canvas_hash)

        if not hashes and vendor.script_pattern and not vendor.uses_url_regex:
            # Pattern-only vendors: associate canvases via the main crawl.
            for obs in control.successful():
                outcome = detector.detect(obs)
                for extraction in outcome.fingerprintable:
                    if extraction.script_url and vendor.script_pattern in extraction.script_url:
                        hashes.add(extraction.canvas_hash)

        signatures.append(
            VendorSignature(
                name=vendor.name,
                security=vendor.security,
                canvas_hashes=hashes,
                script_pattern=vendor.script_pattern,
                url_regex=IMPERVA_URL_REGEX if vendor.uses_url_regex else None,
                methods=vendor.methods,
            )
        )
    return signatures


@dataclass
class StudyResult:
    """Everything the study produces — inputs to every table and figure."""

    control: CrawlDataset
    outcomes: Dict[str, DetectionOutcome]
    populations: Dict[str, str]
    clusters: Dict[str, CanvasCluster]
    prevalence: PrevalenceReport
    reach: ReachReport
    signatures: List[VendorSignature]
    attributions: Dict[str, SiteAttribution]
    vendor_counts: Dict[str, Dict[str, int]]
    vendor_totals: Dict[str, int]
    blocklist_context: Optional[BlocklistContext] = None
    serving_context: Optional[ServingContext] = None
    adblock_rows: Tuple[AdblockImpact, ...] = ()
    render_twice: float = 0.0
    cross_machine_consistent: Optional[bool] = None
    #: Static script verdicts + static/dynamic cross-validation (the
    #: ``static`` stage): per-script classifications, the agreement matrix
    #: against the dynamic detector, and execution-free recoveries on
    #: quarantined sites.
    static_verdicts: Optional[StaticReport] = None
    #: How each pipeline stage executed (wall time, cache hit or ran).
    #: Excluded from equality: a cached run must compare equal to an
    #: uncached one when the science is the same.
    stage_timings: Tuple[StageTiming, ...] = field(default=(), compare=False, repr=False)
    #: Render-acceleration counters accumulated over this study (per cache
    #: layer: hits, misses, hit_rate, evictions, miss/saved seconds).
    #: Excluded from equality for the same reason as ``stage_timings``: the
    #: caches are exactly transparent, so hit counts are not science.
    perf_counters: Dict[str, Dict[str, float]] = field(
        default_factory=dict, compare=False, repr=False
    )
    #: Unified observability metrics delta for this study (the same
    #: counters/gauges/histograms the run's ``trace.jsonl`` summary line
    #: carries — ``repro.obs summary`` totals come from these).  Excluded
    #: from equality: operational telemetry, not science.
    metrics: Dict[str, Any] = field(default_factory=dict, compare=False, repr=False)
    #: Sampling-profiler rollup (``REPRO_OBS_PROFILE=1``): self-time by
    #: site / vendor script / subsystem / stage, merged across every shard
    #: worker.  Empty when the profiler is off.  Excluded from equality —
    #: the profiler is exactly transparent, so samples are not science.
    profile: Dict[str, Any] = field(default_factory=dict, compare=False, repr=False)

    @property
    def fp_sites(self) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {"top": set(), "tail": set()}
        for domain, outcome in self.outcomes.items():
            if outcome.is_fingerprinting_site:
                out[self.populations.get(domain, "top")].add(domain)
        return out

    @property
    def quarantined(self) -> Dict[str, str]:
        """domain -> ``quarantined:<signal>`` for supervisor-quarantined sites.

        Non-empty only for supervised runs that hit poison sites; quarantined
        rows live inside ``control`` as failed observations, so every
        prevalence/reach denominator already accounts for them.
        """
        return self.control.quarantined_sites()


def run_study(
    network: Network,
    targets: Sequence[CrawlTarget],
    vendor_knowledge: Sequence[VendorKnowledge],
    easylist_text: str = "",
    easyprivacy_text: str = "",
    disconnect=None,
    ubo_extra_text: str = "",
    dns=None,
    include_adblock_crawls: bool = True,
    include_cross_machine: bool = False,
    cross_machine_sample: int = 200,
    retry_policy: Optional[RetryPolicy] = None,
    page_budget: Optional[PageBudget] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    stages: Optional[Sequence[str]] = None,
    render_cache: Optional[perf.RenderCacheConfig] = None,
    obs_dir: Optional[Union[str, Path]] = None,
    supervisor: Optional[SupervisorConfig] = None,
    js_prewarm: Optional[Sequence[str]] = None,
    static_triage: Optional[bool] = None,
) -> StudyResult:
    """Run the full measurement study over a network.

    ``retry_policy`` / ``page_budget`` thread the resilience layer through
    every crawl the study performs (control, ad-blocker, cross-machine), so
    the whole methodology holds up under transient faults — e.g. a
    :class:`~repro.net.faults.FaultyNetwork` wrapping ``network``.

    ``jobs`` shards every crawl across that many worker processes and
    ``cache_dir`` enables the content-addressed stage cache (warm re-runs
    load every artifact and perform zero page loads).  Neither changes the
    result: a parallel cached run returns a :class:`StudyResult` equal to a
    serial uncached one.  ``stages`` optionally restricts execution to the
    named stages plus their dependencies (see
    :data:`repro.core.stages.study.STAGE_DOCS`); the result then only
    carries the artifacts that were produced.

    ``render_cache`` overrides the render-acceleration configuration for
    this run (and, via the shard payloads, for every crawl worker).  The
    caches are exactly transparent — enabled, disabled, cold or warm, the
    study result is byte-identical; only ``StudyResult.perf_counters`` and
    the timing section change.

    ``supervisor`` opts every crawl into the shard supervisor of
    :mod:`repro.crawler.supervisor`: heartbeat-monitored workers, crash
    re-dispatch from the per-shard checkpoints, and bisecting poison-site
    quarantine, so a run whose workers die completes in degraded mode with
    every skipped site accounted as a ``quarantined:*`` failure row (see
    ``StudyResult.quarantined``).  Like ``jobs`` it is an execution knob:
    a no-fault supervised run returns an identical result.

    ``js_prewarm`` hands every crawl worker a list of script sources to
    compile into its warm JS cache before the first page load (typically
    :func:`repro.webgen.vendors.prewarm_sources`, passed as plain strings so
    this layer never imports ``webgen``).  Another pure execution knob:
    compilation is exactly transparent, so it shifts ``js.cache`` counters
    and latency, never the artifacts.

    ``static_triage`` opts every crawl worker into static-analysis triage:
    scripts the analyzer proves canvas-inert and effect-free toward the rest
    of the page are deferred and never executed.  ``None`` honours the
    ``REPRO_JS_STATIC_TRIAGE`` environment variable.  A third pure execution
    knob: datasets are byte-identical with triage on or off; only the
    ``js.static.triage`` counters and crawl latency move.

    ``obs_dir`` names the directory that receives this run's observability
    artifacts (``manifest.json`` + ``trace.jsonl``, inspectable with
    ``python -m repro.obs``).  Falls back to ``REPRO_OBS_DIR``, then — when
    tracing is on (``REPRO_OBS_TRACE=1``) and a ``cache_dir`` is given — to
    ``<cache_dir>/obs``.  ``StudyResult.metrics`` always carries the same
    metrics delta the trace summary line records, artifacts or not.
    """
    if render_cache is not None:
        perf.configure(render_cache)
    # Sampling profiler (REPRO_OBS_PROFILE=1): start it for the study
    # process and discard any samples taken before this run, so the run's
    # rollup covers exactly this study.  Shard workers start their own
    # sampler from the same ObsConfig carried in their payloads.
    if obs_layer.profiler.maybe_start(obs_layer.config()):
        obs_layer.profiler.drain()
    perf_before = perf.PERF.snapshot()
    metrics_before = obs_layer.METRICS.snapshot()
    cache = StageCache(cache_dir) if cache_dir is not None else None
    ctx = StudyContext(
        network=network,
        targets=targets,
        vendor_knowledge=vendor_knowledge,
        easylist_text=easylist_text,
        easyprivacy_text=easyprivacy_text,
        disconnect=disconnect,
        ubo_extra_text=ubo_extra_text,
        dns=dns,
        include_adblock_crawls=include_adblock_crawls,
        include_cross_machine=include_cross_machine,
        cross_machine_sample=cross_machine_sample,
        retry_policy=retry_policy,
        page_budget=page_budget,
        jobs=jobs,
        checkpoint_dir=Path(cache_dir) / "shards" if cache_dir is not None else None,
        supervisor=supervisor,
        js_prewarm=js_prewarm,
        static_triage=static_triage,
    )
    graph = build_study_graph(ctx, cache=cache)

    run_dir = resolve_run_dir(
        obs_dir, Path(cache_dir) / "obs" if cache_dir is not None else None
    )
    recorder: Optional[RunRecorder] = None
    if run_dir is not None:
        planned = plan_shards(targets, max(1, jobs))
        recorder = RunRecorder(
            run_dir,
            label="study",
            shard_plan={
                "shards": len(planned),
                "jobs": jobs,
                "sizes": [len(shard) for shard in planned],
            },
        ).start(metrics_before)

    with obs_layer.span("study.run", targets=len(targets), jobs=jobs):
        run = graph.execute(ctx, only=stages)
    result = _assemble_result(ctx, run)
    result.perf_counters = perf.diff_snapshots(perf_before, perf.PERF.snapshot())
    # Fold render-cache wins into the unified metrics, then window them:
    # StudyResult.metrics is the same delta the trace summary line carries.
    obs_layer.absorb_perf(obs_layer.METRICS, result.perf_counters)
    result.metrics = obs_layer.diff_metric_snapshots(
        metrics_before, obs_layer.METRICS.snapshot()
    )
    # Drain this run's samples (the parent's own, plus every worker delta
    # ingested with the shard payloads) whether or not artifacts are being
    # written — a later run must never inherit them.
    profile_snapshot = obs_layer.profiler.drain()
    if profile_snapshot:
        result.profile = obs_layer.profiler.rollup(profile_snapshot)
    if recorder is not None:
        digest = hashlib.sha256(
            json.dumps(run.keys, sort_keys=True).encode("utf-8")
        ).hexdigest()[:16]
        recorder.finish(
            manifest_update={"config_digest": digest, "stage_keys": run.keys},
            health=asdict(result.control.health()),
            stage_timings=tuple(run.timings),
            profile=profile_snapshot,
        )
    return result


def _assemble_result(ctx: StudyContext, run) -> StudyResult:
    """Fold graph artifacts into a :class:`StudyResult` (cheap, pure)."""
    artifacts = run.artifacts
    control = artifacts.get("crawl.control", CrawlDataset(label="control"))
    outcomes = artifacts.get("detect", {})
    attribution = artifacts.get(
        "attribution", {"attributions": {}, "vendor_counts": {}, "vendor_totals": {}}
    )
    result = StudyResult(
        control=control,
        outcomes=outcomes,
        populations=control.populations(),
        clusters=artifacts.get("cluster", {}),
        prevalence=artifacts.get("prevalence"),
        reach=artifacts.get("reach"),
        signatures=artifacts.get("signatures", []),
        attributions=attribution["attributions"],
        vendor_counts=attribution["vendor_counts"],
        vendor_totals=attribution["vendor_totals"],
        render_twice=render_twice_fraction(outcomes),
        stage_timings=tuple(run.timings),
    )
    result.blocklist_context = artifacts.get("blocklist_context")
    result.serving_context = artifacts.get("serving_context")
    result.adblock_rows = tuple(artifacts.get("adblock_rows", ()))
    result.cross_machine_consistent = artifacts.get("cross_machine")
    result.static_verdicts = artifacts.get("static")
    return result


def validate_cross_machine(
    network: Network,
    targets: Sequence[CrawlTarget],
    detector: Optional[FingerprintDetector] = None,
    devices: Sequence[DeviceProfile] = (INTEL_UBUNTU, APPLE_M1),
    retry_policy: Optional[RetryPolicy] = None,
    page_budget: Optional[PageBudget] = None,
    jobs: int = 1,
    supervisor: Optional[SupervisorConfig] = None,
) -> bool:
    """§3.1's validation, generalized to any device fleet.

    Recrawl the targets on every device profile and check that the
    canvas-equality site groupings agree across all of them — even though
    each device renders the canvases to different bytes.
    """
    detector = detector or FingerprintDetector()

    def grouping(device: DeviceProfile) -> Tuple[Tuple[str, ...], ...]:
        dataset = run_sharded_crawl(
            network,
            targets,
            BrowserProfile(device=device),
            label=device.name,
            jobs=jobs,
            retry_policy=retry_policy,
            page_budget=page_budget,
            supervisor=supervisor,
        )
        outcomes = detector.detect_all(dataset.successful())
        clusters = cluster_canvases(outcomes, dataset.populations())
        groups = [tuple(sorted(c.all_sites())) for c in clusters.values() if c.all_sites()]
        return tuple(sorted(groups))

    if len(devices) < 2:
        raise ValueError("cross-machine validation needs at least two devices")
    reference = grouping(devices[0])
    return all(grouping(device) == reference for device in devices[1:])
