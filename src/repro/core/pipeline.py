"""End-to-end study orchestration.

``run_study`` reproduces the paper's whole methodology over a synthetic (or
any) :class:`~repro.net.server.Network`:

1. control crawl of the top + tail populations (§3.1),
2. fingerprintability detection (§3.2),
3. canvas clustering and reach (§4.2),
4. vendor ground-truth harvesting (demo pages, known customers, script
   patterns — A.3) and attribution (§4.3),
5. blocklist context (§5.1) and serving-context evasions (§5.2),
6. optional ad-blocker crawls (Table 2) and §5.3 randomization stats,
7. optional cross-machine validation crawl (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.blocklists.matcher import RuleMatcher
from repro.browser.extensions import AdBlockerExtension
from repro.browser.profile import BrowserProfile
from repro.canvas.device import APPLE_M1, DeviceProfile, INTEL_UBUNTU
from repro.core.attribution import (
    IMPERVA_URL_REGEX,
    AttributionMethod,
    SiteAttribution,
    VendorAttributor,
    VendorSignature,
)
from repro.core.clustering import CanvasCluster, cluster_canvases
from repro.core.context import BlocklistContext, analyze_blocklist_context
from repro.core.detection import DetectionOutcome, FingerprintDetector
from repro.core.evasion import (
    AdblockImpact,
    ServingContext,
    analyze_serving_context,
    compare_adblock_crawls,
    render_twice_fraction,
)
from repro.core.prevalence import PrevalenceReport, compute_prevalence
from repro.core.reach import ReachReport, compute_reach
from repro.crawler.collector import CanvasCollector
from repro.crawler.crawl import CrawlDataset, CrawlTarget, run_crawl
from repro.crawler.resilience import PageBudget, RetryPolicy
from repro.net.server import Network
from repro.net.url import URL

__all__ = ["VendorKnowledge", "StudyResult", "run_study", "harvest_vendor_signatures"]


@dataclass(frozen=True)
class VendorKnowledge:
    """Public knowledge about one vendor, as the authors gathered it (A.3)."""

    name: str
    security: bool = False
    demo_url: Optional[str] = None
    known_customers: Tuple[str, ...] = ()
    script_pattern: Optional[str] = None
    uses_url_regex: bool = False  # Imperva's special case

    @property
    def methods(self) -> Tuple[AttributionMethod, ...]:
        methods: List[AttributionMethod] = []
        if self.demo_url:
            methods.append(AttributionMethod.DEMO)
        if self.known_customers:
            methods.append(AttributionMethod.KNOWN_CUSTOMER)
        if self.script_pattern or self.uses_url_regex:
            methods.append(AttributionMethod.SCRIPT_PATTERN)
        return tuple(methods)


def harvest_vendor_signatures(
    network: Network,
    knowledge: Sequence[VendorKnowledge],
    control: CrawlDataset,
    device: DeviceProfile = INTEL_UBUNTU,
) -> List[VendorSignature]:
    """Build vendor signatures exactly as Appendix A.3 describes.

    Precedence: demo page crawl > known-customer crawl (confirmed by script
    pattern) > script pattern over the main crawl's scripts.
    """
    from repro.browser.browser import Browser

    detector = FingerprintDetector()
    collector = CanvasCollector(Browser(network, BrowserProfile(device=device)))
    signatures: List[VendorSignature] = []

    for vendor in knowledge:
        hashes: Set[str] = set()

        if vendor.demo_url is not None:
            url = URL.parse(vendor.demo_url)
            obs = collector.collect(url.host, rank=0, population="top")
            outcome = detector.detect(obs)
            hashes |= {e.canvas_hash for e in outcome.fingerprintable}

        if not hashes and vendor.known_customers and vendor.script_pattern:
            for customer in vendor.known_customers:
                obs = collector.collect(customer, rank=0, population="top")
                outcome = detector.detect(obs)
                for extraction in outcome.fingerprintable:
                    # Always confirmed with the script pattern (A.3): the
                    # customer may run several fingerprinters.
                    if extraction.script_url and vendor.script_pattern in extraction.script_url:
                        hashes.add(extraction.canvas_hash)

        if not hashes and vendor.script_pattern and not vendor.uses_url_regex:
            # Pattern-only vendors: associate canvases via the main crawl.
            for obs in control.successful():
                outcome = detector.detect(obs)
                for extraction in outcome.fingerprintable:
                    if extraction.script_url and vendor.script_pattern in extraction.script_url:
                        hashes.add(extraction.canvas_hash)

        signatures.append(
            VendorSignature(
                name=vendor.name,
                security=vendor.security,
                canvas_hashes=hashes,
                script_pattern=vendor.script_pattern,
                url_regex=IMPERVA_URL_REGEX if vendor.uses_url_regex else None,
                methods=vendor.methods,
            )
        )
    return signatures


@dataclass
class StudyResult:
    """Everything the study produces — inputs to every table and figure."""

    control: CrawlDataset
    outcomes: Dict[str, DetectionOutcome]
    populations: Dict[str, str]
    clusters: Dict[str, CanvasCluster]
    prevalence: PrevalenceReport
    reach: ReachReport
    signatures: List[VendorSignature]
    attributions: Dict[str, SiteAttribution]
    vendor_counts: Dict[str, Dict[str, int]]
    vendor_totals: Dict[str, int]
    blocklist_context: Optional[BlocklistContext] = None
    serving_context: Optional[ServingContext] = None
    adblock_rows: Tuple[AdblockImpact, ...] = ()
    render_twice: float = 0.0
    cross_machine_consistent: Optional[bool] = None

    @property
    def fp_sites(self) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {"top": set(), "tail": set()}
        for domain, outcome in self.outcomes.items():
            if outcome.is_fingerprinting_site:
                out[self.populations.get(domain, "top")].add(domain)
        return out


def run_study(
    network: Network,
    targets: Sequence[CrawlTarget],
    vendor_knowledge: Sequence[VendorKnowledge],
    easylist_text: str = "",
    easyprivacy_text: str = "",
    disconnect=None,
    ubo_extra_text: str = "",
    dns=None,
    include_adblock_crawls: bool = True,
    include_cross_machine: bool = False,
    cross_machine_sample: int = 200,
    retry_policy: Optional[RetryPolicy] = None,
    page_budget: Optional[PageBudget] = None,
) -> StudyResult:
    """Run the full measurement study over a network.

    ``retry_policy`` / ``page_budget`` thread the resilience layer through
    every crawl the study performs (control, ad-blocker, cross-machine), so
    the whole methodology holds up under transient faults — e.g. a
    :class:`~repro.net.faults.FaultyNetwork` wrapping ``network``.
    """
    detector = FingerprintDetector()

    control = run_crawl(
        network,
        targets,
        BrowserProfile(device=INTEL_UBUNTU),
        label="control",
        retry_policy=retry_policy,
        page_budget=page_budget,
    )
    observations = control.by_domain()
    populations = control.populations()
    outcomes = detector.detect_all(control.successful())

    clusters = cluster_canvases(outcomes, populations)
    prevalence = compute_prevalence(control, outcomes)

    fp_top = {d for d, o in outcomes.items() if o.is_fingerprinting_site and populations[d] == "top"}
    fp_tail = {d for d, o in outcomes.items() if o.is_fingerprinting_site and populations[d] == "tail"}
    reach = compute_reach(clusters, fp_top, fp_tail, prevalence.top.sites_successful)

    signatures = harvest_vendor_signatures(network, vendor_knowledge, control)
    attributor = VendorAttributor(signatures)
    attributions = attributor.attribute_all(observations, outcomes)
    vendor_counts = attributor.vendor_site_counts(attributions, populations)
    vendor_totals = attributor.attributed_site_totals(attributions, populations)

    result = StudyResult(
        control=control,
        outcomes=outcomes,
        populations=populations,
        clusters=clusters,
        prevalence=prevalence,
        reach=reach,
        signatures=signatures,
        attributions=attributions,
        vendor_counts=vendor_counts,
        vendor_totals=vendor_totals,
        render_twice=render_twice_fraction(outcomes),
    )

    if easylist_text and easyprivacy_text and disconnect is not None:
        result.blocklist_context = analyze_blocklist_context(
            outcomes,
            populations,
            RuleMatcher.from_text(easylist_text, "easylist"),
            RuleMatcher.from_text(easyprivacy_text, "easyprivacy"),
            disconnect,
        )

    result.serving_context = analyze_serving_context(outcomes, populations, dns=dns)

    if include_adblock_crawls and easylist_text:
        easylist = RuleMatcher.from_text(easylist_text, "easylist")
        abp = AdBlockerExtension("Adblock Plus", [easylist])
        ubo_matchers = [easylist]
        extra = []
        if ubo_extra_text:
            extra.append(RuleMatcher.from_text(ubo_extra_text, "ubo-extra"))
        ubo = AdBlockerExtension("UBlock Origin", ubo_matchers, extra_matchers=extra)
        abp_crawl = run_crawl(
            network,
            targets,
            BrowserProfile(device=INTEL_UBUNTU, extensions=(abp,)),
            label="abp",
            retry_policy=retry_policy,
            page_budget=page_budget,
        )
        ubo_crawl = run_crawl(
            network,
            targets,
            BrowserProfile(device=INTEL_UBUNTU, extensions=(ubo,)),
            label="ubo",
            retry_policy=retry_policy,
            page_budget=page_budget,
        )
        result.adblock_rows = compare_adblock_crawls(
            control, {"Adblock Plus": abp_crawl, "UBlock Origin": ubo_crawl}, detector
        )

    if include_cross_machine:
        result.cross_machine_consistent = validate_cross_machine(
            network,
            targets[:cross_machine_sample],
            detector,
            retry_policy=retry_policy,
            page_budget=page_budget,
        )

    return result


def validate_cross_machine(
    network: Network,
    targets: Sequence[CrawlTarget],
    detector: Optional[FingerprintDetector] = None,
    devices: Sequence[DeviceProfile] = (INTEL_UBUNTU, APPLE_M1),
    retry_policy: Optional[RetryPolicy] = None,
    page_budget: Optional[PageBudget] = None,
) -> bool:
    """§3.1's validation, generalized to any device fleet.

    Recrawl the targets on every device profile and check that the
    canvas-equality site groupings agree across all of them — even though
    each device renders the canvases to different bytes.
    """
    detector = detector or FingerprintDetector()

    def grouping(device: DeviceProfile) -> Tuple[Tuple[str, ...], ...]:
        dataset = run_crawl(
            network,
            targets,
            BrowserProfile(device=device),
            label=device.name,
            retry_policy=retry_policy,
            page_budget=page_budget,
        )
        outcomes = detector.detect_all(dataset.successful())
        clusters = cluster_canvases(outcomes, dataset.populations())
        groups = [tuple(sorted(c.all_sites())) for c in clusters.values() if c.all_sites()]
        return tuple(sorted(groups))

    if len(devices) < 2:
        raise ValueError("cross-machine validation needs at least two devices")
    reference = grouping(devices[0])
    return all(grouping(device) == reference for device in devices[1:])
