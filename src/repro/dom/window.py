"""window/navigator/screen host objects."""

from __future__ import annotations

from repro.js.values import JSObject, NativeFunction, UNDEFINED

__all__ = ["make_navigator", "make_screen", "make_window"]


def make_navigator(device_name: str, webdriver: bool = False) -> JSObject:
    """Build a ``navigator`` object consistent with the crawl machine."""
    nav = JSObject()
    if device_name == "apple-m1":
        nav.set("platform", "MacIntel")
        nav.set(
            "userAgent",
            "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/124.0.0.0 Safari/537.36",
        )
    else:
        nav.set("platform", "Linux x86_64")
        nav.set(
            "userAgent",
            "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/124.0.0.0 Safari/537.36",
        )
    nav.set("language", "en-US")
    nav.set("hardwareConcurrency", 8.0)
    nav.set("webdriver", webdriver)
    return nav


def make_screen() -> JSObject:
    screen = JSObject()
    screen.set("width", 1920.0)
    screen.set("height", 1080.0)
    screen.set("colorDepth", 24.0)
    screen.set("pixelDepth", 24.0)
    return screen


def make_window(document, navigator, screen, clock) -> JSObject:
    """Build a ``window`` object; the Date/performance clocks are virtual."""
    win = JSObject()
    win.set("document", document)
    win.set("navigator", navigator)
    win.set("screen", screen)
    win.set("innerWidth", 1280.0)
    win.set("innerHeight", 720.0)
    win.set("devicePixelRatio", 1.0)

    perf = JSObject()
    perf.set("now", NativeFunction(lambda i, t, a: clock.now_ms(), "now"))
    win.set("performance", perf)

    win.set("addEventListener", NativeFunction(lambda i, t, a: UNDEFINED, "addEventListener"))
    win.set("setTimeout", NativeFunction(_set_timeout, "setTimeout"))
    return win


def _set_timeout(interp, this, args):
    """Synchronous setTimeout: the crawler waits out timers anyway (§3.1
    'waits five seconds'), so callbacks run immediately in order."""
    from repro.js.values import JSFunction

    if args and isinstance(args[0], (JSFunction, NativeFunction)):
        interp.call_function(args[0], UNDEFINED, [])
    return 0.0
