"""Minimal DOM substrate: document, elements, window, and HTML scanning."""

from repro.dom.document import Document
from repro.dom.elements import DOMElement
from repro.dom.html import ScriptRef, parse_html
from repro.dom.window import make_navigator, make_screen

__all__ = ["Document", "DOMElement", "ScriptRef", "parse_html", "make_navigator", "make_screen"]
