"""DOM element host objects exposed to the JS interpreter."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.js.values import NULL, UNDEFINED, JSArray, JSObject, NativeFunction, js_to_string

__all__ = ["DOMElement"]


class DOMElement(JSObject):
    """A generic DOM element: attributes, children, style, and text.

    Scripts use a handful of DOM operations around canvas work (append the
    canvas, toggle banner visibility); this element supports those without
    aiming to be a full DOM.
    """

    js_class = "HTMLElement"

    def __init__(self, tag_name: str, document=None) -> None:
        super().__init__()
        self.tag_name = tag_name.lower()
        self.document = document
        self.children: List["DOMElement"] = []
        self.parent: Optional["DOMElement"] = None
        self.attributes: Dict[str, str] = {}
        self.text_content = ""
        self.style = JSObject()

    # -- JS property surface ------------------------------------------------------

    def get(self, name: str) -> Any:
        if name == "tagName":
            return self.tag_name.upper()
        if name == "id":
            return self.attributes.get("id", "")
        if name == "className":
            return self.attributes.get("class", "")
        if name == "style":
            return self.style
        if name == "textContent" or name == "innerText":
            return self.text_content
        if name == "parentNode":
            return self.parent if self.parent is not None else NULL
        if name == "children" or name == "childNodes":
            return JSArray(list(self.children))
        if name == "appendChild":
            return NativeFunction(self._js_append_child, "appendChild")
        if name == "removeChild":
            return NativeFunction(self._js_remove_child, "removeChild")
        if name == "remove":
            return NativeFunction(self._js_remove, "remove")
        if name == "setAttribute":
            return NativeFunction(self._js_set_attribute, "setAttribute")
        if name == "getAttribute":
            return NativeFunction(self._js_get_attribute, "getAttribute")
        if name == "addEventListener":
            return NativeFunction(lambda i, t, a: UNDEFINED, "addEventListener")
        if name == "click":
            return NativeFunction(self._js_click, "click")
        return super().get(name)

    def set(self, name: str, value: Any) -> None:
        if name == "id":
            self.attributes["id"] = js_to_string(value)
            return
        if name == "className":
            self.attributes["class"] = js_to_string(value)
            return
        if name in ("textContent", "innerText"):
            self.text_content = js_to_string(value)
            return
        super().set(name, value)

    # -- tree operations ---------------------------------------------------------

    def append_child(self, child: "DOMElement") -> "DOMElement":
        if child.parent is not None:
            child.parent.children.remove(child)
        child.parent = self
        self.children.append(child)
        return child

    def remove_child(self, child: "DOMElement") -> "DOMElement":
        if child in self.children:
            self.children.remove(child)
            child.parent = None
        return child

    def iter_tree(self):
        yield self
        for child in self.children:
            yield from child.iter_tree()

    # -- JS method shims ------------------------------------------------------------

    def _js_append_child(self, interp, this, args):
        child = args[0] if args else UNDEFINED
        if isinstance(child, DOMElement):
            return self.append_child(child)
        return UNDEFINED

    def _js_remove_child(self, interp, this, args):
        child = args[0] if args else UNDEFINED
        if isinstance(child, DOMElement):
            return self.remove_child(child)
        return UNDEFINED

    def _js_remove(self, interp, this, args):
        if self.parent is not None:
            self.parent.remove_child(self)
        return UNDEFINED

    def _js_set_attribute(self, interp, this, args):
        if len(args) >= 2:
            self.attributes[js_to_string(args[0]).lower()] = js_to_string(args[1])
        return UNDEFINED

    def _js_get_attribute(self, interp, this, args):
        if args:
            value = self.attributes.get(js_to_string(args[0]).lower())
            return value if value is not None else NULL
        return NULL

    def _js_click(self, interp, this, args):
        if self.document is not None:
            self.document.record_click(self)
        return UNDEFINED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = self.attributes.get("id", "")
        return f"<{self.tag_name}{'#' + ident if ident else ''}>"
