"""The Document host object."""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.dom.elements import DOMElement
from repro.js.values import NULL, UNDEFINED, JSArray, JSObject, NativeFunction, js_to_string

__all__ = ["Document"]


class Document(JSObject):
    """``document`` as seen by page scripts.

    Canvas creation is delegated to a factory injected by the browser so
    the created element carries the browser's device profile, privacy
    filters and instrumentation.
    """

    js_class = "Document"

    def __init__(self, url: str = "about:blank", canvas_factory: Optional[Callable] = None) -> None:
        super().__init__()
        self.url = url
        self.canvas_factory = canvas_factory
        self.body = DOMElement("body", document=self)
        self.head = DOMElement("head", document=self)
        root = DOMElement("html", document=self)
        root.append_child(self.head)
        root.append_child(self.body)
        self.document_element = root
        self.clicks: List[DOMElement] = []

    # -- Python-side API ---------------------------------------------------------------

    def create_element(self, tag_name: str) -> Any:
        tag = js_to_string(tag_name).lower()
        if tag == "canvas" and self.canvas_factory is not None:
            return self.canvas_factory()
        return DOMElement(tag, document=self)

    def get_element_by_id(self, element_id: str) -> Optional[DOMElement]:
        for el in self.document_element.iter_tree():
            if isinstance(el, DOMElement) and el.attributes.get("id") == element_id:
                return el
        return None

    def query_selector_all(self, selector: str) -> List[DOMElement]:
        """Tiny selector support: ``tag``, ``.class``, ``#id``."""
        out: List[DOMElement] = []
        for el in self.document_element.iter_tree():
            if not isinstance(el, DOMElement):
                continue
            if selector.startswith("."):
                classes = el.attributes.get("class", "").split()
                if selector[1:] in classes:
                    out.append(el)
            elif selector.startswith("#"):
                if el.attributes.get("id") == selector[1:]:
                    out.append(el)
            elif el.tag_name == selector.lower():
                out.append(el)
        return out

    def record_click(self, element: DOMElement) -> None:
        self.clicks.append(element)

    # -- JS property surface -------------------------------------------------------------

    def get(self, name: str) -> Any:
        if name == "createElement":
            return NativeFunction(lambda i, t, a: self.create_element(a[0] if a else "div"), "createElement")
        if name == "getElementById":
            def by_id(i, t, a):
                el = self.get_element_by_id(js_to_string(a[0])) if a else None
                return el if el is not None else NULL
            return NativeFunction(by_id, "getElementById")
        if name == "querySelectorAll":
            return NativeFunction(
                lambda i, t, a: JSArray(self.query_selector_all(js_to_string(a[0])) if a else []),
                "querySelectorAll",
            )
        if name == "querySelector":
            def q(i, t, a):
                found = self.query_selector_all(js_to_string(a[0])) if a else []
                return found[0] if found else NULL
            return NativeFunction(q, "querySelector")
        if name == "body":
            return self.body
        if name == "head":
            return self.head
        if name == "documentElement":
            return self.document_element
        if name == "URL" or name == "location":
            loc = JSObject()
            loc.set("href", self.url)
            return self.url if name == "URL" else loc
        if name == "addEventListener":
            return NativeFunction(lambda i, t, a: UNDEFINED, "addEventListener")
        return super().get(name)
