"""A small HTML scanner.

Extracts what a measurement crawler needs from a homepage: external and
inline scripts (in document order), the title, and consent-banner markers.
Not a general HTML parser — the synthetic web's pages are well-formed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["ScriptRef", "PageStructure", "parse_html"]

_SCRIPT_RE = re.compile(
    r"<script\b([^>]*)>(.*?)</script>",
    re.IGNORECASE | re.DOTALL,
)
_SRC_RE = re.compile(r"""\bsrc\s*=\s*(?:"([^"]*)"|'([^']*)')""", re.IGNORECASE)
_ATTR_RE = re.compile(r"""\b([a-zA-Z-]+)\s*=\s*(?:"([^"]*)"|'([^']*)')""")
_TITLE_RE = re.compile(r"<title[^>]*>(.*?)</title>", re.IGNORECASE | re.DOTALL)


@dataclass(frozen=True)
class ScriptRef:
    """One ``<script>`` tag: external (``src``) or inline (``source``)."""

    src: Optional[str] = None
    source: str = ""
    #: Free-form data attributes (e.g. data-consent="required").
    attrs: tuple = ()

    @property
    def is_inline(self) -> bool:
        return self.src is None

    def attr(self, name: str) -> Optional[str]:
        for key, value in self.attrs:
            if key == name:
                return value
        return None


@dataclass
class PageStructure:
    title: str
    scripts: List[ScriptRef]
    has_consent_banner: bool


def parse_html(html: str) -> PageStructure:
    """Scan a homepage for scripts, title and consent-banner markers."""
    scripts: List[ScriptRef] = []
    for m in _SCRIPT_RE.finditer(html):
        attrs_text, body = m.group(1), m.group(2)
        attrs = tuple(
            (a.group(1).lower(), a.group(2) if a.group(2) is not None else a.group(3))
            for a in _ATTR_RE.finditer(attrs_text)
        )
        src_m = _SRC_RE.search(attrs_text)
        if src_m:
            src = src_m.group(1) if src_m.group(1) is not None else src_m.group(2)
            scripts.append(ScriptRef(src=src, attrs=attrs))
        else:
            scripts.append(ScriptRef(source=body, attrs=attrs))

    title_m = _TITLE_RE.search(html)
    title = title_m.group(1).strip() if title_m else ""
    has_banner = 'class="consent-banner"' in html or "data-consent-banner" in html
    return PageStructure(title=title, scripts=scripts, has_consent_banner=has_banner)
