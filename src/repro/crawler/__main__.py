"""Crawl the synthetic web and persist the dataset as JSONL.

Decouples collection from analysis, like the real study: crawl once, then
analyze the saved dataset offline.  Crawls are checkpointed: each
observation is appended to ``<out>.partial`` as it lands, and a killed run
continues with ``--resume`` without re-visiting persisted domains.

Usage::

    python -m repro.crawler --scale 0.05 --out crawl.jsonl.gz
    python -m repro.crawler --scale 0.05 --adblock abp --out crawl-abp.jsonl.gz
    python -m repro.crawler --scale 0.05 --out crawl.jsonl.gz --resume
    python -m repro.crawler --scale 0.05 --fault-rate 0.1 --out crawl.jsonl.gz
    python -m repro.crawler --scale 0.05 --jobs 4 --out crawl.jsonl.gz
    python -m repro.crawler --scale 0.05 --stage crawl.control --cache-dir .stage-cache \\
        --out crawl.jsonl.gz

``--jobs`` shards the target list over worker processes (each shard
checkpoints independently under ``<out>.shards/``, so ``--resume`` works for
parallel crawls too).  ``--supervised`` runs the shards under the crawl
supervisor (heartbeats, crash re-dispatch, poison-site quarantine): a crawl
whose workers are OOM-killed or hang completes in degraded mode, with the
skipped sites recorded in ``<out>.shards/quarantine.jsonl`` and counted in
the crawl health output.  ``--stage`` runs one of the study pipeline's crawl
stages through the stage graph instead; with ``--cache-dir``, an unchanged
re-run loads the dataset from the content-addressed cache without a single
page load.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.blocklists.matcher import RuleMatcher
from repro import obs
from repro.browser.extensions import AdBlockerExtension
from repro.browser.profile import BrowserProfile
from repro.canvas.device import DEVICE_PROFILES, INTEL_UBUNTU
from repro.config import StudyScale
from repro.crawler.crawl import resume_crawl
from repro.crawler.resilience import PageBudget, RetryPolicy
from repro.crawler.shards import run_sharded_crawl
from repro.crawler.storage import save_dataset
from repro.crawler.supervisor import SupervisorConfig
from repro.net.faults import FaultConfig, FaultyNetwork
from repro.obs.recorder import RunRecorder, resolve_run_dir
from repro.webgen import build_world
from repro.webgen.vendors import prewarm_sources

#: Crawl stages the ``--stage`` flag can run through the stage graph.
CRAWL_STAGES = ("crawl.control", "crawl.abp", "crawl.ubo")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=20250504)
    parser.add_argument("--out", default="crawl.jsonl.gz")
    parser.add_argument(
        "--device",
        choices=sorted(DEVICE_PROFILES),
        default=INTEL_UBUNTU.name,
        help="crawl machine profile (§3.1 used two)",
    )
    parser.add_argument(
        "--adblock",
        choices=["none", "abp", "ubo"],
        default="none",
        help="install an ad blocker extension (§5.2 crawls)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from <out>.partial (or <out>), skipping persisted domains",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="page-load attempts per site; 1 disables retries",
    )
    parser.add_argument(
        "--page-budget-ms",
        type=float,
        default=90_000.0,
        help="per-page watchdog budget in virtual milliseconds",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject transient faults on this fraction of URLs (testing/chaos)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for the fault schedule (defaults to --seed)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; >1 shards the crawl (checkpoints in <out>.shards/)",
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="run shards under the crawl supervisor: heartbeat-monitored "
        "workers, crash re-dispatch, poison-site quarantine "
        "(quarantine.jsonl lands next to the shard checkpoints)",
    )
    parser.add_argument(
        "--liveness-deadline",
        type=float,
        default=60.0,
        help="supervised: max heartbeat silence (s) before a worker is "
        "presumed hung and killed",
    )
    parser.add_argument(
        "--static-triage",
        action="store_true",
        help="skip executing scripts the static analyzer proves canvas-inert "
        "and effect-free toward the rest of the page (same as "
        "REPRO_JS_STATIC_TRIAGE=1; datasets are byte-identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="stage cache directory (implies running via the stage graph)",
    )
    parser.add_argument(
        "--stage",
        choices=CRAWL_STAGES,
        default=None,
        help="run this study crawl stage via the stage graph "
        "(uses the stage's canonical profile; --device/--adblock are ignored)",
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        help="write run observability artifacts (manifest.json + trace.jsonl "
        "+ runs.jsonl history ledger) here; defaults to <out>.obs when "
        "REPRO_OBS_TRACE=1",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the wall-clock sampling profiler for this crawl (same as "
        "REPRO_OBS_PROFILE=1); writes profile.collapsed + profile.trace.json "
        "into the obs dir",
    )
    args = parser.parse_args(argv)

    # None = honour REPRO_JS_STATIC_TRIAGE; the flag forces it on.
    static_triage = True if args.static_triage else None

    if args.profile:
        obs.configure(replace(obs.config(), profile=True))
    obs.profiler.maybe_start(obs.config())

    world = build_world(StudyScale(fraction=args.scale, seed=args.seed))
    extensions = ()
    if args.adblock != "none":
        easylist = RuleMatcher.from_text(world.easylist_text, "easylist")
        if args.adblock == "abp":
            extensions = (AdBlockerExtension("Adblock Plus", [easylist]),)
        else:
            extra = [RuleMatcher.from_text(world.ubo_extra_text, "ubo-extra")]
            extensions = (AdBlockerExtension("UBlock Origin", [easylist], extra_matchers=extra),)

    profile = BrowserProfile(device=DEVICE_PROFILES[args.device], extensions=extensions)

    network = world.network
    if args.fault_rate > 0:
        seed = args.seed if args.fault_seed is None else args.fault_seed
        network = FaultyNetwork(network, FaultConfig(fault_rate=args.fault_rate), seed=seed)

    retry_policy = RetryPolicy(max_attempts=args.max_attempts) if args.max_attempts > 1 else None
    page_budget = PageBudget(max_page_ms=args.page_budget_ms)
    supervisor = (
        SupervisorConfig(liveness_deadline_s=args.liveness_deadline)
        if args.supervised
        else None
    )

    started = time.time()
    done = {"n": 0}
    stage_timings = ()

    def progress(index, observation):
        done["n"] += 1
        if done["n"] % 500 == 0:
            rate = done["n"] / (time.time() - started)
            print(f"  {done['n']} sites crawled ({rate:.0f}/s)", flush=True)

    run_dir = resolve_run_dir(args.obs_dir, default=f"{args.out}.obs")
    recorder = None
    if run_dir is not None:
        recorder = RunRecorder(
            run_dir,
            label="crawl",
            seed=args.seed,
            shard_plan={"shards": max(1, args.jobs), "jobs": args.jobs},
            extra={"out": str(args.out), "scale": args.scale},
        ).start()

    if args.stage is not None or args.cache_dir is not None:
        # Stage-graph path: the crawl is one cached stage of the study
        # pipeline, using the stage's canonical profile.
        from repro.core.stages import StageCache, StudyContext, build_study_graph

        stage = args.stage or {
            "none": "crawl.control", "abp": "crawl.abp", "ubo": "crawl.ubo"
        }[args.adblock]
        cache = StageCache(args.cache_dir) if args.cache_dir is not None else None
        ctx = StudyContext(
            network=network,
            targets=world.all_targets,
            vendor_knowledge=world.vendor_knowledge(),
            easylist_text=world.easylist_text,
            easyprivacy_text=world.easyprivacy_text,
            disconnect=world.disconnect,
            ubo_extra_text=world.ubo_extra_text,
            dns=world.network.dns,
            retry_policy=retry_policy,
            page_budget=page_budget,
            jobs=args.jobs,
            checkpoint_dir=Path(args.cache_dir) / "shards"
            if args.cache_dir is not None
            else Path(f"{args.out}.shards"),
            supervisor=supervisor,
            js_prewarm=prewarm_sources(),
            static_triage=static_triage,
        )
        graph = build_study_graph(ctx, cache=cache)
        run = graph.execute(ctx, only=[stage])
        dataset = run.artifacts[stage]
        save_dataset(dataset, args.out)
        timing = run.timings[-1]
        stage_timings = tuple(run.timings)
        print(f"stage {stage}: {timing.status} in {timing.seconds:.1f}s")
    elif args.jobs > 1 or args.supervised:
        label = f"{args.adblock}-{args.device}" if args.adblock != "none" else args.device
        dataset = run_sharded_crawl(
            network,
            world.all_targets,
            profile=profile,
            label=label,
            jobs=args.jobs,
            checkpoint_dir=f"{args.out}.shards",
            retry_policy=retry_policy,
            page_budget=page_budget,
            resume=args.resume,
            supervisor=supervisor,
            js_prewarm=prewarm_sources(),
            static_triage=static_triage,
        )
        save_dataset(dataset, args.out)
    else:
        label = f"{args.adblock}-{args.device}" if args.adblock != "none" else args.device
        dataset = resume_crawl(
            network,
            world.all_targets,
            args.out,
            profile=profile,
            label=label,
            progress=progress,
            retry_policy=retry_policy,
            page_budget=page_budget,
            resume=args.resume,
            static_triage=static_triage,
        )
    health = dataset.health()
    if recorder is not None:
        from dataclasses import asdict

        trace_path = recorder.finish(health=asdict(health), stage_timings=stage_timings)
        print(
            f"observability artifacts -> {trace_path.parent} "
            f"(run {recorder.run_id}; compare with "
            f"`python -m repro.obs history {trace_path.parent}`)"
        )
    print(f"crawled {health.total} sites ({health.successes} ok) in "
          f"{time.time() - started:.1f}s -> {args.out}")
    print(health.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
