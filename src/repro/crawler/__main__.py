"""Crawl the synthetic web and persist the dataset as JSONL.

Decouples collection from analysis, like the real study: crawl once, then
analyze the saved dataset offline.  Crawls are checkpointed: each
observation is appended to ``<out>.partial`` as it lands, and a killed run
continues with ``--resume`` without re-visiting persisted domains.

Usage::

    python -m repro.crawler --scale 0.05 --out crawl.jsonl.gz
    python -m repro.crawler --scale 0.05 --adblock abp --out crawl-abp.jsonl.gz
    python -m repro.crawler --scale 0.05 --out crawl.jsonl.gz --resume
    python -m repro.crawler --scale 0.05 --fault-rate 0.1 --out crawl.jsonl.gz
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.blocklists.matcher import RuleMatcher
from repro.browser.extensions import AdBlockerExtension
from repro.browser.profile import BrowserProfile
from repro.canvas.device import DEVICE_PROFILES, INTEL_UBUNTU
from repro.config import StudyScale
from repro.crawler.crawl import resume_crawl
from repro.crawler.resilience import PageBudget, RetryPolicy
from repro.net.faults import FaultConfig, FaultyNetwork
from repro.webgen import build_world


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=20250504)
    parser.add_argument("--out", default="crawl.jsonl.gz")
    parser.add_argument(
        "--device",
        choices=sorted(DEVICE_PROFILES),
        default=INTEL_UBUNTU.name,
        help="crawl machine profile (§3.1 used two)",
    )
    parser.add_argument(
        "--adblock",
        choices=["none", "abp", "ubo"],
        default="none",
        help="install an ad blocker extension (§5.2 crawls)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from <out>.partial (or <out>), skipping persisted domains",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="page-load attempts per site; 1 disables retries",
    )
    parser.add_argument(
        "--page-budget-ms",
        type=float,
        default=90_000.0,
        help="per-page watchdog budget in virtual milliseconds",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject transient faults on this fraction of URLs (testing/chaos)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for the fault schedule (defaults to --seed)",
    )
    args = parser.parse_args(argv)

    world = build_world(StudyScale(fraction=args.scale, seed=args.seed))
    extensions = ()
    if args.adblock != "none":
        easylist = RuleMatcher.from_text(world.easylist_text, "easylist")
        if args.adblock == "abp":
            extensions = (AdBlockerExtension("Adblock Plus", [easylist]),)
        else:
            extra = [RuleMatcher.from_text(world.ubo_extra_text, "ubo-extra")]
            extensions = (AdBlockerExtension("UBlock Origin", [easylist], extra_matchers=extra),)

    profile = BrowserProfile(device=DEVICE_PROFILES[args.device], extensions=extensions)

    network = world.network
    if args.fault_rate > 0:
        seed = args.seed if args.fault_seed is None else args.fault_seed
        network = FaultyNetwork(network, FaultConfig(fault_rate=args.fault_rate), seed=seed)

    retry_policy = RetryPolicy(max_attempts=args.max_attempts) if args.max_attempts > 1 else None
    page_budget = PageBudget(max_page_ms=args.page_budget_ms)

    started = time.time()
    done = {"n": 0}

    def progress(index, observation):
        done["n"] += 1
        if done["n"] % 500 == 0:
            rate = done["n"] / (time.time() - started)
            print(f"  {done['n']} sites crawled ({rate:.0f}/s)", flush=True)

    label = f"{args.adblock}-{args.device}" if args.adblock != "none" else args.device
    dataset = resume_crawl(
        network,
        world.all_targets,
        args.out,
        profile=profile,
        label=label,
        progress=progress,
        retry_policy=retry_policy,
        page_budget=page_budget,
        resume=args.resume,
    )
    health = dataset.health()
    print(f"crawled {health.total} sites ({health.successes} ok) in "
          f"{time.time() - started:.1f}s -> {args.out}")
    print(health.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
