"""Crawl the synthetic web and persist the dataset as JSONL.

Decouples collection from analysis, like the real study: crawl once, then
analyze the saved dataset offline.

Usage::

    python -m repro.crawler --scale 0.05 --out crawl.jsonl.gz
    python -m repro.crawler --scale 0.05 --adblock abp --out crawl-abp.jsonl.gz
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.blocklists.matcher import RuleMatcher
from repro.browser.extensions import AdBlockerExtension
from repro.browser.profile import BrowserProfile
from repro.canvas.device import DEVICE_PROFILES, INTEL_UBUNTU
from repro.config import StudyScale
from repro.crawler.crawl import run_crawl
from repro.crawler.storage import save_dataset
from repro.webgen import build_world


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=20250504)
    parser.add_argument("--out", default="crawl.jsonl.gz")
    parser.add_argument(
        "--device",
        choices=sorted(DEVICE_PROFILES),
        default=INTEL_UBUNTU.name,
        help="crawl machine profile (§3.1 used two)",
    )
    parser.add_argument(
        "--adblock",
        choices=["none", "abp", "ubo"],
        default="none",
        help="install an ad blocker extension (§5.2 crawls)",
    )
    args = parser.parse_args(argv)

    world = build_world(StudyScale(fraction=args.scale, seed=args.seed))
    extensions = ()
    if args.adblock != "none":
        easylist = RuleMatcher.from_text(world.easylist_text, "easylist")
        if args.adblock == "abp":
            extensions = (AdBlockerExtension("Adblock Plus", [easylist]),)
        else:
            extra = [RuleMatcher.from_text(world.ubo_extra_text, "ubo-extra")]
            extensions = (AdBlockerExtension("UBlock Origin", [easylist], extra_matchers=extra),)

    profile = BrowserProfile(device=DEVICE_PROFILES[args.device], extensions=extensions)

    started = time.time()
    done = {"n": 0}

    def progress(index, observation):
        done["n"] = index + 1
        if done["n"] % 500 == 0:
            rate = done["n"] / (time.time() - started)
            print(f"  {done['n']} sites crawled ({rate:.0f}/s)", flush=True)

    label = f"{args.adblock}-{args.device}" if args.adblock != "none" else args.device
    dataset = run_crawl(world.network, world.all_targets, profile, label=label, progress=progress)
    save_dataset(dataset, args.out)
    ok = sum(1 for o in dataset.observations if o.success)
    print(f"crawled {len(dataset.observations)} sites ({ok} ok) in "
          f"{time.time() - started:.1f}s -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
