"""Crawl orchestration over site lists."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.browser.browser import Browser
from repro.browser.profile import BrowserProfile
from repro.core.records import SiteObservation
from repro.crawler.collector import CanvasCollector
from repro.net.server import Network

__all__ = ["CrawlTarget", "CrawlDataset", "run_crawl"]


@dataclass(frozen=True)
class CrawlTarget:
    """One site to visit."""

    domain: str
    rank: int
    population: str  # "top" | "tail"


@dataclass
class CrawlDataset:
    """The output of one crawl configuration over a site list."""

    label: str
    observations: List[SiteObservation] = field(default_factory=list)

    def by_domain(self) -> Dict[str, SiteObservation]:
        return {o.domain: o for o in self.observations}

    def populations(self) -> Dict[str, str]:
        return {o.domain: o.population for o in self.observations}

    def successful(self, population: Optional[str] = None) -> List[SiteObservation]:
        return [
            o
            for o in self.observations
            if o.success and (population is None or o.population == population)
        ]

    def success_count(self, population: str) -> int:
        return len(self.successful(population))

    def failure_reasons(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for o in self.observations:
            if not o.success and o.failure_reason:
                out[o.failure_reason] = out.get(o.failure_reason, 0) + 1
        return out


def run_crawl(
    network: Network,
    targets: Iterable[CrawlTarget],
    profile: Optional[BrowserProfile] = None,
    label: str = "control",
    progress: Optional[Callable[[int, SiteObservation], None]] = None,
    inner_paths: tuple = (),
) -> CrawlDataset:
    """Visit every target with one browser configuration.

    The same browser instance is reused across sites (shared script parse
    cache), but each page load gets a fresh JS realm — matching how the
    real collector isolates page contexts within one browser process.
    """
    browser = Browser(network, profile)
    collector = CanvasCollector(browser, inner_paths=inner_paths)
    dataset = CrawlDataset(label=label)
    for index, target in enumerate(targets):
        observation = collector.collect(target.domain, target.rank, target.population)
        dataset.observations.append(observation)
        if progress is not None:
            progress(index, observation)
    return dataset
