"""Crawl orchestration over site lists: retries, checkpointing, resume."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.browser.browser import Browser
from repro.browser.instrumentation import VirtualClock
from repro.browser.profile import BrowserProfile
from repro.core.records import SiteObservation
from repro.crawler.collector import CanvasCollector
from repro.crawler.resilience import (
    PageBudget,
    RetryPolicy,
    collect_with_retries,
    is_transient,
)
from repro.net.server import Network

__all__ = [
    "QUARANTINE_PREFIX",
    "CrawlTarget",
    "CrawlDataset",
    "CrawlHealth",
    "run_crawl",
    "resume_crawl",
]

#: Failure-reason prefix for sites the shard supervisor quarantined instead
#: of crawling (``quarantined:<last death signal>``).  Quarantined rows keep
#: the dataset self-accounting: every planned site appears as crawled,
#: failed, or quarantined — never silently missing.
QUARANTINE_PREFIX = "quarantined:"


@dataclass(frozen=True)
class CrawlTarget:
    """One site to visit."""

    domain: str
    rank: int
    population: str  # "top" | "tail"


@dataclass(frozen=True)
class CrawlHealth:
    """Operational health of one crawl — the paper's 16,276/17,260 story.

    Success counts say how much of the target list survived; the attempts
    histogram and recovered count say how much of that survival the retry
    layer bought; the failure table says what was lost and whether retrying
    harder could have helped (transient) or not (permanent).
    """

    label: str
    total: int
    successes: int
    #: Sites that only succeeded on a retry attempt (recovered transients).
    recovered: int
    #: attempts -> number of sites settling after exactly that many attempts.
    attempts_histogram: Dict[int, int]
    #: (reason, count, transient?) rows, most common first.
    failure_rows: Tuple[Tuple[str, int, bool], ...]
    inner_page_failures: int = 0
    #: Sites the shard supervisor quarantined (poison sites that kept killing
    #: their worker); counted inside the failure rows as ``quarantined:*``.
    quarantined: int = 0

    @property
    def success_rate(self) -> float:
        return self.successes / self.total if self.total else 0.0

    @property
    def total_attempts(self) -> int:
        return sum(a * n for a, n in self.attempts_histogram.items())

    def summary(self) -> str:
        lines = [
            f"crawl '{self.label}': {self.successes}/{self.total} sites ok "
            f"({self.success_rate:.1%}), {self.recovered} recovered by retry, "
            f"{self.total_attempts} page loads total",
        ]
        histogram = ", ".join(
            f"{attempts} attempt{'s' if attempts > 1 else ''}: {count}"
            for attempts, count in sorted(self.attempts_histogram.items())
        )
        lines.append(f"attempts histogram: {histogram or 'none'}")
        if self.inner_page_failures:
            lines.append(f"inner-page load failures: {self.inner_page_failures}")
        if self.quarantined:
            lines.append(
                f"quarantined by supervisor: {self.quarantined} site(s) "
                f"(degraded-mode completion; see quarantine.jsonl)"
            )
        if self.failure_rows:
            lines.append("failures by reason:")
            for reason, count, transient in self.failure_rows:
                kind = "transient" if transient else "permanent"
                lines.append(f"  {reason:28s} {count:6d}  ({kind})")
        return "\n".join(lines)


@dataclass
class CrawlDataset:
    """The output of one crawl configuration over a site list."""

    label: str
    observations: List[SiteObservation] = field(default_factory=list)

    def by_domain(self) -> Dict[str, SiteObservation]:
        return {o.domain: o for o in self.observations}

    def populations(self) -> Dict[str, str]:
        return {o.domain: o.population for o in self.observations}

    def successful(self, population: Optional[str] = None) -> List[SiteObservation]:
        return [
            o
            for o in self.observations
            if o.success and (population is None or o.population == population)
        ]

    def success_count(self, population: str) -> int:
        return len(self.successful(population))

    def failure_reasons(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for o in self.observations:
            if not o.success and o.failure_reason:
                out[o.failure_reason] = out.get(o.failure_reason, 0) + 1
        return out

    def quarantined_sites(self) -> Dict[str, str]:
        """domain -> full ``quarantined:<signal>`` reason for supervisor skips."""
        return {
            o.domain: o.failure_reason
            for o in self.observations
            if o.failure_reason and o.failure_reason.startswith(QUARANTINE_PREFIX)
        }

    # -- crawl health ---------------------------------------------------------

    def attempts_histogram(self) -> Dict[int, int]:
        """attempts -> number of sites that settled after that many attempts."""
        out: Dict[int, int] = {}
        for o in self.observations:
            out[o.attempts] = out.get(o.attempts, 0) + 1
        return out

    def recovered_count(self) -> int:
        """Sites that failed at least once but succeeded on a retry."""
        return sum(1 for o in self.observations if o.recovered)

    def failure_table(self) -> Tuple[Tuple[str, int, bool], ...]:
        """(reason, count, transient?) rows, most common first."""
        reasons = self.failure_reasons()
        return tuple(
            (reason, count, is_transient(reason))
            for reason, count in sorted(reasons.items(), key=lambda kv: (-kv[1], kv[0]))
        )

    def health(self) -> CrawlHealth:
        return CrawlHealth(
            label=self.label,
            total=len(self.observations),
            successes=sum(1 for o in self.observations if o.success),
            recovered=self.recovered_count(),
            attempts_histogram=self.attempts_histogram(),
            failure_rows=self.failure_table(),
            inner_page_failures=sum(o.inner_page_failures for o in self.observations),
            quarantined=len(self.quarantined_sites()),
        )


def run_crawl(
    network: Network,
    targets: Iterable[CrawlTarget],
    profile: Optional[BrowserProfile] = None,
    label: str = "control",
    progress: Optional[Callable[[int, SiteObservation], None]] = None,
    inner_paths: tuple = (),
    retry_policy: Optional[RetryPolicy] = None,
    page_budget: Optional[PageBudget] = None,
    checkpoint=None,
    resume_from: Optional[CrawlDataset] = None,
    static_triage: Optional[bool] = None,
) -> CrawlDataset:
    """Visit every target with one browser configuration.

    The same browser instance is reused across sites (shared script parse
    cache), but each page load gets a fresh JS realm — matching how the
    real collector isolates page contexts within one browser process.

    Resilience knobs (all optional, all off by default):

    * ``retry_policy`` — retry transient failures with deterministic backoff;
    * ``page_budget`` — per-page watchdog (virtual-time + JS step ceiling);
    * ``checkpoint`` — any object with ``write(observation)``; called as each
      observation lands, so a killed crawl leaves a loadable partial file
      (see :class:`repro.crawler.storage.CheckpointWriter`);
    * ``resume_from`` — a previously persisted (partial) dataset whose
      domains are carried over verbatim and not re-visited.

    When retries or fault injection are in play and no ``page_budget`` is
    given, a default :class:`PageBudget` is installed: a slow-response fault
    is pure virtual latency until a budget converts it into a ``timeout``,
    so a robustness run without a watchdog would silently skip that whole
    fault class.
    """
    if page_budget is None and (
        retry_policy is not None or getattr(network, "injector", None) is not None
    ):
        page_budget = PageBudget()
    browser = Browser(
        network,
        profile,
        js_step_budget=page_budget.max_js_steps if page_budget else None,
        static_triage=static_triage,
    )
    collector = CanvasCollector(browser, inner_paths=inner_paths, budget=page_budget)
    dataset = CrawlDataset(label=label)

    done = set()
    if resume_from is not None:
        for observation in resume_from.observations:
            dataset.observations.append(observation)
            done.add(observation.domain)

    # Crawl-level virtual clock: backoff delays advance it, so retry timing
    # is observable and deterministic without any wall-clock sleeping.
    backoff_clock = VirtualClock()

    for index, target in enumerate(targets):
        if target.domain in done:
            continue
        observation = collect_with_retries(
            collector, target, policy=retry_policy, clock=backoff_clock, label=label
        )
        dataset.observations.append(observation)
        if checkpoint is not None:
            checkpoint.write(observation)
        if progress is not None:
            progress(index, observation)
    return dataset


def resume_crawl(
    network: Network,
    targets: Iterable[CrawlTarget],
    out_path,
    profile: Optional[BrowserProfile] = None,
    label: str = "control",
    progress: Optional[Callable[[int, SiteObservation], None]] = None,
    inner_paths: tuple = (),
    retry_policy: Optional[RetryPolicy] = None,
    page_budget: Optional[PageBudget] = None,
    resume: bool = True,
    static_triage: Optional[bool] = None,
) -> CrawlDataset:
    """Run (or continue) a checkpointed crawl persisted at ``out_path``.

    Every observation is appended to ``<out_path>.partial`` as it lands; on
    completion the partial is atomically promoted to ``out_path``.  With
    ``resume=True`` an existing partial (or finished) file is loaded first
    and its domains are skipped, so a crawl killed mid-run completes into a
    dataset identical to an uninterrupted one.
    """
    # Local import: storage depends on this module for CrawlDataset.
    from repro.crawler import storage

    prior = storage.load_checkpoint(out_path) if resume else None
    if prior is not None:
        label = prior.label
    writer = storage.CheckpointWriter(out_path, label=label, resume=resume)
    try:
        dataset = run_crawl(
            network,
            targets,
            profile=profile,
            label=label,
            progress=progress,
            inner_paths=inner_paths,
            retry_policy=retry_policy,
            page_budget=page_budget,
            checkpoint=writer,
            resume_from=prior,
            static_triage=static_triage,
        )
    except BaseException:
        # Keep the partial file for a later --resume; never half-finalize.
        writer.close()
        raise
    writer.finalize()
    return dataset
