"""Crawl dataset persistence: JSONL, optionally gzipped.

One observation per line, so multi-GB crawls stream without loading fully
into memory — the format the real collector family also uses.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Iterator, Union

from repro.core.records import SiteObservation
from repro.crawler.crawl import CrawlDataset

__all__ = ["save_dataset", "load_dataset", "iter_observations"]


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_dataset(dataset: CrawlDataset, path: Union[str, Path]) -> None:
    """Write a crawl dataset as JSONL (header line + one line per site)."""
    path = Path(path)
    with _open(path, "w") as fh:
        fh.write(json.dumps({"label": dataset.label, "format": "repro-crawl-v1"}) + "\n")
        for obs in dataset.observations:
            fh.write(json.dumps(obs.to_json(), separators=(",", ":")) + "\n")


def iter_observations(path: Union[str, Path]) -> Iterator[SiteObservation]:
    """Stream observations from a JSONL dataset file."""
    path = Path(path)
    with _open(path, "r") as fh:
        header = fh.readline()
        meta = json.loads(header) if header.strip() else {}
        if meta.get("format") not in (None, "repro-crawl-v1"):
            raise ValueError(f"unknown dataset format {meta.get('format')!r}")
        for line in fh:
            if line.strip():
                yield SiteObservation.from_json(json.loads(line))


def load_dataset(path: Union[str, Path]) -> CrawlDataset:
    """Load a full crawl dataset from disk."""
    path = Path(path)
    with _open(path, "r") as fh:
        header = json.loads(fh.readline())
    dataset = CrawlDataset(label=header.get("label", path.stem))
    dataset.observations.extend(iter_observations(path))
    return dataset
