"""Crawl dataset persistence: JSONL, optionally gzipped.

One observation per line — the format the real collector family also uses.
The format *supports* streaming, and the streaming consumers actually do:
:func:`iter_observations` yields one observation at a time (this is what
``python -m repro.analysis`` folds through, so analyzing a multi-GB crawl
never loads it fully into memory), while :func:`load_dataset` deliberately
slurps for callers that need a whole :class:`CrawlDataset`.

Durability model:

* :func:`save_dataset` writes the whole file to a sibling temp file and
  promotes it with :func:`os.replace`, so a crash mid-write can never leave
  a half-written dataset at the target path;
* :class:`CheckpointWriter` appends each observation to ``<path>.partial``
  as it lands (flushed per line) and atomically promotes the partial on
  :meth:`~CheckpointWriter.finalize` — the substrate for ``--resume``;
* :func:`load_checkpoint` reads a partial file back, tolerating a truncated
  final line (the signature of a crawl killed mid-write), and ignores a
  stale partial that a crash inside ``finalize()`` left next to an
  already-promoted final file;
* :func:`load_dataset` / :func:`iter_observations` raise :class:`DatasetError`
  with the offending path and line number instead of a bare
  ``json.JSONDecodeError`` on empty, corrupt or truncated files.
"""

from __future__ import annotations

import gzip
import json
import os
import pickle
from pathlib import Path
from typing import Any, Iterator, List, Optional, Union

from repro import obs
from repro.core.records import SiteObservation
from repro.crawler.crawl import CrawlDataset

__all__ = [
    "DatasetError",
    "save_dataset",
    "load_dataset",
    "dataset_label",
    "iter_observations",
    "CheckpointWriter",
    "checkpoint_path",
    "load_checkpoint",
    "fsync_directory",
    "save_artifact",
    "load_artifact",
]

FORMAT = "repro-crawl-v1"


class DatasetError(ValueError):
    """A dataset file is missing, empty, corrupt or of an unknown format."""


def _is_gz(path: Path) -> bool:
    return path.suffix == ".gz"


def _open(path: Path, mode: str):
    if _is_gz(path):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _header_line(label: str) -> str:
    return json.dumps({"label": label, "format": FORMAT}) + "\n"


def _obs_line(observation: SiteObservation) -> str:
    return json.dumps(observation.to_json(), separators=(",", ":")) + "\n"


def fsync_directory(path: Path) -> None:
    """fsync a directory so a just-completed ``os.replace`` survives a crash.

    ``os.replace`` makes the rename atomic, but the *directory entry* itself
    lives in the parent directory's data — until that is flushed, a power
    loss can roll the rename back and the "atomically promoted" file is
    silently gone.  Platforms whose directories cannot be opened or synced
    (e.g. Windows) are a no-op.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _parse_header(line: str, path: Path) -> dict:
    if not line.strip():
        raise DatasetError(f"{path}: empty dataset file (no header line)")
    try:
        meta = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path}: corrupt dataset header: {exc}") from exc
    if meta.get("format") not in (None, FORMAT):
        raise DatasetError(f"{path}: unknown dataset format {meta.get('format')!r}")
    return meta


def save_dataset(dataset: CrawlDataset, path: Union[str, Path]) -> None:
    """Write a crawl dataset as JSONL (header line + one line per site).

    The write is atomic: content goes to a same-directory temp file which is
    promoted with ``os.replace``, so readers never observe a torn file.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    fh = gzip.open(tmp, "wt", encoding="utf-8") if _is_gz(path) else open(
        tmp, "w", encoding="utf-8"
    )
    try:
        with fh:
            fh.write(_header_line(dataset.label))
            for observation in dataset.observations:
                fh.write(_obs_line(observation))
        os.replace(tmp, path)
        # Flushing the rename itself: without a directory fsync the replace
        # can be rolled back by a crash even though the data blocks survived.
        fsync_directory(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def iter_observations(path: Union[str, Path]) -> Iterator[SiteObservation]:
    """Stream observations from a JSONL dataset file.

    Raises :class:`DatasetError` (with path and line number) on an empty,
    truncated or otherwise corrupt file — including a truncated or invalid
    ``.gz``, whose errors surface from the decompression layer mid-iteration.
    """
    path = Path(path)
    try:
        with _open(path, "r") as fh:
            _parse_header(fh.readline(), path)
            for lineno, line in enumerate(fh, start=2):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise DatasetError(
                        f"{path}: corrupt or truncated dataset at line {lineno}: {exc}"
                    ) from exc
                yield SiteObservation.from_json(record)
    except (EOFError, gzip.BadGzipFile) as exc:
        raise DatasetError(
            f"{path}: corrupt or truncated gzip dataset: {exc}"
        ) from exc


def dataset_label(path: Union[str, Path]) -> str:
    """Read just the dataset label from the header line (no body parse)."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"{path}: no such dataset file")
    try:
        with _open(path, "r") as fh:
            header = _parse_header(fh.readline(), path)
    except (EOFError, gzip.BadGzipFile) as exc:
        raise DatasetError(
            f"{path}: corrupt or truncated gzip dataset: {exc}"
        ) from exc
    return header.get("label", path.stem)


def load_dataset(path: Union[str, Path]) -> CrawlDataset:
    """Load a full crawl dataset from disk."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"{path}: no such dataset file")
    try:
        with _open(path, "r") as fh:
            header = _parse_header(fh.readline(), path)
    except (EOFError, gzip.BadGzipFile) as exc:
        raise DatasetError(
            f"{path}: corrupt or truncated gzip dataset: {exc}"
        ) from exc
    dataset = CrawlDataset(label=header.get("label", path.stem))
    dataset.observations.extend(iter_observations(path))
    return dataset


# -- checkpointing -----------------------------------------------------------------


def checkpoint_path(path: Union[str, Path]) -> Path:
    """The partial (in-progress) sibling of a dataset path."""
    path = Path(path)
    return path.with_name(path.name + ".partial")


def _truncate_torn_tail(path: Path) -> None:
    """Drop a torn trailing fragment (the residue of a mid-write kill).

    Mirrors :func:`_load_tolerant`'s read-side tolerance on the write side:
    anything after the last newline, plus a final newline-terminated line
    that is not valid JSON, is cut off — so reopening the partial in append
    mode can never concatenate a new record onto a torn one.
    """
    with open(path, "rb+") as fh:
        data = fh.read()
        if not data:
            return
        end = len(data)
        if not data.endswith(b"\n"):
            end = data.rfind(b"\n") + 1  # 0 when even the header is torn
        if end:
            prev = data.rfind(b"\n", 0, end - 1) + 1
            if prev > 0:  # never validate away the header line here
                try:
                    json.loads(data[prev:end].decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    end = prev
        if end != len(data):
            fh.truncate(end)


def _record_count(path: Path, tolerant: bool) -> int:
    """Complete observation records in a dataset file; -1 if unreadable."""
    try:
        if tolerant:
            return len(_load_tolerant(path).observations)
        return sum(1 for _ in iter_observations(path))
    except DatasetError:
        return -1


def _resume_source(final: Path, partial: Path) -> Optional[Path]:
    """Which file a resume should continue from (None when neither exists).

    An existing partial normally wins — it is an interrupted run.  But a
    partial *alongside* a finished final file is usually the residue of a
    crash inside :meth:`CheckpointWriter.finalize` between promotion and
    cleanup; unless the partial has strictly more complete records than the
    final file, the final file is the truth and the stale partial is ignored
    (and overwritten on the next resume).
    """
    has_partial, has_final = partial.exists(), final.exists()
    if has_partial and has_final:
        if _record_count(partial, tolerant=True) > _record_count(final, tolerant=False):
            return partial
        return final
    if has_partial:
        return partial
    if has_final:
        return final
    return None


class CheckpointWriter:
    """Append-mode JSONL checkpointing for an in-flight crawl.

    Observations land in ``<path>.partial`` (always plain text, flushed per
    line so a kill loses at most the line being written).  ``finalize()``
    promotes the partial to the final path atomically — gzip-compressing on
    the way if the final path ends in ``.gz``.
    """

    def __init__(self, path: Union[str, Path], label: str, resume: bool = False) -> None:
        self.final_path = Path(path)
        self.partial_path = checkpoint_path(path)
        self.label = label
        self.written = 0
        source = _resume_source(self.final_path, self.partial_path) if resume else None
        if source is not None and source != self.partial_path:
            # A finished dataset is a valid checkpoint: reopen it as partial
            # (overwriting any stale leftover partial from a finalize crash).
            with _open(self.final_path, "r") as src, open(
                self.partial_path, "w", encoding="utf-8"
            ) as dst:
                for line in src:
                    dst.write(line)
        elif source is not None:
            # Continuing an interrupted partial: cut off any torn trailing
            # fragment first, so appends start on a record boundary.
            _truncate_torn_tail(self.partial_path)
        continuing = source is not None
        self._fh = open(self.partial_path, "a" if continuing else "w", encoding="utf-8")
        if not continuing or self._fh.tell() == 0:
            self._fh.write(_header_line(label))
            self._fh.flush()

    def write(self, observation: SiteObservation) -> None:
        self._fh.write(_obs_line(observation))
        self._fh.flush()
        self.written += 1
        obs.inc("crawler.checkpoint_writes")

    def close(self) -> None:
        """Close without promoting; the partial file stays for a resume."""
        if not self._fh.closed:
            self._fh.close()

    def finalize(self) -> Path:
        """Atomically promote the partial file to the final dataset path."""
        self.close()
        if _is_gz(self.final_path):
            tmp = self.final_path.with_name(self.final_path.name + ".tmp")
            try:
                with open(self.partial_path, "r", encoding="utf-8") as src, gzip.open(
                    tmp, "wt", encoding="utf-8"
                ) as dst:
                    for line in src:
                        dst.write(line)
                os.replace(tmp, self.final_path)
            except BaseException:
                tmp.unlink(missing_ok=True)
                raise
            self.partial_path.unlink(missing_ok=True)
        else:
            os.replace(self.partial_path, self.final_path)
        # Make the promotion itself durable: the rename lives in the parent
        # directory's data, which a crash can lose without this fsync.
        fsync_directory(self.final_path.parent)
        obs.inc("crawler.checkpoint_finalized")
        obs.event("checkpoint.finalize", path=str(self.final_path), records=self.written)
        return self.final_path

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:
            self.close()


def load_checkpoint(path: Union[str, Path]) -> Optional[CrawlDataset]:
    """Load whatever survives of a checkpointed crawl at ``path``.

    Prefers ``<path>.partial`` (an interrupted run), falling back to the
    final file (a finished run) — except when the final file has at least as
    many records, which marks the partial as a stale leftover from a crash
    inside :meth:`CheckpointWriter.finalize` (see :func:`_resume_source`).
    A truncated final line in the partial — the expected state after a
    mid-write kill — is silently dropped; that site is simply re-crawled on
    resume.  Returns None when neither file exists.
    """
    final = Path(path)
    partial = checkpoint_path(path)
    source = _resume_source(final, partial)
    if source is None:
        return None
    if source == partial:
        return _load_tolerant(partial)
    return load_dataset(final)


# -- stage artifacts ---------------------------------------------------------------


def save_artifact(value: Any, path: Union[str, Path]) -> None:
    """Persist one pipeline stage artifact atomically.

    Crawl datasets keep their streaming JSONL format (``.jsonl`` /
    ``.jsonl.gz`` paths — the same files ``python -m repro.analysis``
    consumes); any other artifact is pickled.  Both paths go through a
    same-directory temp file, ``os.replace`` and a directory fsync, so a
    half-written cache entry can never be observed or survive a crash.
    """
    path = Path(path)
    if isinstance(value, CrawlDataset):
        if path.suffix not in (".jsonl", ".gz"):
            raise ValueError(f"dataset artifacts need a .jsonl(.gz) path, got {path.name}")
        save_dataset(value, path)
        return
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        fsync_directory(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def load_artifact(path: Union[str, Path]) -> Any:
    """Load an artifact written by :func:`save_artifact`.

    Raises :class:`DatasetError` on a missing, truncated or corrupt file, so
    a damaged cache entry surfaces as a clean miss upstream instead of a
    bare unpickling error.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"{path}: no such artifact file")
    if path.suffix in (".jsonl", ".gz"):
        return load_dataset(path)
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as exc:
        raise DatasetError(f"{path}: corrupt artifact: {exc}") from exc


def _load_tolerant(path: Path) -> CrawlDataset:
    with open(path, "r", encoding="utf-8") as fh:
        lines: List[str] = fh.readlines()
    if not lines:
        raise DatasetError(f"{path}: empty dataset file (no header line)")
    header = _parse_header(lines[0], path)
    dataset = CrawlDataset(label=header.get("label", path.stem))
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn final line from a mid-write kill
            raise DatasetError(
                f"{path}: corrupt dataset at line {lineno}: {exc}"
            ) from exc
        dataset.observations.append(SiteObservation.from_json(record))
    return dataset
