"""Per-page collection: load, consent, behave, and assemble the observation."""

from __future__ import annotations

from typing import Optional

from repro.browser.browser import Browser, Page
from repro.core.records import SiteObservation
from repro.crawler.autoconsent import Autoconsent
from repro.crawler.behavior import UserBehavior
from repro.crawler.resilience import PageBudget
from repro.net.url import URL

__all__ = ["CanvasCollector"]


class CanvasCollector:
    """The modified-Tracker-Radar-Collector analogue.

    Wraps a browser, handles banners and behavior simulation, and flattens
    the page's instrumentation into a :class:`SiteObservation`.  Every visit
    is crash-isolated: an exception anywhere in the load pipeline (parser,
    interpreter, instrumentation — any collector bug) becomes a failed
    observation with reason ``crash:<ExceptionType>`` rather than an aborted
    crawl.  An optional :class:`PageBudget` acts as the page watchdog,
    converting runaway pages into ``timeout`` failures.
    """

    def __init__(
        self,
        browser: Browser,
        inner_paths: tuple = (),
        budget: Optional[PageBudget] = None,
    ) -> None:
        self.browser = browser
        self.autoconsent = Autoconsent()
        self.behavior = UserBehavior()
        #: Optional inner pages to also visit (e.g. ("/login",)).  The
        #: paper's crawl is homepage-only — a stated lower bound; enabling
        #: inner paths measures what that bound misses.
        self.inner_paths = tuple(inner_paths)
        self.budget = budget

    def collect(self, domain: str, rank: int, population: str) -> SiteObservation:
        """Crawl one homepage (plus any configured inner pages), crash-isolated."""
        try:
            return self._collect(domain, rank, population)
        except Exception as exc:  # noqa: BLE001 — isolation is the whole point
            return SiteObservation(
                domain=domain,
                rank=rank,
                population=population,
                success=False,
                failure_reason=f"crash:{type(exc).__name__}",
                script_errors=[f"{type(exc).__name__}: {exc}"],
            )

    def _collect(self, domain: str, rank: int, population: str) -> SiteObservation:
        url = URL("https", domain)
        page = self.browser.load(url)
        if not page.ok:
            return self._failed(domain, rank, population, self._failure_reason(page), page)

        reason = self._page_fault_reason(page)
        if reason is not None:
            return self._failed(domain, rank, population, reason, page)

        self.autoconsent.handle(page)
        self.behavior.simulate(page)

        # The watchdog's final say: consent/scroll-triggered scripts also
        # spend the page's time budget.
        reason = self._page_fault_reason(page)
        if reason is not None:
            return self._failed(domain, rank, population, reason, page)

        observation = self._assemble(domain, rank, population, page)

        for path in self.inner_paths:
            inner = self.browser.load(url.with_path(path))
            if not inner.ok:
                # Most sites have no such page — but keep the miss visible.
                observation.inner_page_failures += 1
                continue
            self.autoconsent.handle(inner)
            self.behavior.simulate(inner)
            self._merge(observation, inner)
        return observation

    @staticmethod
    def _failed(
        domain: str, rank: int, population: str, reason: str, page: Page
    ) -> SiteObservation:
        return SiteObservation(
            domain=domain,
            rank=rank,
            population=population,
            success=False,
            failure_reason=reason,
            script_errors=list(page.script_errors),
        )

    @staticmethod
    def _merge(observation: SiteObservation, page: Page) -> None:
        instrument = page.instrument
        observation.calls.extend(instrument.calls)
        observation.property_accesses.extend(instrument.property_accesses)
        observation.extractions.extend(instrument.extractions)
        observation.blocked_urls.extend(page.blocked_urls)
        observation.script_errors.extend(page.script_errors)
        observation.script_sources.update(page.script_sources)

    def _failure_reason(self, page: Page) -> str:
        if page.status == 0:
            return "network-error"
        if page.status == 403:
            return "bot-blocked"
        if page.status == 404:
            return "not-found"
        if 500 <= page.status < 600:
            # 5xx is a server-side (often transient) condition, distinct from
            # the permanent 4xx client errors — the retry layer keys off it.
            return f"server-error-{page.status}"
        return f"http-{page.status}"

    def _page_fault_reason(self, page: Page) -> Optional[str]:
        """Post-load health check: transfer integrity, subresources, watchdog.

        Only *transient-looking* subresource failures (connection errors,
        5xx) fail the page — those are exactly what a retry can win back.  A
        DNS-nonexistent third-party host is permanent breakage the site
        shipped: the page stays a success with the miss recorded in
        ``script_errors``/``subresource_failures``, so retries are never
        burned on a host that will never exist.
        """
        if page.truncated_scripts:
            return "truncated-script"
        if any(
            status >= 500 or (status == 0 and error != "dns")
            for _url, status, error in page.subresource_failures
        ):
            return "subresource-error"
        if self.budget is not None:
            if self.budget.exceeded(page.elapsed_ms):
                return "timeout"
            if any("step budget exceeded" in e for e in page.script_errors):
                return "timeout"
        return None

    def _assemble(self, domain: str, rank: int, population: str, page: Page) -> SiteObservation:
        instrument = page.instrument
        return SiteObservation(
            domain=domain,
            rank=rank,
            population=population,
            success=True,
            final_url=str(page.url),
            calls=list(instrument.calls),
            property_accesses=list(instrument.property_accesses),
            extractions=list(instrument.extractions),
            blocked_urls=list(page.blocked_urls),
            script_errors=list(page.script_errors),
            script_sources=dict(page.script_sources),
        )
