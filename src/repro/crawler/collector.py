"""Per-page collection: load, consent, behave, and assemble the observation."""

from __future__ import annotations


from repro.browser.browser import Browser, Page
from repro.core.records import SiteObservation
from repro.crawler.autoconsent import Autoconsent
from repro.crawler.behavior import UserBehavior
from repro.net.url import URL

__all__ = ["CanvasCollector"]


class CanvasCollector:
    """The modified-Tracker-Radar-Collector analogue.

    Wraps a browser, handles banners and behavior simulation, and flattens
    the page's instrumentation into a :class:`SiteObservation`.
    """

    def __init__(self, browser: Browser, inner_paths: tuple = ()) -> None:
        self.browser = browser
        self.autoconsent = Autoconsent()
        self.behavior = UserBehavior()
        #: Optional inner pages to also visit (e.g. ("/login",)).  The
        #: paper's crawl is homepage-only — a stated lower bound; enabling
        #: inner paths measures what that bound misses.
        self.inner_paths = tuple(inner_paths)

    def collect(self, domain: str, rank: int, population: str) -> SiteObservation:
        """Crawl one homepage (plus any configured inner pages)."""
        url = URL("https", domain)
        page = self.browser.load(url)
        if not page.ok:
            return SiteObservation(
                domain=domain,
                rank=rank,
                population=population,
                success=False,
                failure_reason=self._failure_reason(page),
            )

        self.autoconsent.handle(page)
        self.behavior.simulate(page)
        observation = self._assemble(domain, rank, population, page)

        for path in self.inner_paths:
            inner = self.browser.load(url.with_path(path))
            if not inner.ok:
                continue  # most sites have no such page
            self.autoconsent.handle(inner)
            self.behavior.simulate(inner)
            self._merge(observation, inner)
        return observation

    @staticmethod
    def _merge(observation: SiteObservation, page: Page) -> None:
        instrument = page.instrument
        observation.calls.extend(instrument.calls)
        observation.property_accesses.extend(instrument.property_accesses)
        observation.extractions.extend(instrument.extractions)
        observation.blocked_urls.extend(page.blocked_urls)
        observation.script_errors.extend(page.script_errors)
        observation.script_sources.update(page.script_sources)

    def _failure_reason(self, page: Page) -> str:
        if page.status == 0:
            return "network-error"
        if page.status == 403:
            return "bot-blocked"
        if page.status == 404:
            return "not-found"
        return f"http-{page.status}"

    def _assemble(self, domain: str, rank: int, population: str, page: Page) -> SiteObservation:
        instrument = page.instrument
        return SiteObservation(
            domain=domain,
            rank=rank,
            population=population,
            success=True,
            final_url=str(page.url),
            calls=list(instrument.calls),
            property_accesses=list(instrument.property_accesses),
            extractions=list(instrument.extractions),
            blocked_urls=list(page.blocked_urls),
            script_errors=list(page.script_errors),
            script_sources=dict(page.script_sources),
        )
