"""Shard supervisor: heartbeats, crash re-dispatch, poison-site quarantine.

PR 1 made single *pages* fault-tolerant (retry/backoff, watchdog,
checkpoint/resume) and the sharded executor made crawls parallel — but a
bare :class:`~concurrent.futures.ProcessPoolExecutor` still dies wholesale
when one shard *worker* is OOM-killed, segfaults, or wedges: the pool
raises ``BrokenProcessPool`` and every other shard aborts with it.  At the
paper's 40k-site scale one poison page can therefore sink the whole study.

This module replaces the pool with **supervised worker processes**:

* every worker writes a *heartbeat file* (task start + after every page);
* the supervisor polls worker liveness and classifies each worker through a
  small state machine::

      healthy ──(no beat for deadline/2)──> suspect
      suspect ──(beat arrives)───────────> healthy
      healthy/suspect ──(process exit ≠ 0)─────────────┐
      healthy/suspect ──(no beat for deadline)──kill──>│ dead
      healthy/suspect ──(shard wall budget spent)─kill>│
                                                       ▼
                                        respawn (remainder, same checkpoint)
                                        or — after ``max_shard_crashes`` —
                                        bisect / quarantine

* a dead worker's shard is **re-dispatched**: the remainder is computed from
  the shard's checkpoint (everything flushed before the crash survives), so
  each site is crawled exactly once across any number of respawns;
* a shard that kills its worker ``max_shard_crashes`` times is **bisected**:
  its unfinished remainder is split in two sub-shards, recursively, until
  the poison *site* is isolated in a single-site shard — which is then
  **quarantined**: recorded in ``quarantine.jsonl`` (reason, crash count,
  last signal) and represented in the merged dataset as a failed
  observation with reason ``quarantined:<signal>``;
* the study then completes in **degraded mode**: every planned site is
  accounted for as crawled, failed, or quarantined — prevalence and reach
  are computed over an explicitly-accounted site set, never a silently
  truncated one.

A no-fault supervised crawl is byte-identical to the unsupervised sharded
path (``tests/crawler/test_supervisor.py`` pins this): supervision changes
*when and by whom* sites are visited, never what any site observes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Union

from repro import obs, perf
from repro.browser.profile import BrowserProfile
from repro.core.records import SiteObservation
from repro.crawler.crawl import (
    QUARANTINE_PREFIX,
    CrawlDataset,
    CrawlTarget,
)
from repro.crawler.resilience import PageBudget, RetryPolicy
from repro.crawler.storage import load_checkpoint

__all__ = [
    "SupervisorConfig",
    "SupervisorError",
    "QuarantineRecord",
    "QuarantineLedger",
    "quarantine_ledger_path",
    "run_supervised_crawl",
]


class SupervisorError(RuntimeError):
    """The supervisor's global respawn budget was exhausted (runaway crashes)."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the shard supervisor.

    Defaults are sized for real crawls (pages take seconds, shards take
    minutes); tests shrink the deadlines to keep chaos runs fast.
    """

    #: Max silence (no heartbeat, s) before a live worker is presumed hung
    #: and killed.  Workers beat at task start and after every page, so this
    #: bounds the time one page may take — align it with the page watchdog.
    liveness_deadline_s: float = 60.0
    #: Optional wall-clock ceiling for one shard attempt; ``None`` disables.
    #: A worker that outlives it is killed and handled like a crash.
    shard_wall_budget_s: Optional[float] = None
    #: Supervisor poll cadence (s).
    poll_interval_s: float = 0.05
    #: Worker deaths one shard tolerates before its remainder is bisected.
    #: Sub-shards inherit ``max_shard_crashes - 1`` crashes: once a shard is
    #: marked poisonous, one more death per level is enough to keep
    #: splitting, so isolation costs ~``max_shard_crashes + log2(n)`` deaths.
    max_shard_crashes: int = 2
    #: Global circuit breaker: total respawns across the whole crawl before
    #: the supervisor gives up with :class:`SupervisorError` (a run where
    #: *every* site is poison should fail loudly, not quarantine the web).
    max_total_respawns: int = 128
    #: Grace (s) between SIGTERM and SIGKILL when putting down a worker.
    term_grace_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_shard_crashes < 1:
            raise ValueError(
                f"max_shard_crashes must be >= 1, got {self.max_shard_crashes}"
            )
        if self.liveness_deadline_s <= 0:
            raise ValueError(
                f"liveness_deadline_s must be > 0, got {self.liveness_deadline_s}"
            )


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined site, as persisted to the ledger."""

    domain: str
    rank: int
    population: str
    label: str
    #: Why the site was quarantined (currently always ``worker-killed``).
    reason: str
    #: Worker deaths attributed to the site's shard lineage.
    attempts: int
    #: The last death signal observed (``exit:<code>``, ``heartbeat-timeout``,
    #: ``wall-budget``).
    last_signal: str
    #: Lineage id of the single-site shard that isolated it (``0003.a.b``).
    shard: str
    ts: float = 0.0

    @property
    def failure_reason(self) -> str:
        """The dataset-side failure reason carrying this quarantine."""
        return f"{QUARANTINE_PREFIX}{self.last_signal}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "domain": self.domain,
            "rank": self.rank,
            "population": self.population,
            "label": self.label,
            "reason": self.reason,
            "attempts": self.attempts,
            "last_signal": self.last_signal,
            "shard": self.shard,
            "ts": self.ts,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "QuarantineRecord":
        return cls(
            domain=data["domain"],
            rank=data["rank"],
            population=data["population"],
            label=data.get("label", ""),
            reason=data["reason"],
            attempts=data["attempts"],
            last_signal=data["last_signal"],
            shard=data.get("shard", ""),
            ts=data.get("ts", 0.0),
        )


def quarantine_ledger_path(checkpoint_dir: Union[str, Path]) -> Path:
    """The quarantine ledger for a (supervised) crawl's checkpoint dir."""
    return Path(checkpoint_dir) / "quarantine.jsonl"


class QuarantineLedger:
    """Append-only JSONL ledger of quarantined sites.

    Flushed per record, like the crawl checkpoints: a supervisor killed
    mid-run leaves a loadable ledger behind.  Records also always travel in
    the merged dataset itself (as ``quarantined:*`` failure rows), so the
    ledger is the *audit trail* — the dataset remains self-accounting.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.records: List[QuarantineRecord] = []

    def append(self, record: QuarantineRecord) -> None:
        self.records.append(record)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record.to_json(), separators=(",", ":")) + "\n")
            fh.flush()

    @classmethod
    def load(cls, path: Union[str, Path]) -> "QuarantineLedger":
        ledger = cls(path)
        if ledger.path.exists():
            with open(ledger.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    if line.strip():
                        ledger.records.append(QuarantineRecord.from_json(json.loads(line)))
        return ledger


# -- worker side --------------------------------------------------------------------


def _write_heartbeat(path: Path, domain: str, index: int) -> None:
    """Atomically refresh the worker's heartbeat file.

    The parent only needs the mtime for liveness; the payload (current
    domain + index) is for post-mortem debugging of a killed worker.
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps({"ts": time.time(), "domain": domain, "index": index}),
        encoding="utf-8",
    )
    os.replace(tmp, path)


def _supervised_shard_worker(payload, heartbeat_path: Path, result_path: Path) -> None:
    """Worker entry point (module-level: pickled by name across the spawn).

    Mirrors ``shards._crawl_shard_worker`` — same payload tuple, same
    JSON-records result schema, same delta-from-task-start perf/obs
    propagation — but beats a heartbeat after every page and ships its
    result through an atomically-promoted pickle file instead of the pool's
    return channel, so a crash mid-result can never hand the parent a torn
    payload.
    """
    from repro.crawler.shards import _crawl_one_shard
    from repro.js import compiler as js_compiler

    (network, targets, profile, label, retry_policy, page_budget, inner_paths,
     checkpoint, resume, perf_config, obs_config, shard_tid, fold_spec,
     js_prewarm, static_triage) = payload
    perf.configure(perf_config)
    obs.configure(obs_config)
    obs.set_worker_label(shard_tid)
    # Fork-aware profiler start: clears the sample table inherited from the
    # supervisor's fork so parent samples never double-count, then samples
    # this worker's pages until the task's worker_payload drains the table.
    obs.profiler.maybe_start(obs_config)
    perf_before = perf.PERF.snapshot()
    metrics_before = obs.METRICS.snapshot()
    # Same warm-start as the pool worker: compile known vendor scripts before
    # the first page, counted after the baseline snapshot (exactly-once).
    if js_prewarm:
        js_compiler.prewarm(js_prewarm)
    _write_heartbeat(heartbeat_path, domain="", index=-1)

    def beat(index: int, observation: SiteObservation) -> None:
        _write_heartbeat(heartbeat_path, domain=observation.domain, index=index)

    with obs.span("crawl.shard", shard=shard_tid, label=label, size=len(targets)):
        dataset = _crawl_one_shard(
            network, targets, profile, label, retry_policy, page_budget,
            inner_paths, checkpoint, resume, progress=beat,
            static_triage=static_triage,
        )
    records = [observation.to_json() for observation in dataset.observations]
    # Fold before draining the obs delta so analysis counters ship with it.
    partial = None
    if fold_spec is not None:
        partial = fold_spec.build()
        partial.ingest_many(dataset.observations)
    result = (
        records,
        perf.diff_snapshots(perf_before, perf.PERF.snapshot()),
        obs.worker_payload(metrics_before),
        partial,
    )
    tmp = result_path.with_name(result_path.name + ".tmp")
    with open(tmp, "wb") as fh:
        pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, result_path)


# -- supervisor side ----------------------------------------------------------------


@dataclass
class _ShardTask:
    """One dispatchable unit of crawl work (a shard or a bisected sub-shard)."""

    shard_id: str
    targets: List[CrawlTarget]
    checkpoint: Path
    crashes: int = 0
    #: Domains whose page metrics the supervisor already credited
    #: parent-side after a worker death (see ``_credit_orphan_metrics``) —
    #: a task's checkpoint survives respawns, so a second death must not
    #: re-count the rows credited at the first.
    credited: Set[str] = field(default_factory=set)


class _WorkerHandle:
    """A live worker process plus its liveness bookkeeping."""

    def __init__(self, task: _ShardTask, process, heartbeat_path: Path,
                 result_path: Path) -> None:
        self.task = task
        self.process = process
        self.heartbeat_path = heartbeat_path
        self.result_path = result_path
        self.spawned_at = time.time()
        self.state = "healthy"  # healthy | suspect

    def last_sign_of_life(self) -> float:
        try:
            beat = os.stat(self.heartbeat_path).st_mtime
        except OSError:
            beat = 0.0
        return max(self.spawned_at, beat)


def _mp_context():
    """Fork where available (cheap, inherits loaded modules); default otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _credit_observation_metrics(observation: SiteObservation, label: str) -> None:
    """Parent-side crawler counters for one observation whose worker never
    shipped its metrics delta (persisted before a crash, or synthesized by
    quarantine).

    Mirrors :func:`repro.crawler.resilience._record_page_metrics` counter
    for counter — ``repro.obs.inspect.crawl_totals`` must keep agreeing
    with ``CrawlDataset.health()`` exactly — but records no latency
    histogram and no events: the page was never timed in this process.
    """
    attempts = observation.attempts
    obs.inc(obs._labeled("crawler.pages", label))
    obs.inc(obs._labeled("crawler.attempts_total", label), attempts)
    obs.inc(f"crawler.attempts[{label}|{attempts}]")
    if attempts > 1:
        obs.inc(obs._labeled("crawler.retries", label), attempts - 1)
    if observation.success:
        obs.inc(obs._labeled("crawler.pages_ok", label))
        if observation.recovered:
            obs.inc(obs._labeled("crawler.recovered", label))
    elif observation.failure_reason:
        obs.inc(f"crawler.failures[{label}|{observation.failure_reason}]")
        if observation.failure_reason.startswith("timeout"):
            obs.inc(obs._labeled("crawler.watchdog", label))
    if observation.inner_page_failures:
        obs.inc(
            obs._labeled("crawler.inner_page_failures", label),
            observation.inner_page_failures,
        )


class _Supervisor:
    """State for one supervised crawl: task queue, live workers, salvage pool."""

    def __init__(self, network, profile: Optional[BrowserProfile], label: str,
                 retry_policy: Optional[RetryPolicy],
                 page_budget: Optional[PageBudget], inner_paths: tuple,
                 resume: bool, config: SupervisorConfig, scratch: Path,
                 ledger: QuarantineLedger, jobs: int, fold=None,
                 js_prewarm=None, static_triage=None) -> None:
        self.network = network
        self.profile = profile
        self.label = label
        self.retry_policy = retry_policy
        self.page_budget = page_budget
        self.inner_paths = inner_paths
        self.resume = resume
        self.config = config
        self.scratch = scratch
        self.ledger = ledger
        self.jobs = max(1, jobs)
        self.mp = _mp_context()
        self.pending: deque = deque()
        self.active: Dict[str, _WorkerHandle] = {}
        self.datasets: List[CrawlDataset] = []
        #: Observations salvaged from the checkpoints of abandoned (bisected
        #: or exhausted) tasks, plus the quarantine failure rows.
        self.salvaged: List[SiteObservation] = []
        self.quarantined: List[QuarantineRecord] = []
        #: Optional streaming AnalysisFold: workers fold shard partials and
        #: ship them home; salvaged observations are folded parent-side.
        self.fold = fold
        #: Script sources each worker compiles before its first page load.
        self.js_prewarm = tuple(js_prewarm) if js_prewarm else None
        #: Static-triage knob forwarded verbatim to every worker's Browser.
        self.static_triage = static_triage
        self.respawns = 0
        self.spawned = 0

    # -- lifecycle ------------------------------------------------------------

    def run(self, tasks: Sequence[_ShardTask]) -> None:
        self.pending.extend(tasks)
        try:
            while self.pending or self.active:
                while self.pending and len(self.active) < self.jobs:
                    self._spawn(self.pending.popleft())
                if not self._poll_once():
                    time.sleep(self.config.poll_interval_s)
        except BaseException:
            # Respawn-budget blowout or a KeyboardInterrupt: put every live
            # worker down before propagating — never leak crawling processes.
            for handle in self.active.values():
                self._kill(handle.process)
            self.active.clear()
            raise

    def _spawn(self, task: _ShardTask) -> None:
        attempt = f"{task.shard_id}-try{task.crashes}"
        heartbeat = self.scratch / f"heartbeat-{attempt}.json"
        result = self.scratch / f"result-{attempt}.pkl"
        payload = (
            self.network, task.targets, self.profile, self.label,
            self.retry_policy, self.page_budget, self.inner_paths,
            task.checkpoint, self.resume, perf.current_config(), obs.config(),
            f"shard-{task.shard_id}",
            self.fold.spec if self.fold is not None else None,
            self.js_prewarm,
            self.static_triage,
        )
        process = self.mp.Process(
            target=_supervised_shard_worker,
            args=(payload, heartbeat, result),
            daemon=True,
        )
        process.start()
        self.spawned += 1
        obs.inc("supervisor.workers_spawned")
        self.active[task.shard_id] = _WorkerHandle(task, process, heartbeat, result)

    def _poll_once(self) -> bool:
        """One supervision sweep; True when any worker settled (skip sleep)."""
        progressed = False
        for shard_id in list(self.active):
            handle = self.active[shard_id]
            process = handle.process
            if not process.is_alive():
                process.join()
                del self.active[shard_id]
                progressed = True
                if process.exitcode == 0 and handle.result_path.exists():
                    self._collect(handle)
                else:
                    self._on_worker_death(handle.task, f"exit:{process.exitcode}")
                continue
            now = time.time()
            silent_for = now - handle.last_sign_of_life()
            budget = self.config.shard_wall_budget_s
            if silent_for > self.config.liveness_deadline_s:
                self._kill(process)
                del self.active[shard_id]
                obs.inc("supervisor.heartbeat_timeouts")
                self._on_worker_death(handle.task, "heartbeat-timeout")
                progressed = True
            elif budget is not None and now - handle.spawned_at > budget:
                self._kill(process)
                del self.active[shard_id]
                obs.inc("supervisor.wall_budget_kills")
                self._on_worker_death(handle.task, "wall-budget")
                progressed = True
            elif silent_for > self.config.liveness_deadline_s / 2:
                if handle.state == "healthy":
                    handle.state = "suspect"
                    obs.inc("supervisor.suspects")
                    obs.event(
                        "crawl.worker.suspect",
                        sample_key=shard_id,
                        shard=shard_id,
                        silent_for_s=round(silent_for, 3),
                    )
            elif handle.state == "suspect":
                handle.state = "healthy"  # a beat arrived after all
        return progressed

    def _kill(self, process) -> None:
        """SIGTERM, short grace, then SIGKILL — never wait on a wedged worker."""
        process.terminate()
        process.join(self.config.term_grace_s)
        if process.is_alive():
            process.kill()
            process.join()

    def _collect(self, handle: _WorkerHandle) -> None:
        with open(handle.result_path, "rb") as fh:
            records, perf_delta, obs_payload, partial = pickle.load(fh)
        handle.result_path.unlink(missing_ok=True)
        perf.PERF.merge(perf_delta)
        obs.ingest_worker(obs_payload)
        dataset = CrawlDataset(label=self.label)
        dataset.observations.extend(
            SiteObservation.from_json(record) for record in records
        )
        self.datasets.append(dataset)
        if self.fold is not None:
            self.fold.add_partial(partial)

    # -- failure handling -----------------------------------------------------

    def _on_worker_death(self, task: _ShardTask, signal: str) -> None:
        self.respawns += 1
        if self.respawns > self.config.max_total_respawns:
            raise SupervisorError(
                f"supervisor exhausted its respawn budget "
                f"({self.config.max_total_respawns}) — last death: shard "
                f"{task.shard_id} ({signal}); the crawl environment is "
                f"failing faster than quarantine can converge"
            )
        task.crashes += 1
        obs.inc("supervisor.respawns")
        obs.inc(f"supervisor.deaths[{signal}]")
        obs.event(
            "crawl.worker.respawn",
            sample_key=task.shard_id,
            shard=task.shard_id,
            signal=signal,
            crashes=task.crashes,
            remaining=len(task.targets),
        )
        persisted = load_checkpoint(task.checkpoint)
        self._credit_orphan_metrics(task, persisted)
        done = {o.domain for o in persisted.observations} if persisted else set()
        remainder = [t for t in task.targets if t.domain not in done]
        if not remainder:
            # Died after the last page but before the result was promoted:
            # the checkpoint has every observation — salvage it directly.
            self.salvaged.extend(persisted.observations)
            return
        if task.crashes < self.config.max_shard_crashes:
            # Plain respawn: same checkpoint, same target list — the resume
            # machinery skips persisted domains, so the remainder is crawled
            # exactly once and the completed dataset carries everything.
            self.pending.append(task)
            return
        # Poisonous shard: salvage what it persisted, then bisect or
        # quarantine the remainder.
        if persisted is not None:
            self.salvaged.extend(persisted.observations)
        if len(remainder) == 1:
            self._quarantine(task, remainder[0], signal)
            return
        obs.inc("supervisor.splits")
        mid = (len(remainder) + 1) // 2
        for suffix, part in (("a", remainder[:mid]), ("b", remainder[mid:])):
            sub_id = f"{task.shard_id}.{suffix}"
            self.pending.append(
                _ShardTask(
                    shard_id=sub_id,
                    targets=part,
                    checkpoint=self.scratch / f"{self.label}.shard-{sub_id}.jsonl",
                    # Sub-shards are already suspects: one more death splits
                    # (or quarantines) them, keeping isolation logarithmic.
                    crashes=self.config.max_shard_crashes - 1,
                )
            )

    def _credit_orphan_metrics(self, task: _ShardTask, persisted) -> None:
        """Count checkpoint rows whose worker died before shipping metrics.

        A dead worker's perf/metrics payload dies with it, but the
        observations it persisted survive (they are salvaged, or skipped by
        the respawn's resume) — so without this, ``repro.obs summary``
        would under-count exactly the pages that survived a crash.  The
        per-task ``credited`` set keeps the crediting exactly-once across
        repeat deaths of the same task, mirroring the delta semantics of
        the worker payload channel.
        """
        if persisted is None:
            return
        for observation in persisted.observations:
            if observation.domain in task.credited:
                continue
            task.credited.add(observation.domain)
            _credit_observation_metrics(observation, self.label)

    def _quarantine(self, task: _ShardTask, site: CrawlTarget, signal: str) -> None:
        record = QuarantineRecord(
            domain=site.domain,
            rank=site.rank,
            population=site.population,
            label=self.label,
            reason="worker-killed",
            attempts=task.crashes,
            last_signal=signal,
            shard=task.shard_id,
            ts=time.time(),
        )
        self.ledger.append(record)
        self.quarantined.append(record)
        obs.inc("supervisor.quarantined")
        obs.event(
            "crawl.quarantine",
            sample_key=site.domain,
            domain=site.domain,
            shard=task.shard_id,
            signal=signal,
            attempts=task.crashes,
        )
        observation = SiteObservation(
            domain=site.domain,
            rank=site.rank,
            population=site.population,
            success=False,
            failure_reason=record.failure_reason,
            attempts=task.crashes,
        )
        self.salvaged.append(observation)
        # Account the synthesized observation in the crawler metrics too:
        # quarantined sites never pass through ``collect_with_retries`` (the
        # killed workers' deltas died with them), so without this the run
        # log's failure rows would omit exactly the sites the supervisor
        # gave up on.
        _credit_observation_metrics(observation, self.label)


def run_supervised_crawl(
    network,
    targets: Sequence[CrawlTarget],
    profile: Optional[BrowserProfile] = None,
    label: str = "control",
    jobs: int = 1,
    shards: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    page_budget: Optional[PageBudget] = None,
    inner_paths: tuple = (),
    resume: bool = True,
    config: Optional[SupervisorConfig] = None,
    fold=None,
    js_prewarm: Optional[Sequence[str]] = None,
    static_triage: Optional[bool] = None,
) -> CrawlDataset:
    """Crawl ``targets`` under supervised worker processes.

    Signature-compatible with :func:`~repro.crawler.shards.run_sharded_crawl`
    (which delegates here when given a ``supervisor`` config) and returns the
    same merged :class:`CrawlDataset` — except that a run whose workers died
    completes anyway, with each isolated poison site carried as a failed
    observation with reason ``quarantined:<signal>`` and appended to the
    ``quarantine.jsonl`` ledger next to the shard checkpoints.

    Supervision *requires* per-shard checkpoints (re-dispatch resumes from
    them).  Without a ``checkpoint_dir`` they live in a private temporary
    directory that is deleted on return — pass a real directory to keep the
    checkpoints and the quarantine ledger.
    """
    from repro.crawler.shards import (
        merge_shard_datasets,
        plan_shards,
        shard_checkpoint_path,
    )

    config = config or SupervisorConfig()
    jobs = max(1, jobs)
    planned = plan_shards(targets, max(1, shards if shards is not None else jobs))

    scratch_tmp: Optional[tempfile.TemporaryDirectory] = None
    if checkpoint_dir is not None:
        directory = Path(checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
    else:
        scratch_tmp = tempfile.TemporaryDirectory(prefix="repro-supervisor-")
        directory = Path(scratch_tmp.name)

    try:
        ledger = QuarantineLedger(quarantine_ledger_path(directory))
        supervisor = _Supervisor(
            network, profile, label, retry_policy, page_budget, inner_paths,
            resume, config, directory, ledger, jobs, fold=fold,
            js_prewarm=js_prewarm, static_triage=static_triage,
        )
        tasks = [
            _ShardTask(
                shard_id=f"{index:04d}",
                targets=list(shard),
                checkpoint=shard_checkpoint_path(directory, label, index, len(planned)),
            )
            for index, shard in enumerate(planned)
        ]
        with obs.span(
            "crawl.supervised", label=label, shards=len(tasks), jobs=jobs
        ) as span:
            supervisor.run(tasks)
            span.set_attr("respawns", supervisor.respawns)
            span.set_attr("quarantined", len(supervisor.quarantined))
        shard_datasets = list(supervisor.datasets)
        if supervisor.salvaged:
            salvage = CrawlDataset(label=label)
            salvage.observations.extend(supervisor.salvaged)
            shard_datasets.append(salvage)
            # Salvaged rows never crossed a worker boundary, so their partial
            # is folded here.  If a salvaged domain was also re-crawled (the
            # partials overlap), the fold's merge-time partition check fails
            # and the bundle is re-folded from the merged dataset instead.
            if fold is not None:
                fold.fold_dataset(salvage)
        return merge_shard_datasets(label, targets, shard_datasets)
    finally:
        if scratch_tmp is not None:
            scratch_tmp.cleanup()
