"""Shard planner and parallel crawl executor.

The paper's crawl covers 40k homepages; a strictly serial visit loop leaves
every core but one idle.  This module splits a target list into N
deterministic shards and crawls them with ``multiprocessing`` workers, each
with its own checkpoint file (reusing the resume machinery of
:mod:`repro.crawler.crawl` / :mod:`repro.crawler.storage`), then merges the
shard datasets back into one :class:`CrawlDataset` in the original target
order — so a parallel crawl is observation-for-observation identical to a
serial one.

Why this is safe: every page load runs in a fresh JS realm against a
stateless synthetic network, and fault injection
(:class:`~repro.net.faults.FaultInjector`) is keyed by ``(seed, url)``
rather than draw order.  Shard membership therefore cannot change what any
site observes, only *when* it is visited.

* :func:`plan_shards` — deterministic round-robin split (shard ``i`` takes
  ``targets[i::n]``), so top/tail populations stay balanced across shards;
* :func:`run_sharded_crawl` — the executor: serial in-process when
  ``jobs <= 1`` (progress callbacks supported), worker processes otherwise;
  with a ``supervisor`` config, the bare pool is replaced by the supervised
  executor of :mod:`repro.crawler.supervisor` (heartbeats, crash
  re-dispatch, poison-site quarantine, degraded-mode completion);
* :func:`merge_shard_datasets` — reassemble one dataset in target order;
  merged :class:`~repro.crawler.crawl.CrawlHealth` comes from the merged
  dataset's own ``health()``.

Worker processes receive the (picklable) synthetic network and return
observations as JSON records; a killed parallel crawl leaves per-shard
``.partial`` checkpoints behind, and re-running with the same
``checkpoint_dir`` resumes every shard without re-visiting persisted
domains.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

from repro import obs, perf
from repro.browser.profile import BrowserProfile
from repro.js import compiler as js_compiler
from repro.core.records import SiteObservation
from repro.crawler.crawl import CrawlDataset, CrawlTarget, resume_crawl, run_crawl
from repro.crawler.resilience import PageBudget, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (supervisor imports us)
    from repro.core.reducers import AnalysisFold
    from repro.crawler.supervisor import SupervisorConfig

__all__ = [
    "plan_shards",
    "shard_checkpoint_path",
    "merge_shard_datasets",
    "run_sharded_crawl",
]


def plan_shards(targets: Sequence[CrawlTarget], shards: int) -> List[List[CrawlTarget]]:
    """Split ``targets`` into at most ``shards`` deterministic round-robin shards.

    Shard ``i`` takes ``targets[i::shards]``: the split depends only on the
    target order and the shard count, never on timing, and interleaves the
    (rank-ordered) list so every shard sees a comparable top/tail mix.
    Empty shards are dropped, so fewer targets than shards is fine.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    planned = [list(targets[i::shards]) for i in range(shards)]
    return [shard for shard in planned if shard]


def shard_checkpoint_path(
    checkpoint_dir: Union[str, Path], label: str, index: int, total: int
) -> Path:
    """The checkpoint file for one shard of a sharded crawl."""
    return Path(checkpoint_dir) / f"{label}.shard-{index:04d}-of-{total:04d}.jsonl"


def merge_shard_datasets(
    label: str,
    targets: Sequence[CrawlTarget],
    shard_datasets: Sequence[CrawlDataset],
) -> CrawlDataset:
    """Merge shard outputs into one dataset ordered like ``targets``.

    The merged dataset is indistinguishable from a serial crawl of the same
    list: observations appear in target order, and crawl health (success
    counts, attempts histogram, failure table) is recomputed from the merged
    observations via :meth:`CrawlDataset.health`.

    Degenerate shards are first-class: an empty shard dataset contributes
    nothing but cannot perturb the global ordering, and an all-failed
    shard's failure rows are carried into the merge like any observation —
    they are the crawl-health accounting.  When the same domain appears in
    several shard datasets (a supervised re-dispatch overlapping a salvaged
    checkpoint), the successful observation wins regardless of shard order;
    among observations of equal success the later shard wins — so a
    salvaged failure row can never shadow a completed re-crawl.
    """
    by_domain = {}
    for shard in shard_datasets:
        for observation in shard.observations:
            current = by_domain.get(observation.domain)
            if current is None or observation.success or not current.success:
                by_domain[observation.domain] = observation
    merged = CrawlDataset(label=label)
    for target in targets:
        observation = by_domain.get(target.domain)
        if observation is not None:
            merged.observations.append(observation)
    return merged


def _crawl_shard_worker(payload):
    """Worker entry point: crawl one shard, return observations as JSON.

    Must stay a module-level function (pickled by name by multiprocessing).
    Observations cross the process boundary as their JSON records — the same
    schema the checkpoint files use — so the parent never depends on pickle
    compatibility of in-flight collector objects.  Each worker installs the
    parent's render-cache and observability configs before crawling.

    Perf counters and obs metrics ship back as *deltas from the task start*,
    not cumulative snapshots: a pooled worker process runs several shard
    tasks back to back, and cumulative snapshots would re-count every
    earlier task when the parent merges them (exactly-once is what
    ``tests/obs`` asserts under ``jobs=4``).  Trace records are drained by
    :func:`repro.obs.worker_payload` for the same reason.
    """
    (network, targets, profile, label, retry_policy, page_budget, inner_paths,
     checkpoint, resume, perf_config, obs_config, shard_tid, fold_spec,
     js_prewarm, static_triage) = payload
    perf.configure(perf_config)
    obs.configure(obs_config)
    obs.set_worker_label(shard_tid)
    # Sampling profiler: (re)start to match the parent's knobs.  This is
    # fork-aware — a freshly forked pool worker inherits the parent's
    # sample table, which maybe_start clears so parent samples are never
    # shipped home twice (the parent drains its own table itself).
    obs.profiler.maybe_start(obs_config)
    perf_before = perf.PERF.snapshot()
    metrics_before = obs.METRICS.snapshot()
    # Warm the compiled-script cache before the first page load, so known
    # vendor scripts never pay a compile inside a page.  The compile misses
    # land after the baseline snapshot and therefore ship with this task's
    # delta; a pooled worker re-running the prewarm on its next task finds
    # the cache warm and records nothing.
    if js_prewarm:
        js_compiler.prewarm(js_prewarm)
    with obs.span("crawl.shard", shard=shard_tid, label=label, size=len(targets)):
        dataset = _crawl_one_shard(
            network, targets, profile, label, retry_policy, page_budget,
            inner_paths, checkpoint, resume, progress=None,
            static_triage=static_triage,
        )
    records = [observation.to_json() for observation in dataset.observations]
    # Fold the shard's analysis partial *before* draining the obs delta, so
    # the parent receives the worker's ``analysis.*`` counters exactly once.
    partial = None
    if fold_spec is not None:
        partial = fold_spec.build()
        partial.ingest_many(dataset.observations)
    perf_delta = perf.diff_snapshots(perf_before, perf.PERF.snapshot())
    return records, perf_delta, obs.worker_payload(metrics_before), partial


def _crawl_one_shard(
    network,
    targets: Sequence[CrawlTarget],
    profile: Optional[BrowserProfile],
    label: str,
    retry_policy: Optional[RetryPolicy],
    page_budget: Optional[PageBudget],
    inner_paths: tuple,
    checkpoint: Optional[Path],
    resume: bool,
    progress: Optional[Callable[[int, SiteObservation], None]],
    static_triage: Optional[bool] = None,
) -> CrawlDataset:
    if checkpoint is not None:
        return resume_crawl(
            network,
            targets,
            checkpoint,
            profile=profile,
            label=label,
            progress=progress,
            inner_paths=inner_paths,
            retry_policy=retry_policy,
            page_budget=page_budget,
            resume=resume,
            static_triage=static_triage,
        )
    return run_crawl(
        network,
        targets,
        profile=profile,
        label=label,
        progress=progress,
        inner_paths=inner_paths,
        retry_policy=retry_policy,
        page_budget=page_budget,
        static_triage=static_triage,
    )


def run_sharded_crawl(
    network,
    targets: Sequence[CrawlTarget],
    profile: Optional[BrowserProfile] = None,
    label: str = "control",
    jobs: int = 1,
    shards: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    page_budget: Optional[PageBudget] = None,
    inner_paths: tuple = (),
    resume: bool = True,
    progress: Optional[Callable[[int, SiteObservation], None]] = None,
    supervisor: Optional["SupervisorConfig"] = None,
    fold: Optional["AnalysisFold"] = None,
    js_prewarm: Optional[Sequence[str]] = None,
    static_triage: Optional[bool] = None,
) -> CrawlDataset:
    """Crawl ``targets`` over ``jobs`` workers and merge the shard datasets.

    * ``jobs <= 1`` with no ``checkpoint_dir`` and a single shard falls back
      to a plain :func:`run_crawl` — byte-for-byte the serial path;
    * ``shards`` defaults to ``jobs`` (more shards than jobs is allowed:
      workers drain the shard queue);
    * with a ``checkpoint_dir``, every shard checkpoints to its own file and
      a killed run — serial or parallel — resumes from the per-shard
      partials, re-visiting nothing that was persisted;
    * ``progress`` is supported on the serial path only (callbacks cannot
      cross the process boundary);
    * with a ``supervisor`` config, execution is delegated to
      :func:`repro.crawler.supervisor.run_supervised_crawl`: heartbeat-
      monitored workers, crash re-dispatch from the per-shard checkpoints,
      and bisecting poison-site quarantine.  A no-fault supervised run
      produces a dataset identical to this unsupervised path.
    * with a ``fold`` (an :class:`~repro.core.reducers.AnalysisFold`), each
      shard's observations are also folded into a streaming analysis partial
      as the crawl proceeds — in the worker process for parallel shards, so
      partials ride home with the shard records and the parent never
      re-ingests the dataset.  Call ``fold.merge(dataset)`` afterwards for
      the combined bundle.
    * ``js_prewarm`` is a list of script sources each worker compiles into
      the process-wide compiled-script cache before its first page load
      (:func:`repro.js.compiler.prewarm`); a no-op when ``REPRO_JS_COMPILE``
      disables compiled execution.  Sources arrive as plain data, so the
      crawler stays independent of whatever generator produced them.

    The merged dataset equals a serial crawl of the same targets: identical
    observations in identical order (see ``tests/crawler/test_shards.py``).
    """
    if supervisor is not None:
        # Local import: supervisor builds on this module's planner/merger.
        from repro.crawler.supervisor import run_supervised_crawl

        return run_supervised_crawl(
            network,
            targets,
            profile=profile,
            label=label,
            jobs=jobs,
            shards=shards,
            checkpoint_dir=checkpoint_dir,
            retry_policy=retry_policy,
            page_budget=page_budget,
            inner_paths=inner_paths,
            resume=resume,
            config=supervisor,
            fold=fold,
            js_prewarm=js_prewarm,
            static_triage=static_triage,
        )
    jobs = max(1, jobs)
    n_shards = shards if shards is not None else jobs
    planned = plan_shards(targets, max(1, n_shards))

    if js_prewarm:
        js_prewarm = tuple(js_prewarm)

    if len(planned) == 1 and jobs == 1 and checkpoint_dir is None:
        if js_prewarm:
            js_compiler.prewarm(js_prewarm)
        dataset = run_crawl(
            network,
            targets,
            profile=profile,
            label=label,
            progress=progress,
            inner_paths=inner_paths,
            retry_policy=retry_policy,
            page_budget=page_budget,
            static_triage=static_triage,
        )
        if fold is not None:
            fold.fold_dataset(dataset)
        return dataset

    checkpoints: List[Optional[Path]] = [None] * len(planned)
    if checkpoint_dir is not None:
        directory = Path(checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        checkpoints = [
            shard_checkpoint_path(directory, label, index, len(planned))
            for index in range(len(planned))
        ]

    shard_datasets: List[CrawlDataset]
    if jobs == 1:
        if js_prewarm:
            js_compiler.prewarm(js_prewarm)
        shard_datasets = []
        for index, shard in enumerate(planned):
            with obs.span(
                "crawl.shard", shard=f"shard-{index}", label=label, size=len(shard)
            ):
                shard_dataset = _crawl_one_shard(
                    network, shard, profile, label, retry_policy, page_budget,
                    inner_paths, checkpoints[index], resume, progress,
                    static_triage=static_triage,
                )
                if fold is not None:
                    fold.fold_dataset(shard_dataset)
                shard_datasets.append(shard_dataset)
    else:
        fold_spec = fold.spec if fold is not None else None
        payloads = [
            (network, shard, profile, label, retry_policy, page_budget,
             inner_paths, checkpoints[index], resume, perf.current_config(),
             obs.config(), f"shard-{index}", fold_spec, js_prewarm,
             static_triage)
            for index, shard in enumerate(planned)
        ]
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(planned)))
        try:
            results = list(pool.map(_crawl_shard_worker, payloads))
        except BaseException:
            # Ctrl-C (or any abort) must not leak live workers: cancel the
            # queued shards, skip the blocking result wait, and re-raise.
            # Per-shard .partial checkpoints survive for a later resume.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown()
        shard_datasets = []
        for records, perf_delta, obs_payload, partial in results:
            perf.PERF.merge(perf_delta)
            obs.ingest_worker(obs_payload)
            dataset = CrawlDataset(label=label)
            dataset.observations.extend(
                SiteObservation.from_json(record) for record in records
            )
            shard_datasets.append(dataset)
            if fold is not None:
                fold.add_partial(partial)

    return merge_shard_datasets(label, targets, shard_datasets)
