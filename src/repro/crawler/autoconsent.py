"""Autoconsent: opt in to common consent banners (§3.1 uses DuckDuckGo's
autoconsent library; we model its effect — consent-gated scripts run)."""

from __future__ import annotations

from repro.browser.browser import Page

__all__ = ["Autoconsent"]


class Autoconsent:
    """Clicks through consent banners the crawler encounters."""

    def __init__(self) -> None:
        self.banners_handled = 0

    def handle(self, page: Page) -> bool:
        """Opt in on ``page`` if it shows a known banner pattern.

        Returns True when a banner was handled (consent-gated scripts then
        execute, exactly like a user clicking "accept").
        """
        if not page.ok:
            return False
        if not page.has_consent_banner and page.pending_count("consent") == 0:
            return False
        # Click the accept button if the page exposes one.
        if page.document is not None:
            for button in page.document.query_selector_all(".consent-accept"):
                button._js_click(None, None, [])
        page.trigger("consent")
        self.banners_handled += 1
        return True
