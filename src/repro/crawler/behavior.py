"""User-behavior simulation: §3.1 — "simulates basic user behavior by
scrolling the page up and down and then waiting five seconds"."""

from __future__ import annotations

from repro.browser.browser import Page

__all__ = ["UserBehavior"]


class UserBehavior:
    """Scroll + settle-wait simulation."""

    SETTLE_MS = 5_000.0

    def __init__(self, settle_ms: float = SETTLE_MS) -> None:
        self.settle_ms = settle_ms
        self.pages_scrolled = 0

    def simulate(self, page: Page) -> None:
        """Scroll down and up, then wait for late scripts to finish."""
        if not page.ok:
            return
        # Scrolling fires scroll listeners: lazily-loaded fingerprinting runs.
        page.trigger("scroll")
        self.pages_scrolled += 1
        # The settle wait advances the virtual clock, so anything recorded
        # afterwards is visibly later in the timeline.
        page.instrument.clock.advance(self.settle_ms)
