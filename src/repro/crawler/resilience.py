"""Retry policy, page budget and crash isolation for the crawl engine.

The paper's real crawl lost roughly a thousand of its 40k targets to
transient failures (16,276/17,260 successes per population).  This module is
the machinery that keeps such losses bounded and *recoverable*:

* :data:`failure classification <is_transient>` — which failure reasons are
  worth retrying (connection errors, timeouts, 5xx, truncated transfers) and
  which never are (bot blocks, 404s, deterministic crashes);
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter, advanced over a virtual clock so no wall-clock time
  passes in tests or benchmarks;
* :class:`PageBudget` — the per-page watchdog: a virtual-time ceiling and an
  optional JS step cap, both surfaced as a ``timeout`` failure reason
  instead of a hung crawl;
* :func:`collect_with_retries` — the retry loop around one collector visit.

Crash isolation itself lives in
:meth:`~repro.crawler.collector.CanvasCollector.collect`, which converts any
uncaught exception into a failed observation with reason
``crash:<ExceptionType>`` so one bad page cannot kill a 40k-site crawl.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.browser.instrumentation import VirtualClock
from repro.core.records import SiteObservation

__all__ = [
    "TRANSIENT_PREFIXES",
    "PERMANENT_REASONS",
    "is_transient",
    "PageBudget",
    "RetryPolicy",
    "collect_with_retries",
]

#: Failure-reason prefixes a retry can plausibly fix: the site may answer on
#: the next attempt.
TRANSIENT_PREFIXES = (
    "network-error",
    "timeout",
    "server-error",      # 5xx — distinct from permanent 4xx
    "truncated-script",
    "subresource-error",
)

#: Failure reasons that are definitive: retrying only re-annoys the target.
PERMANENT_REASONS = frozenset({"bot-blocked", "not-found"})


def is_transient(reason: Optional[str]) -> bool:
    """Whether a failure reason names a transient (retry-worthy) class."""
    if reason is None or reason in PERMANENT_REASONS:
        return False
    return any(reason == p or reason.startswith(p) for p in TRANSIENT_PREFIXES)


@dataclass(frozen=True)
class PageBudget:
    """Per-page watchdog limits.

    ``max_page_ms`` is virtual time (the page clock plus injected response
    latency); ``max_js_steps`` caps interpreter work per script.  Exceeding
    either yields a ``timeout`` failure reason — the crawl analogue of the
    real collector killing a page that never settles.
    """

    max_page_ms: float = 90_000.0
    max_js_steps: Optional[int] = None

    def exceeded(self, elapsed_ms: float) -> bool:
        return elapsed_ms > self.max_page_ms


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff over transient failures only.

    Backoff delays are deterministic: jitter is drawn from a RNG seeded by
    ``(key, attempt)``, so the same crawl replays the same schedule — which
    keeps fault-injection tests and resumed crawls reproducible.
    """

    max_attempts: int = 3
    base_delay_ms: float = 500.0
    backoff_factor: float = 2.0
    max_delay_ms: float = 30_000.0
    jitter_fraction: float = 0.1
    #: Crashes (``crash:*``) are deterministic bugs, not weather; retrying
    #: them is off by default.
    retry_crashes: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def is_retryable(self, reason: Optional[str]) -> bool:
        if reason is None:
            return False
        if reason.startswith("crash:"):
            return self.retry_crashes
        return is_transient(reason)

    def delay_ms(self, attempt: int, key: str = "") -> float:
        """Backoff before attempt ``attempt + 1`` (``attempt`` >= 1 made so far)."""
        delay = min(
            self.base_delay_ms * self.backoff_factor ** (attempt - 1), self.max_delay_ms
        )
        if self.jitter_fraction:
            rng = random.Random(f"retry:{key}:{attempt}")
            delay *= 1.0 + rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return delay

    def backoff_schedule(self, key: str = "") -> List[float]:
        """Every delay the policy would sleep for ``key``, in order."""
        return [self.delay_ms(attempt, key) for attempt in range(1, self.max_attempts)]


def collect_with_retries(
    collector,
    target,
    policy: Optional[RetryPolicy] = None,
    clock: Optional[VirtualClock] = None,
    label: str = "",
) -> SiteObservation:
    """Visit one target, retrying transient failures per ``policy``.

    ``collector`` is any object with a ``collect(domain, rank, population)``
    returning a :class:`SiteObservation` (crash isolation is the collector's
    job).  ``clock`` — a crawl-level virtual clock — advances by each backoff
    delay, keeping the whole retry dance wall-clock free.

    ``label`` names the crawl configuration in the observability layer: the
    whole visit (retries included) is one ``crawl.page`` span, each backoff
    a ``crawl.retry`` event, and the settled outcome lands in the
    ``crawler.*`` metrics that ``repro.obs summary`` folds back into
    :class:`~repro.crawler.crawl.CrawlHealth`-equivalent totals.
    """
    started = time.perf_counter()
    with obs.span(
        "crawl.page", domain=target.domain, population=target.population
    ) as page_span:
        attempts = 0
        while True:
            attempts += 1
            observation = collector.collect(target.domain, target.rank, target.population)
            observation.attempts = attempts
            if observation.success:
                break
            if (
                policy is None
                or attempts >= policy.max_attempts
                or not policy.is_retryable(observation.failure_reason)
            ):
                break
            obs.event(
                "crawl.retry",
                sample_key=target.domain,
                domain=target.domain,
                attempt=attempts,
                reason=observation.failure_reason,
            )
            if clock is not None:
                clock.advance(policy.delay_ms(attempts, key=target.domain))
        page_span.set_attr("attempts", attempts)
        page_span.set_attr("success", observation.success)
        if not observation.success:
            page_span.set_attr("failure_reason", observation.failure_reason)
            page_span.set_status("error")
    _record_page_metrics(observation, label, time.perf_counter() - started)
    return observation


def _record_page_metrics(observation: SiteObservation, label: str, seconds: float) -> None:
    """Fold one settled visit into the crawler metrics, per crawl label.

    The bracketed names (``crawler.pages[control]``,
    ``crawler.attempts[control|2]``…) are what
    :func:`repro.obs.inspect.crawl_totals` parses back into health totals —
    the two must stay in lockstep.
    """
    attempts = observation.attempts
    obs.inc(obs._labeled("crawler.pages", label))
    obs.inc(obs._labeled("crawler.attempts_total", label), attempts)
    obs.inc(f"crawler.attempts[{label}|{attempts}]")
    if attempts > 1:
        obs.inc(obs._labeled("crawler.retries", label), attempts - 1)
    if observation.success:
        obs.inc(obs._labeled("crawler.pages_ok", label))
        if observation.recovered:
            obs.inc(obs._labeled("crawler.recovered", label))
    elif observation.failure_reason:
        obs.inc(f"crawler.failures[{label}|{observation.failure_reason}]")
        if observation.failure_reason.startswith("timeout"):
            obs.inc(obs._labeled("crawler.watchdog", label))
            obs.event("crawl.watchdog", sample_key=observation.domain, domain=observation.domain)
    if observation.inner_page_failures:
        obs.inc(
            obs._labeled("crawler.inner_page_failures", label),
            observation.inner_page_failures,
        )
    obs.observe("crawl.page.seconds", seconds)
