"""Crawler substrate: the instrumented measurement crawler of §3.1."""

from repro.crawler.autoconsent import Autoconsent
from repro.crawler.behavior import UserBehavior
from repro.crawler.collector import CanvasCollector
from repro.crawler.crawl import (
    CrawlDataset,
    CrawlHealth,
    CrawlTarget,
    resume_crawl,
    run_crawl,
)
from repro.crawler.resilience import (
    PageBudget,
    RetryPolicy,
    collect_with_retries,
    is_transient,
)
from repro.crawler.shards import (
    merge_shard_datasets,
    plan_shards,
    run_sharded_crawl,
    shard_checkpoint_path,
)
from repro.crawler.storage import (
    CheckpointWriter,
    DatasetError,
    checkpoint_path,
    load_checkpoint,
    load_dataset,
    save_dataset,
)
from repro.crawler.supervisor import (
    QuarantineLedger,
    QuarantineRecord,
    SupervisorConfig,
    SupervisorError,
    quarantine_ledger_path,
    run_supervised_crawl,
)

__all__ = [
    "Autoconsent",
    "UserBehavior",
    "CanvasCollector",
    "CrawlDataset",
    "CrawlHealth",
    "CrawlTarget",
    "run_crawl",
    "resume_crawl",
    "PageBudget",
    "RetryPolicy",
    "collect_with_retries",
    "is_transient",
    "plan_shards",
    "run_sharded_crawl",
    "merge_shard_datasets",
    "shard_checkpoint_path",
    "SupervisorConfig",
    "SupervisorError",
    "QuarantineLedger",
    "QuarantineRecord",
    "quarantine_ledger_path",
    "run_supervised_crawl",
    "CheckpointWriter",
    "DatasetError",
    "checkpoint_path",
    "load_checkpoint",
    "load_dataset",
    "save_dataset",
]
