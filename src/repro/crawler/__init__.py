"""Crawler substrate: the instrumented measurement crawler of §3.1."""

from repro.crawler.autoconsent import Autoconsent
from repro.crawler.behavior import UserBehavior
from repro.crawler.collector import CanvasCollector
from repro.crawler.crawl import CrawlDataset, CrawlTarget, run_crawl
from repro.crawler.storage import load_dataset, save_dataset

__all__ = [
    "Autoconsent",
    "UserBehavior",
    "CanvasCollector",
    "CrawlDataset",
    "CrawlTarget",
    "run_crawl",
    "load_dataset",
    "save_dataset",
]
