"""Why canvas fingerprinting works: discriminatory power across devices (§2).

Renders the FingerprintJS-style test canvas on a fleet of synthetic device
profiles (different GPU/OS/font stacks) and shows that

* every device yields a distinct fingerprint (high entropy),
* every device yields the *same* fingerprint on repeated visits
  (stability — what enables re-identification), and
* a lossy (JPEG) extraction collapses much of the distinguishing signal,
  which is why the detection heuristics ignore lossy extractions.

Run:  python examples/device_entropy.py [fleet_size]
"""

import math
import sys
from collections import Counter

from repro.canvas import HTMLCanvasElement
from repro.canvas.device import device_fleet


def render_test_canvas(device, mime="image/png"):
    canvas = HTMLCanvasElement(240, 60, device=device)
    ctx = canvas.getContext("2d")
    ctx.textBaseline = "alphabetic"
    ctx.fillStyle = "#f60"
    ctx.fillRect(125, 1, 62, 20)
    ctx.fillStyle = "#069"
    ctx.font = "11pt Arial"
    ctx.fillText("Cwm fjordbank glyphs vext quiz", 2, 15)
    ctx.fillStyle = "rgba(102, 204, 0, 0.7)"
    ctx.fillText("Cwm fjordbank glyphs vext quiz", 4, 17)
    return canvas.toDataURL(mime, 0.5 if mime == "image/jpeg" else None)


def entropy_bits(counter: Counter, total: int) -> float:
    return -sum((n / total) * math.log2(n / total) for n in counter.values())


def main() -> None:
    fleet_size = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    fleet = device_fleet(fleet_size)

    png_prints = [render_test_canvas(d) for d in fleet]
    png_counter = Counter(png_prints)
    print(f"fleet size: {fleet_size}")
    print(f"distinct PNG fingerprints:  {len(png_counter)}")
    print(f"entropy: {entropy_bits(png_counter, fleet_size):.2f} bits "
          f"(max possible {math.log2(fleet_size):.2f})")

    stable = all(render_test_canvas(d) == fp for d, fp in zip(fleet, png_prints))
    print(f"stable across repeated visits: {stable}")

    # Devices that differ only in GPU anti-aliasing (same font stack): their
    # differences are sub-pixel, precisely the signal lossy encoding destroys.
    from repro.canvas.device import DeviceProfile

    import itertools

    import numpy as np

    from repro.canvas.encode import lossy_quantized_planes

    gpu_fleet = [
        DeviceProfile(name=f"gpu-{i}", seed=1000 + i, aa_strength=0.08)
        for i in range(min(fleet_size, 8))
    ]

    def pixels_of(device):
        canvas = HTMLCanvasElement(240, 60, device=device)
        ctx = canvas.getContext("2d")
        ctx.fillStyle = "#ffffff"
        ctx.fillRect(0, 0, 240, 60)
        ctx.fillStyle = "#069"
        ctx.font = "11pt Arial"
        ctx.fillText("Cwm fjordbank glyphs vext quiz", 2, 15)
        return canvas.read_pixels()

    frames = [pixels_of(d) for d in gpu_fleet]
    raw_diffs, lossy_diffs = [], []
    for a, b in itertools.combinations(frames, 2):
        raw_diffs.append((a != b).mean())
        lossy_diffs.append(
            (lossy_quantized_planes(a, 0.5) != lossy_quantized_planes(b, 0.5)).mean()
        )
    print(f"\nGPU-only fleet (same fonts, different anti-aliasing), pairwise signal:")
    print(f"mean differing fraction, lossless pixels:   {np.mean(raw_diffs):.2%}")
    print(f"mean differing fraction, lossy (JPEG-like): {np.mean(lossy_diffs):.2%}")
    print(f"attenuation: {np.mean(raw_diffs) / max(np.mean(lossy_diffs), 1e-9):.1f}x")
    print("-> lossy extraction erases or destabilizes the sub-pixel signal —")
    print("   quantization makes the surviving bits depend on which side of a")
    print("   boundary a block lands, so lossy 'fingerprints' are unstable and")
    print("   far less discriminating. The paper's heuristics exclude them.")


if __name__ == "__main__":
    main()
